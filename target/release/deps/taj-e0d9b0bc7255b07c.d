/root/repo/target/release/deps/taj-e0d9b0bc7255b07c.d: src/lib.rs

/root/repo/target/release/deps/libtaj-e0d9b0bc7255b07c.rlib: src/lib.rs

/root/repo/target/release/deps/libtaj-e0d9b0bc7255b07c.rmeta: src/lib.rs

src/lib.rs:
