/root/repo/target/release/deps/table1-aeec2f68460bb9e9.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-aeec2f68460bb9e9: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
