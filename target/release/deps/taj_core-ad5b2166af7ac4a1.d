/root/repo/target/release/deps/taj_core-ad5b2166af7ac4a1.d: crates/core/src/lib.rs crates/core/src/carriers.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/exceptions.rs crates/core/src/frameworks.rs crates/core/src/lcp.rs crates/core/src/report.rs crates/core/src/rulefile.rs crates/core/src/rules.rs crates/core/src/scoring.rs

/root/repo/target/release/deps/libtaj_core-ad5b2166af7ac4a1.rlib: crates/core/src/lib.rs crates/core/src/carriers.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/exceptions.rs crates/core/src/frameworks.rs crates/core/src/lcp.rs crates/core/src/report.rs crates/core/src/rulefile.rs crates/core/src/rules.rs crates/core/src/scoring.rs

/root/repo/target/release/deps/libtaj_core-ad5b2166af7ac4a1.rmeta: crates/core/src/lib.rs crates/core/src/carriers.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/exceptions.rs crates/core/src/frameworks.rs crates/core/src/lcp.rs crates/core/src/report.rs crates/core/src/rulefile.rs crates/core/src/rules.rs crates/core/src/scoring.rs

crates/core/src/lib.rs:
crates/core/src/carriers.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/exceptions.rs:
crates/core/src/frameworks.rs:
crates/core/src/lcp.rs:
crates/core/src/report.rs:
crates/core/src/rulefile.rs:
crates/core/src/rules.rs:
crates/core/src/scoring.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
