/root/repo/target/release/deps/taj_pointer-f18f3feb4f4a1ae6.d: crates/pointer/src/lib.rs crates/pointer/src/callgraph.rs crates/pointer/src/context.rs crates/pointer/src/escape.rs crates/pointer/src/heapgraph.rs crates/pointer/src/keys.rs crates/pointer/src/priority.rs crates/pointer/src/solver.rs

/root/repo/target/release/deps/libtaj_pointer-f18f3feb4f4a1ae6.rlib: crates/pointer/src/lib.rs crates/pointer/src/callgraph.rs crates/pointer/src/context.rs crates/pointer/src/escape.rs crates/pointer/src/heapgraph.rs crates/pointer/src/keys.rs crates/pointer/src/priority.rs crates/pointer/src/solver.rs

/root/repo/target/release/deps/libtaj_pointer-f18f3feb4f4a1ae6.rmeta: crates/pointer/src/lib.rs crates/pointer/src/callgraph.rs crates/pointer/src/context.rs crates/pointer/src/escape.rs crates/pointer/src/heapgraph.rs crates/pointer/src/keys.rs crates/pointer/src/priority.rs crates/pointer/src/solver.rs

crates/pointer/src/lib.rs:
crates/pointer/src/callgraph.rs:
crates/pointer/src/context.rs:
crates/pointer/src/escape.rs:
crates/pointer/src/heapgraph.rs:
crates/pointer/src/keys.rs:
crates/pointer/src/priority.rs:
crates/pointer/src/solver.rs:
