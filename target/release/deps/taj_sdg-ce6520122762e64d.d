/root/repo/target/release/deps/taj_sdg-ce6520122762e64d.d: crates/sdg/src/lib.rs crates/sdg/src/ci.rs crates/sdg/src/cs.rs crates/sdg/src/hybrid.rs crates/sdg/src/mhp.rs crates/sdg/src/spec.rs crates/sdg/src/view.rs

/root/repo/target/release/deps/libtaj_sdg-ce6520122762e64d.rlib: crates/sdg/src/lib.rs crates/sdg/src/ci.rs crates/sdg/src/cs.rs crates/sdg/src/hybrid.rs crates/sdg/src/mhp.rs crates/sdg/src/spec.rs crates/sdg/src/view.rs

/root/repo/target/release/deps/libtaj_sdg-ce6520122762e64d.rmeta: crates/sdg/src/lib.rs crates/sdg/src/ci.rs crates/sdg/src/cs.rs crates/sdg/src/hybrid.rs crates/sdg/src/mhp.rs crates/sdg/src/spec.rs crates/sdg/src/view.rs

crates/sdg/src/lib.rs:
crates/sdg/src/ci.rs:
crates/sdg/src/cs.rs:
crates/sdg/src/hybrid.rs:
crates/sdg/src/mhp.rs:
crates/sdg/src/spec.rs:
crates/sdg/src/view.rs:
