/root/repo/target/release/deps/taj-ce3aeb1ee6ed2bf2.d: src/lib.rs

/root/repo/target/release/deps/libtaj-ce3aeb1ee6ed2bf2.rlib: src/lib.rs

/root/repo/target/release/deps/libtaj-ce3aeb1ee6ed2bf2.rmeta: src/lib.rs

src/lib.rs:
