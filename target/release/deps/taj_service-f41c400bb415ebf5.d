/root/repo/target/release/deps/taj_service-f41c400bb415ebf5.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/pool.rs crates/service/src/protocol.rs crates/service/src/server.rs

/root/repo/target/release/deps/libtaj_service-f41c400bb415ebf5.rlib: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/pool.rs crates/service/src/protocol.rs crates/service/src/server.rs

/root/repo/target/release/deps/libtaj_service-f41c400bb415ebf5.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/pool.rs crates/service/src/protocol.rs crates/service/src/server.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/client.rs:
crates/service/src/pool.rs:
crates/service/src/protocol.rs:
crates/service/src/server.rs:
