/root/repo/target/release/deps/taj-c306824e23b58f73.d: src/main.rs

/root/repo/target/release/deps/taj-c306824e23b58f73: src/main.rs

src/main.rs:
