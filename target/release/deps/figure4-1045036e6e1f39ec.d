/root/repo/target/release/deps/figure4-1045036e6e1f39ec.d: crates/bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-1045036e6e1f39ec: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
