/root/repo/target/release/deps/taj-b4608dc55463dac1.d: src/main.rs

/root/repo/target/release/deps/taj-b4608dc55463dac1: src/main.rs

src/main.rs:
