/root/repo/target/release/deps/taj_bench-d745adf443ff06a4.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/release/deps/libtaj_bench-d745adf443ff06a4.rlib: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/release/deps/libtaj_bench-d745adf443ff06a4.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
