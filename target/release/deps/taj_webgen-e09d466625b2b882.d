/root/repo/target/release/deps/taj_webgen-e09d466625b2b882.d: crates/webgen/src/lib.rs crates/webgen/src/generate.rs crates/webgen/src/interp.rs crates/webgen/src/micro.rs crates/webgen/src/patterns.rs crates/webgen/src/securibench.rs crates/webgen/src/table2.rs

/root/repo/target/release/deps/libtaj_webgen-e09d466625b2b882.rlib: crates/webgen/src/lib.rs crates/webgen/src/generate.rs crates/webgen/src/interp.rs crates/webgen/src/micro.rs crates/webgen/src/patterns.rs crates/webgen/src/securibench.rs crates/webgen/src/table2.rs

/root/repo/target/release/deps/libtaj_webgen-e09d466625b2b882.rmeta: crates/webgen/src/lib.rs crates/webgen/src/generate.rs crates/webgen/src/interp.rs crates/webgen/src/micro.rs crates/webgen/src/patterns.rs crates/webgen/src/securibench.rs crates/webgen/src/table2.rs

crates/webgen/src/lib.rs:
crates/webgen/src/generate.rs:
crates/webgen/src/interp.rs:
crates/webgen/src/micro.rs:
crates/webgen/src/patterns.rs:
crates/webgen/src/securibench.rs:
crates/webgen/src/table2.rs:
