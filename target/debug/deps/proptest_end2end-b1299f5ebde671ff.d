/root/repo/target/debug/deps/proptest_end2end-b1299f5ebde671ff.d: tests/proptest_end2end.rs

/root/repo/target/debug/deps/proptest_end2end-b1299f5ebde671ff: tests/proptest_end2end.rs

tests/proptest_end2end.rs:
