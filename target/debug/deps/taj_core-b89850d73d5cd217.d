/root/repo/target/debug/deps/taj_core-b89850d73d5cd217.d: crates/core/src/lib.rs crates/core/src/carriers.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/exceptions.rs crates/core/src/frameworks.rs crates/core/src/lcp.rs crates/core/src/report.rs crates/core/src/rulefile.rs crates/core/src/rules.rs crates/core/src/scoring.rs

/root/repo/target/debug/deps/taj_core-b89850d73d5cd217: crates/core/src/lib.rs crates/core/src/carriers.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/exceptions.rs crates/core/src/frameworks.rs crates/core/src/lcp.rs crates/core/src/report.rs crates/core/src/rulefile.rs crates/core/src/rules.rs crates/core/src/scoring.rs

crates/core/src/lib.rs:
crates/core/src/carriers.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/exceptions.rs:
crates/core/src/frameworks.rs:
crates/core/src/lcp.rs:
crates/core/src/report.rs:
crates/core/src/rulefile.rs:
crates/core/src/rules.rs:
crates/core/src/scoring.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
