/root/repo/target/debug/deps/figure2-c020e615661aa53c.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-c020e615661aa53c: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
