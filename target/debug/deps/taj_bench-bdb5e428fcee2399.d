/root/repo/target/debug/deps/taj_bench-bdb5e428fcee2399.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/taj_bench-bdb5e428fcee2399: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
