/root/repo/target/debug/deps/taj-259d1262759f105d.d: src/lib.rs

/root/repo/target/debug/deps/libtaj-259d1262759f105d.rlib: src/lib.rs

/root/repo/target/debug/deps/libtaj-259d1262759f105d.rmeta: src/lib.rs

src/lib.rs:
