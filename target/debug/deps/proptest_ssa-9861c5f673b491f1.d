/root/repo/target/debug/deps/proptest_ssa-9861c5f673b491f1.d: crates/jir/tests/proptest_ssa.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_ssa-9861c5f673b491f1.rmeta: crates/jir/tests/proptest_ssa.rs Cargo.toml

crates/jir/tests/proptest_ssa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
