/root/repo/target/debug/deps/taj-f97bf8fb3973a036.d: src/lib.rs

/root/repo/target/debug/deps/libtaj-f97bf8fb3973a036.rlib: src/lib.rs

/root/repo/target/debug/deps/libtaj-f97bf8fb3973a036.rmeta: src/lib.rs

src/lib.rs:
