/root/repo/target/debug/deps/taj-7648875310b0aa08.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtaj-7648875310b0aa08.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
