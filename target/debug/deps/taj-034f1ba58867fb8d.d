/root/repo/target/debug/deps/taj-034f1ba58867fb8d.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libtaj-034f1ba58867fb8d.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
