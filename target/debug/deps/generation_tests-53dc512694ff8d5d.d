/root/repo/target/debug/deps/generation_tests-53dc512694ff8d5d.d: crates/webgen/tests/generation_tests.rs

/root/repo/target/debug/deps/generation_tests-53dc512694ff8d5d: crates/webgen/tests/generation_tests.rs

crates/webgen/tests/generation_tests.rs:
