/root/repo/target/debug/deps/motivating-149bf23e6454b84c.d: tests/motivating.rs

/root/repo/target/debug/deps/motivating-149bf23e6454b84c: tests/motivating.rs

tests/motivating.rs:
