/root/repo/target/debug/deps/micro_suite-cb29cf161cc0e0d8.d: tests/micro_suite.rs

/root/repo/target/debug/deps/micro_suite-cb29cf161cc0e0d8: tests/micro_suite.rs

tests/micro_suite.rs:
