/root/repo/target/debug/deps/taj_sdg-a0f17e67dcb57b2b.d: crates/sdg/src/lib.rs crates/sdg/src/ci.rs crates/sdg/src/cs.rs crates/sdg/src/hybrid.rs crates/sdg/src/mhp.rs crates/sdg/src/spec.rs crates/sdg/src/view.rs

/root/repo/target/debug/deps/taj_sdg-a0f17e67dcb57b2b: crates/sdg/src/lib.rs crates/sdg/src/ci.rs crates/sdg/src/cs.rs crates/sdg/src/hybrid.rs crates/sdg/src/mhp.rs crates/sdg/src/spec.rs crates/sdg/src/view.rs

crates/sdg/src/lib.rs:
crates/sdg/src/ci.rs:
crates/sdg/src/cs.rs:
crates/sdg/src/hybrid.rs:
crates/sdg/src/mhp.rs:
crates/sdg/src/spec.rs:
crates/sdg/src/view.rs:
