/root/repo/target/debug/deps/smoke-dc3b916f12cfbec5.d: crates/bench/src/bin/smoke.rs

/root/repo/target/debug/deps/smoke-dc3b916f12cfbec5: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
