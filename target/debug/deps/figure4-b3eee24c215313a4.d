/root/repo/target/debug/deps/figure4-b3eee24c215313a4.d: crates/bench/src/bin/figure4.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4-b3eee24c215313a4.rmeta: crates/bench/src/bin/figure4.rs Cargo.toml

crates/bench/src/bin/figure4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
