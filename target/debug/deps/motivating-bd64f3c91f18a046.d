/root/repo/target/debug/deps/motivating-bd64f3c91f18a046.d: tests/motivating.rs Cargo.toml

/root/repo/target/debug/deps/libmotivating-bd64f3c91f18a046.rmeta: tests/motivating.rs Cargo.toml

tests/motivating.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
