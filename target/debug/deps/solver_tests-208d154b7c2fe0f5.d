/root/repo/target/debug/deps/solver_tests-208d154b7c2fe0f5.d: crates/pointer/tests/solver_tests.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_tests-208d154b7c2fe0f5.rmeta: crates/pointer/tests/solver_tests.rs Cargo.toml

crates/pointer/tests/solver_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
