/root/repo/target/debug/deps/taj-f1ddbd86d5e02102.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libtaj-f1ddbd86d5e02102.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
