/root/repo/target/debug/deps/taj_service-f3f49b4a64bddcae.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/pool.rs crates/service/src/protocol.rs crates/service/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libtaj_service-f3f49b4a64bddcae.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/pool.rs crates/service/src/protocol.rs crates/service/src/server.rs Cargo.toml

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/client.rs:
crates/service/src/pool.rs:
crates/service/src/protocol.rs:
crates/service/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
