/root/repo/target/debug/deps/taj_pointer-d398288a7fe6f461.d: crates/pointer/src/lib.rs crates/pointer/src/callgraph.rs crates/pointer/src/context.rs crates/pointer/src/escape.rs crates/pointer/src/heapgraph.rs crates/pointer/src/keys.rs crates/pointer/src/priority.rs crates/pointer/src/solver.rs

/root/repo/target/debug/deps/libtaj_pointer-d398288a7fe6f461.rlib: crates/pointer/src/lib.rs crates/pointer/src/callgraph.rs crates/pointer/src/context.rs crates/pointer/src/escape.rs crates/pointer/src/heapgraph.rs crates/pointer/src/keys.rs crates/pointer/src/priority.rs crates/pointer/src/solver.rs

/root/repo/target/debug/deps/libtaj_pointer-d398288a7fe6f461.rmeta: crates/pointer/src/lib.rs crates/pointer/src/callgraph.rs crates/pointer/src/context.rs crates/pointer/src/escape.rs crates/pointer/src/heapgraph.rs crates/pointer/src/keys.rs crates/pointer/src/priority.rs crates/pointer/src/solver.rs

crates/pointer/src/lib.rs:
crates/pointer/src/callgraph.rs:
crates/pointer/src/context.rs:
crates/pointer/src/escape.rs:
crates/pointer/src/heapgraph.rs:
crates/pointer/src/keys.rs:
crates/pointer/src/priority.rs:
crates/pointer/src/solver.rs:
