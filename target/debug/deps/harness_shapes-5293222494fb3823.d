/root/repo/target/debug/deps/harness_shapes-5293222494fb3823.d: tests/harness_shapes.rs

/root/repo/target/debug/deps/harness_shapes-5293222494fb3823: tests/harness_shapes.rs

tests/harness_shapes.rs:
