/root/repo/target/debug/deps/cs_tests-b1e18866d627556a.d: crates/sdg/tests/cs_tests.rs

/root/repo/target/debug/deps/cs_tests-b1e18866d627556a: crates/sdg/tests/cs_tests.rs

crates/sdg/tests/cs_tests.rs:
