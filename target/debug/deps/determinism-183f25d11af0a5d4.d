/root/repo/target/debug/deps/determinism-183f25d11af0a5d4.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-183f25d11af0a5d4: tests/determinism.rs

tests/determinism.rs:
