/root/repo/target/debug/deps/taj_pointer-b00ec8a79e025a39.d: crates/pointer/src/lib.rs crates/pointer/src/callgraph.rs crates/pointer/src/context.rs crates/pointer/src/escape.rs crates/pointer/src/heapgraph.rs crates/pointer/src/keys.rs crates/pointer/src/priority.rs crates/pointer/src/solver.rs

/root/repo/target/debug/deps/taj_pointer-b00ec8a79e025a39: crates/pointer/src/lib.rs crates/pointer/src/callgraph.rs crates/pointer/src/context.rs crates/pointer/src/escape.rs crates/pointer/src/heapgraph.rs crates/pointer/src/keys.rs crates/pointer/src/priority.rs crates/pointer/src/solver.rs

crates/pointer/src/lib.rs:
crates/pointer/src/callgraph.rs:
crates/pointer/src/context.rs:
crates/pointer/src/escape.rs:
crates/pointer/src/heapgraph.rs:
crates/pointer/src/keys.rs:
crates/pointer/src/priority.rs:
crates/pointer/src/solver.rs:
