/root/repo/target/debug/deps/taj_service-7d65575cd0486352.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/pool.rs crates/service/src/protocol.rs crates/service/src/server.rs

/root/repo/target/debug/deps/libtaj_service-7d65575cd0486352.rlib: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/pool.rs crates/service/src/protocol.rs crates/service/src/server.rs

/root/repo/target/debug/deps/libtaj_service-7d65575cd0486352.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/pool.rs crates/service/src/protocol.rs crates/service/src/server.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/client.rs:
crates/service/src/pool.rs:
crates/service/src/protocol.rs:
crates/service/src/server.rs:
