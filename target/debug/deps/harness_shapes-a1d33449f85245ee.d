/root/repo/target/debug/deps/harness_shapes-a1d33449f85245ee.d: tests/harness_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libharness_shapes-a1d33449f85245ee.rmeta: tests/harness_shapes.rs Cargo.toml

tests/harness_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
