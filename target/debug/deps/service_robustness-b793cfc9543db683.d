/root/repo/target/debug/deps/service_robustness-b793cfc9543db683.d: tests/service_robustness.rs

/root/repo/target/debug/deps/service_robustness-b793cfc9543db683: tests/service_robustness.rs

tests/service_robustness.rs:
