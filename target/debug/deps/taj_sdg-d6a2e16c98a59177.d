/root/repo/target/debug/deps/taj_sdg-d6a2e16c98a59177.d: crates/sdg/src/lib.rs crates/sdg/src/ci.rs crates/sdg/src/cs.rs crates/sdg/src/hybrid.rs crates/sdg/src/mhp.rs crates/sdg/src/spec.rs crates/sdg/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libtaj_sdg-d6a2e16c98a59177.rmeta: crates/sdg/src/lib.rs crates/sdg/src/ci.rs crates/sdg/src/cs.rs crates/sdg/src/hybrid.rs crates/sdg/src/mhp.rs crates/sdg/src/spec.rs crates/sdg/src/view.rs Cargo.toml

crates/sdg/src/lib.rs:
crates/sdg/src/ci.rs:
crates/sdg/src/cs.rs:
crates/sdg/src/hybrid.rs:
crates/sdg/src/mhp.rs:
crates/sdg/src/spec.rs:
crates/sdg/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
