/root/repo/target/debug/deps/summary_tests-e5a5dab2dcc3f76e.d: crates/sdg/tests/summary_tests.rs

/root/repo/target/debug/deps/summary_tests-e5a5dab2dcc3f76e: crates/sdg/tests/summary_tests.rs

crates/sdg/tests/summary_tests.rs:
