/root/repo/target/debug/deps/determinism-fa3fc0d144afc451.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-fa3fc0d144afc451: tests/determinism.rs

tests/determinism.rs:
