/root/repo/target/debug/deps/solver_tests-fdaaedfd41a436ad.d: crates/pointer/tests/solver_tests.rs

/root/repo/target/debug/deps/solver_tests-fdaaedfd41a436ad: crates/pointer/tests/solver_tests.rs

crates/pointer/tests/solver_tests.rs:
