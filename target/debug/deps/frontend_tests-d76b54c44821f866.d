/root/repo/target/debug/deps/frontend_tests-d76b54c44821f866.d: crates/jir/tests/frontend_tests.rs

/root/repo/target/debug/deps/frontend_tests-d76b54c44821f866: crates/jir/tests/frontend_tests.rs

crates/jir/tests/frontend_tests.rs:
