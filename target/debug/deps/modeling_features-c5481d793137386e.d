/root/repo/target/debug/deps/modeling_features-c5481d793137386e.d: tests/modeling_features.rs

/root/repo/target/debug/deps/modeling_features-c5481d793137386e: tests/modeling_features.rs

tests/modeling_features.rs:
