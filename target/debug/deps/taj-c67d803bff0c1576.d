/root/repo/target/debug/deps/taj-c67d803bff0c1576.d: src/lib.rs

/root/repo/target/debug/deps/taj-c67d803bff0c1576: src/lib.rs

src/lib.rs:
