/root/repo/target/debug/deps/taj_core-5ed5774a3f082cfd.d: crates/core/src/lib.rs crates/core/src/carriers.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/exceptions.rs crates/core/src/frameworks.rs crates/core/src/lcp.rs crates/core/src/report.rs crates/core/src/rulefile.rs crates/core/src/rules.rs crates/core/src/scoring.rs Cargo.toml

/root/repo/target/debug/deps/libtaj_core-5ed5774a3f082cfd.rmeta: crates/core/src/lib.rs crates/core/src/carriers.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/exceptions.rs crates/core/src/frameworks.rs crates/core/src/lcp.rs crates/core/src/report.rs crates/core/src/rulefile.rs crates/core/src/rules.rs crates/core/src/scoring.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/carriers.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/exceptions.rs:
crates/core/src/frameworks.rs:
crates/core/src/lcp.rs:
crates/core/src/report.rs:
crates/core/src/rulefile.rs:
crates/core/src/rules.rs:
crates/core/src/scoring.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
