/root/repo/target/debug/deps/heapgraph_tests-d8710ca4a3012ea0.d: crates/pointer/tests/heapgraph_tests.rs

/root/repo/target/debug/deps/heapgraph_tests-d8710ca4a3012ea0: crates/pointer/tests/heapgraph_tests.rs

crates/pointer/tests/heapgraph_tests.rs:
