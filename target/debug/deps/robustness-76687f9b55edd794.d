/root/repo/target/debug/deps/robustness-76687f9b55edd794.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-76687f9b55edd794: tests/robustness.rs

tests/robustness.rs:
