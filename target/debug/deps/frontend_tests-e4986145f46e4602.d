/root/repo/target/debug/deps/frontend_tests-e4986145f46e4602.d: crates/jir/tests/frontend_tests.rs Cargo.toml

/root/repo/target/debug/deps/libfrontend_tests-e4986145f46e4602.rmeta: crates/jir/tests/frontend_tests.rs Cargo.toml

crates/jir/tests/frontend_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
