/root/repo/target/debug/deps/motivating-0c1ab10d66657530.d: tests/motivating.rs

/root/repo/target/debug/deps/motivating-0c1ab10d66657530: tests/motivating.rs

tests/motivating.rs:
