/root/repo/target/debug/deps/modeling_features-f59bdcc944cc3469.d: tests/modeling_features.rs Cargo.toml

/root/repo/target/debug/deps/libmodeling_features-f59bdcc944cc3469.rmeta: tests/modeling_features.rs Cargo.toml

tests/modeling_features.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
