/root/repo/target/debug/deps/summary_tests-07e68dc9a339043f.d: crates/sdg/tests/summary_tests.rs Cargo.toml

/root/repo/target/debug/deps/libsummary_tests-07e68dc9a339043f.rmeta: crates/sdg/tests/summary_tests.rs Cargo.toml

crates/sdg/tests/summary_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
