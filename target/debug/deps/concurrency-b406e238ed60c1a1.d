/root/repo/target/debug/deps/concurrency-b406e238ed60c1a1.d: tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-b406e238ed60c1a1.rmeta: tests/concurrency.rs Cargo.toml

tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
