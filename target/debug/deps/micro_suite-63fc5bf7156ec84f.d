/root/repo/target/debug/deps/micro_suite-63fc5bf7156ec84f.d: tests/micro_suite.rs

/root/repo/target/debug/deps/micro_suite-63fc5bf7156ec84f: tests/micro_suite.rs

tests/micro_suite.rs:
