/root/repo/target/debug/deps/taj_service-3c4ea742e77f1365.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/pool.rs crates/service/src/protocol.rs crates/service/src/server.rs

/root/repo/target/debug/deps/taj_service-3c4ea742e77f1365: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/pool.rs crates/service/src/protocol.rs crates/service/src/server.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/client.rs:
crates/service/src/pool.rs:
crates/service/src/protocol.rs:
crates/service/src/server.rs:
