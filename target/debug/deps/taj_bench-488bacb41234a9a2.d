/root/repo/target/debug/deps/taj_bench-488bacb41234a9a2.d: crates/bench/src/lib.rs crates/bench/src/svg.rs Cargo.toml

/root/repo/target/debug/deps/libtaj_bench-488bacb41234a9a2.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
