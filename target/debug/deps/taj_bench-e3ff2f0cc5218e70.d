/root/repo/target/debug/deps/taj_bench-e3ff2f0cc5218e70.d: crates/bench/src/lib.rs crates/bench/src/svg.rs Cargo.toml

/root/repo/target/debug/deps/libtaj_bench-e3ff2f0cc5218e70.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
