/root/repo/target/debug/deps/taj-22f29499e3cdbd9e.d: src/main.rs

/root/repo/target/debug/deps/taj-22f29499e3cdbd9e: src/main.rs

src/main.rs:
