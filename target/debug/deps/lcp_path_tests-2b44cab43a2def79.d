/root/repo/target/debug/deps/lcp_path_tests-2b44cab43a2def79.d: crates/sdg/tests/lcp_path_tests.rs Cargo.toml

/root/repo/target/debug/deps/liblcp_path_tests-2b44cab43a2def79.rmeta: crates/sdg/tests/lcp_path_tests.rs Cargo.toml

crates/sdg/tests/lcp_path_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
