/root/repo/target/debug/deps/table2-c503d98e5554ed48.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-c503d98e5554ed48: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
