/root/repo/target/debug/deps/taj-bfab9a964868fe7d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtaj-bfab9a964868fe7d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
