/root/repo/target/debug/deps/taj_sdg-22e7fc152064ad20.d: crates/sdg/src/lib.rs crates/sdg/src/ci.rs crates/sdg/src/cs.rs crates/sdg/src/hybrid.rs crates/sdg/src/mhp.rs crates/sdg/src/spec.rs crates/sdg/src/view.rs

/root/repo/target/debug/deps/libtaj_sdg-22e7fc152064ad20.rlib: crates/sdg/src/lib.rs crates/sdg/src/ci.rs crates/sdg/src/cs.rs crates/sdg/src/hybrid.rs crates/sdg/src/mhp.rs crates/sdg/src/spec.rs crates/sdg/src/view.rs

/root/repo/target/debug/deps/libtaj_sdg-22e7fc152064ad20.rmeta: crates/sdg/src/lib.rs crates/sdg/src/ci.rs crates/sdg/src/cs.rs crates/sdg/src/hybrid.rs crates/sdg/src/mhp.rs crates/sdg/src/spec.rs crates/sdg/src/view.rs

crates/sdg/src/lib.rs:
crates/sdg/src/ci.rs:
crates/sdg/src/cs.rs:
crates/sdg/src/hybrid.rs:
crates/sdg/src/mhp.rs:
crates/sdg/src/spec.rs:
crates/sdg/src/view.rs:
