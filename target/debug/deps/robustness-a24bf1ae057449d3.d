/root/repo/target/debug/deps/robustness-a24bf1ae057449d3.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-a24bf1ae057449d3: tests/robustness.rs

tests/robustness.rs:
