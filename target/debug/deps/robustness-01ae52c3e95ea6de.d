/root/repo/target/debug/deps/robustness-01ae52c3e95ea6de.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-01ae52c3e95ea6de.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
