/root/repo/target/debug/deps/calibrate-4eae7d1adf767b48.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-4eae7d1adf767b48.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
