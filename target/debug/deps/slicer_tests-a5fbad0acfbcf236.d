/root/repo/target/debug/deps/slicer_tests-a5fbad0acfbcf236.d: crates/sdg/tests/slicer_tests.rs

/root/repo/target/debug/deps/slicer_tests-a5fbad0acfbcf236: crates/sdg/tests/slicer_tests.rs

crates/sdg/tests/slicer_tests.rs:
