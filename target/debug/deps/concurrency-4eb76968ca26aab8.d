/root/repo/target/debug/deps/concurrency-4eb76968ca26aab8.d: tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-4eb76968ca26aab8: tests/concurrency.rs

tests/concurrency.rs:
