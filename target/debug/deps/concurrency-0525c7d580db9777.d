/root/repo/target/debug/deps/concurrency-0525c7d580db9777.d: tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-0525c7d580db9777.rmeta: tests/concurrency.rs Cargo.toml

tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
