/root/repo/target/debug/deps/modeling_features-0db04251c70a23f8.d: tests/modeling_features.rs

/root/repo/target/debug/deps/modeling_features-0db04251c70a23f8: tests/modeling_features.rs

tests/modeling_features.rs:
