/root/repo/target/debug/deps/jir-bd48e6a3e25642e7.d: crates/jir/src/lib.rs crates/jir/src/ast.rs crates/jir/src/cfg.rs crates/jir/src/class.rs crates/jir/src/constprop.rs crates/jir/src/dom.rs crates/jir/src/expand.rs crates/jir/src/inst.rs crates/jir/src/lexer.rs crates/jir/src/lower.rs crates/jir/src/method.rs crates/jir/src/parser.rs crates/jir/src/pretty.rs crates/jir/src/program.rs crates/jir/src/ssa.rs crates/jir/src/stdlib.rs crates/jir/src/types.rs crates/jir/src/util.rs crates/jir/src/validate.rs

/root/repo/target/debug/deps/jir-bd48e6a3e25642e7: crates/jir/src/lib.rs crates/jir/src/ast.rs crates/jir/src/cfg.rs crates/jir/src/class.rs crates/jir/src/constprop.rs crates/jir/src/dom.rs crates/jir/src/expand.rs crates/jir/src/inst.rs crates/jir/src/lexer.rs crates/jir/src/lower.rs crates/jir/src/method.rs crates/jir/src/parser.rs crates/jir/src/pretty.rs crates/jir/src/program.rs crates/jir/src/ssa.rs crates/jir/src/stdlib.rs crates/jir/src/types.rs crates/jir/src/util.rs crates/jir/src/validate.rs

crates/jir/src/lib.rs:
crates/jir/src/ast.rs:
crates/jir/src/cfg.rs:
crates/jir/src/class.rs:
crates/jir/src/constprop.rs:
crates/jir/src/dom.rs:
crates/jir/src/expand.rs:
crates/jir/src/inst.rs:
crates/jir/src/lexer.rs:
crates/jir/src/lower.rs:
crates/jir/src/method.rs:
crates/jir/src/parser.rs:
crates/jir/src/pretty.rs:
crates/jir/src/program.rs:
crates/jir/src/ssa.rs:
crates/jir/src/stdlib.rs:
crates/jir/src/types.rs:
crates/jir/src/util.rs:
crates/jir/src/validate.rs:
