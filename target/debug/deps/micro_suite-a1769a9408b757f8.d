/root/repo/target/debug/deps/micro_suite-a1769a9408b757f8.d: tests/micro_suite.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_suite-a1769a9408b757f8.rmeta: tests/micro_suite.rs Cargo.toml

tests/micro_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
