/root/repo/target/debug/deps/calibrate-2a134abbe927e4e8.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-2a134abbe927e4e8: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
