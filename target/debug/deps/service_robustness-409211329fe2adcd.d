/root/repo/target/debug/deps/service_robustness-409211329fe2adcd.d: tests/service_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libservice_robustness-409211329fe2adcd.rmeta: tests/service_robustness.rs Cargo.toml

tests/service_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
