/root/repo/target/debug/deps/taj-5738fb26acb53043.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libtaj-5738fb26acb53043.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
