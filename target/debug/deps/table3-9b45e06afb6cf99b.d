/root/repo/target/debug/deps/table3-9b45e06afb6cf99b.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-9b45e06afb6cf99b: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
