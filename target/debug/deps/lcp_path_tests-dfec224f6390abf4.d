/root/repo/target/debug/deps/lcp_path_tests-dfec224f6390abf4.d: crates/sdg/tests/lcp_path_tests.rs

/root/repo/target/debug/deps/lcp_path_tests-dfec224f6390abf4: crates/sdg/tests/lcp_path_tests.rs

crates/sdg/tests/lcp_path_tests.rs:
