/root/repo/target/debug/deps/cs_tests-301bd9844a042c23.d: crates/sdg/tests/cs_tests.rs Cargo.toml

/root/repo/target/debug/deps/libcs_tests-301bd9844a042c23.rmeta: crates/sdg/tests/cs_tests.rs Cargo.toml

crates/sdg/tests/cs_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
