/root/repo/target/debug/deps/taj_webgen-facdd944281cda62.d: crates/webgen/src/lib.rs crates/webgen/src/generate.rs crates/webgen/src/interp.rs crates/webgen/src/micro.rs crates/webgen/src/patterns.rs crates/webgen/src/securibench.rs crates/webgen/src/table2.rs

/root/repo/target/debug/deps/taj_webgen-facdd944281cda62: crates/webgen/src/lib.rs crates/webgen/src/generate.rs crates/webgen/src/interp.rs crates/webgen/src/micro.rs crates/webgen/src/patterns.rs crates/webgen/src/securibench.rs crates/webgen/src/table2.rs

crates/webgen/src/lib.rs:
crates/webgen/src/generate.rs:
crates/webgen/src/interp.rs:
crates/webgen/src/micro.rs:
crates/webgen/src/patterns.rs:
crates/webgen/src/securibench.rs:
crates/webgen/src/table2.rs:
