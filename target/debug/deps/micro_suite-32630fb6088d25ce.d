/root/repo/target/debug/deps/micro_suite-32630fb6088d25ce.d: tests/micro_suite.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_suite-32630fb6088d25ce.rmeta: tests/micro_suite.rs Cargo.toml

tests/micro_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
