/root/repo/target/debug/deps/taj-466872eebd8cd372.d: src/main.rs

/root/repo/target/debug/deps/taj-466872eebd8cd372: src/main.rs

src/main.rs:
