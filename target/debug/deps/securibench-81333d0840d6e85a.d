/root/repo/target/debug/deps/securibench-81333d0840d6e85a.d: tests/securibench.rs

/root/repo/target/debug/deps/securibench-81333d0840d6e85a: tests/securibench.rs

tests/securibench.rs:
