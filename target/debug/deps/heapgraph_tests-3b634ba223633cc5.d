/root/repo/target/debug/deps/heapgraph_tests-3b634ba223633cc5.d: crates/pointer/tests/heapgraph_tests.rs Cargo.toml

/root/repo/target/debug/deps/libheapgraph_tests-3b634ba223633cc5.rmeta: crates/pointer/tests/heapgraph_tests.rs Cargo.toml

crates/pointer/tests/heapgraph_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
