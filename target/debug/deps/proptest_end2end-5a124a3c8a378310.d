/root/repo/target/debug/deps/proptest_end2end-5a124a3c8a378310.d: tests/proptest_end2end.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_end2end-5a124a3c8a378310.rmeta: tests/proptest_end2end.rs Cargo.toml

tests/proptest_end2end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
