/root/repo/target/debug/deps/dynamic_soundness-ac524b3b35da3934.d: tests/dynamic_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libdynamic_soundness-ac524b3b35da3934.rmeta: tests/dynamic_soundness.rs Cargo.toml

tests/dynamic_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
