/root/repo/target/debug/deps/taj_webgen-1b3da4bd0c4ee852.d: crates/webgen/src/lib.rs crates/webgen/src/generate.rs crates/webgen/src/interp.rs crates/webgen/src/micro.rs crates/webgen/src/patterns.rs crates/webgen/src/securibench.rs crates/webgen/src/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtaj_webgen-1b3da4bd0c4ee852.rmeta: crates/webgen/src/lib.rs crates/webgen/src/generate.rs crates/webgen/src/interp.rs crates/webgen/src/micro.rs crates/webgen/src/patterns.rs crates/webgen/src/securibench.rs crates/webgen/src/table2.rs Cargo.toml

crates/webgen/src/lib.rs:
crates/webgen/src/generate.rs:
crates/webgen/src/interp.rs:
crates/webgen/src/micro.rs:
crates/webgen/src/patterns.rs:
crates/webgen/src/securibench.rs:
crates/webgen/src/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
