/root/repo/target/debug/deps/generation_tests-5ba23bea9552b8c6.d: crates/webgen/tests/generation_tests.rs Cargo.toml

/root/repo/target/debug/deps/libgeneration_tests-5ba23bea9552b8c6.rmeta: crates/webgen/tests/generation_tests.rs Cargo.toml

crates/webgen/tests/generation_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
