/root/repo/target/debug/deps/securibench-87482d0260e4f0d4.d: tests/securibench.rs

/root/repo/target/debug/deps/securibench-87482d0260e4f0d4: tests/securibench.rs

tests/securibench.rs:
