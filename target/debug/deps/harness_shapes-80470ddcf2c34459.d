/root/repo/target/debug/deps/harness_shapes-80470ddcf2c34459.d: tests/harness_shapes.rs

/root/repo/target/debug/deps/harness_shapes-80470ddcf2c34459: tests/harness_shapes.rs

tests/harness_shapes.rs:
