/root/repo/target/debug/deps/modeling_features-e43d6398a22373ea.d: tests/modeling_features.rs Cargo.toml

/root/repo/target/debug/deps/libmodeling_features-e43d6398a22373ea.rmeta: tests/modeling_features.rs Cargo.toml

tests/modeling_features.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
