/root/repo/target/debug/deps/service_cache-5caa6f464ebc9841.d: tests/service_cache.rs

/root/repo/target/debug/deps/service_cache-5caa6f464ebc9841: tests/service_cache.rs

tests/service_cache.rs:
