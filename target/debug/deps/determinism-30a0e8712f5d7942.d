/root/repo/target/debug/deps/determinism-30a0e8712f5d7942.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-30a0e8712f5d7942.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
