/root/repo/target/debug/deps/taj-2f684d4b6fae40b0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtaj-2f684d4b6fae40b0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
