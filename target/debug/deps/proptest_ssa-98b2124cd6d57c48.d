/root/repo/target/debug/deps/proptest_ssa-98b2124cd6d57c48.d: crates/jir/tests/proptest_ssa.rs

/root/repo/target/debug/deps/proptest_ssa-98b2124cd6d57c48: crates/jir/tests/proptest_ssa.rs

crates/jir/tests/proptest_ssa.rs:
