/root/repo/target/debug/deps/proptest_frontend-f1d44ab9fc07045e.d: crates/jir/tests/proptest_frontend.rs

/root/repo/target/debug/deps/proptest_frontend-f1d44ab9fc07045e: crates/jir/tests/proptest_frontend.rs

crates/jir/tests/proptest_frontend.rs:
