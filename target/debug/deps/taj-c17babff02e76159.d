/root/repo/target/debug/deps/taj-c17babff02e76159.d: src/lib.rs

/root/repo/target/debug/deps/taj-c17babff02e76159: src/lib.rs

src/lib.rs:
