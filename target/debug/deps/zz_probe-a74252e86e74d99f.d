/root/repo/target/debug/deps/zz_probe-a74252e86e74d99f.d: tests/zz_probe.rs

/root/repo/target/debug/deps/zz_probe-a74252e86e74d99f: tests/zz_probe.rs

tests/zz_probe.rs:
