/root/repo/target/debug/deps/table1-80eeede202831025.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-80eeede202831025: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
