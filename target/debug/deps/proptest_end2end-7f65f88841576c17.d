/root/repo/target/debug/deps/proptest_end2end-7f65f88841576c17.d: tests/proptest_end2end.rs

/root/repo/target/debug/deps/proptest_end2end-7f65f88841576c17: tests/proptest_end2end.rs

tests/proptest_end2end.rs:
