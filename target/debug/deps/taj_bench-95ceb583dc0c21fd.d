/root/repo/target/debug/deps/taj_bench-95ceb583dc0c21fd.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libtaj_bench-95ceb583dc0c21fd.rlib: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libtaj_bench-95ceb583dc0c21fd.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
