/root/repo/target/debug/deps/taj-e6a6ebf77137ffe7.d: src/main.rs

/root/repo/target/debug/deps/taj-e6a6ebf77137ffe7: src/main.rs

src/main.rs:
