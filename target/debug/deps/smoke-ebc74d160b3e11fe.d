/root/repo/target/debug/deps/smoke-ebc74d160b3e11fe.d: crates/bench/src/bin/smoke.rs Cargo.toml

/root/repo/target/debug/deps/libsmoke-ebc74d160b3e11fe.rmeta: crates/bench/src/bin/smoke.rs Cargo.toml

crates/bench/src/bin/smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
