/root/repo/target/debug/deps/service_cache-4f98d0f7174b4c5b.d: tests/service_cache.rs Cargo.toml

/root/repo/target/debug/deps/libservice_cache-4f98d0f7174b4c5b.rmeta: tests/service_cache.rs Cargo.toml

tests/service_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
