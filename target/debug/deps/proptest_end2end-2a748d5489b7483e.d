/root/repo/target/debug/deps/proptest_end2end-2a748d5489b7483e.d: tests/proptest_end2end.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_end2end-2a748d5489b7483e.rmeta: tests/proptest_end2end.rs Cargo.toml

tests/proptest_end2end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
