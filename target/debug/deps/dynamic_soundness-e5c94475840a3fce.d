/root/repo/target/debug/deps/dynamic_soundness-e5c94475840a3fce.d: tests/dynamic_soundness.rs

/root/repo/target/debug/deps/dynamic_soundness-e5c94475840a3fce: tests/dynamic_soundness.rs

tests/dynamic_soundness.rs:
