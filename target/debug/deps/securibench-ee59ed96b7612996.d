/root/repo/target/debug/deps/securibench-ee59ed96b7612996.d: tests/securibench.rs Cargo.toml

/root/repo/target/debug/deps/libsecuribench-ee59ed96b7612996.rmeta: tests/securibench.rs Cargo.toml

tests/securibench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
