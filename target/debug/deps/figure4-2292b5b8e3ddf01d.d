/root/repo/target/debug/deps/figure4-2292b5b8e3ddf01d.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-2292b5b8e3ddf01d: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
