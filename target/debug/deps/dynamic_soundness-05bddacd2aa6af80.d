/root/repo/target/debug/deps/dynamic_soundness-05bddacd2aa6af80.d: tests/dynamic_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libdynamic_soundness-05bddacd2aa6af80.rmeta: tests/dynamic_soundness.rs Cargo.toml

tests/dynamic_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
