/root/repo/target/debug/deps/context_tests-28d38445e4d7085d.d: crates/pointer/tests/context_tests.rs

/root/repo/target/debug/deps/context_tests-28d38445e4d7085d: crates/pointer/tests/context_tests.rs

crates/pointer/tests/context_tests.rs:
