/root/repo/target/debug/deps/harness_shapes-cac4500c7f65b3db.d: tests/harness_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libharness_shapes-cac4500c7f65b3db.rmeta: tests/harness_shapes.rs Cargo.toml

tests/harness_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
