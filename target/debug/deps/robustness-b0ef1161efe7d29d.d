/root/repo/target/debug/deps/robustness-b0ef1161efe7d29d.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-b0ef1161efe7d29d.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
