/root/repo/target/debug/deps/taj-4edad4d47a343526.d: src/main.rs

/root/repo/target/debug/deps/taj-4edad4d47a343526: src/main.rs

src/main.rs:
