/root/repo/target/debug/deps/motivating-6737ee6a08efdd6d.d: tests/motivating.rs Cargo.toml

/root/repo/target/debug/deps/libmotivating-6737ee6a08efdd6d.rmeta: tests/motivating.rs Cargo.toml

tests/motivating.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
