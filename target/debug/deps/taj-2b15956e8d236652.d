/root/repo/target/debug/deps/taj-2b15956e8d236652.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libtaj-2b15956e8d236652.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
