/root/repo/target/debug/deps/slicer_tests-305141b5d8deca8a.d: crates/sdg/tests/slicer_tests.rs Cargo.toml

/root/repo/target/debug/deps/libslicer_tests-305141b5d8deca8a.rmeta: crates/sdg/tests/slicer_tests.rs Cargo.toml

crates/sdg/tests/slicer_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
