/root/repo/target/debug/deps/context_tests-ad425ae625ef4b01.d: crates/pointer/tests/context_tests.rs Cargo.toml

/root/repo/target/debug/deps/libcontext_tests-ad425ae625ef4b01.rmeta: crates/pointer/tests/context_tests.rs Cargo.toml

crates/pointer/tests/context_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
