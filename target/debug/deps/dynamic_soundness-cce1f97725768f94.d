/root/repo/target/debug/deps/dynamic_soundness-cce1f97725768f94.d: tests/dynamic_soundness.rs

/root/repo/target/debug/deps/dynamic_soundness-cce1f97725768f94: tests/dynamic_soundness.rs

tests/dynamic_soundness.rs:
