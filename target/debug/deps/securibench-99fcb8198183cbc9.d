/root/repo/target/debug/deps/securibench-99fcb8198183cbc9.d: tests/securibench.rs Cargo.toml

/root/repo/target/debug/deps/libsecuribench-99fcb8198183cbc9.rmeta: tests/securibench.rs Cargo.toml

tests/securibench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
