/root/repo/target/debug/deps/jir-cf3684bfe04c9886.d: crates/jir/src/lib.rs crates/jir/src/ast.rs crates/jir/src/cfg.rs crates/jir/src/class.rs crates/jir/src/constprop.rs crates/jir/src/dom.rs crates/jir/src/expand.rs crates/jir/src/inst.rs crates/jir/src/lexer.rs crates/jir/src/lower.rs crates/jir/src/method.rs crates/jir/src/parser.rs crates/jir/src/pretty.rs crates/jir/src/program.rs crates/jir/src/ssa.rs crates/jir/src/stdlib.rs crates/jir/src/types.rs crates/jir/src/util.rs crates/jir/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libjir-cf3684bfe04c9886.rmeta: crates/jir/src/lib.rs crates/jir/src/ast.rs crates/jir/src/cfg.rs crates/jir/src/class.rs crates/jir/src/constprop.rs crates/jir/src/dom.rs crates/jir/src/expand.rs crates/jir/src/inst.rs crates/jir/src/lexer.rs crates/jir/src/lower.rs crates/jir/src/method.rs crates/jir/src/parser.rs crates/jir/src/pretty.rs crates/jir/src/program.rs crates/jir/src/ssa.rs crates/jir/src/stdlib.rs crates/jir/src/types.rs crates/jir/src/util.rs crates/jir/src/validate.rs Cargo.toml

crates/jir/src/lib.rs:
crates/jir/src/ast.rs:
crates/jir/src/cfg.rs:
crates/jir/src/class.rs:
crates/jir/src/constprop.rs:
crates/jir/src/dom.rs:
crates/jir/src/expand.rs:
crates/jir/src/inst.rs:
crates/jir/src/lexer.rs:
crates/jir/src/lower.rs:
crates/jir/src/method.rs:
crates/jir/src/parser.rs:
crates/jir/src/pretty.rs:
crates/jir/src/program.rs:
crates/jir/src/ssa.rs:
crates/jir/src/stdlib.rs:
crates/jir/src/types.rs:
crates/jir/src/util.rs:
crates/jir/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
