/root/repo/target/debug/deps/taj_webgen-114edd5c37240ce2.d: crates/webgen/src/lib.rs crates/webgen/src/generate.rs crates/webgen/src/interp.rs crates/webgen/src/micro.rs crates/webgen/src/patterns.rs crates/webgen/src/securibench.rs crates/webgen/src/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtaj_webgen-114edd5c37240ce2.rmeta: crates/webgen/src/lib.rs crates/webgen/src/generate.rs crates/webgen/src/interp.rs crates/webgen/src/micro.rs crates/webgen/src/patterns.rs crates/webgen/src/securibench.rs crates/webgen/src/table2.rs Cargo.toml

crates/webgen/src/lib.rs:
crates/webgen/src/generate.rs:
crates/webgen/src/interp.rs:
crates/webgen/src/micro.rs:
crates/webgen/src/patterns.rs:
crates/webgen/src/securibench.rs:
crates/webgen/src/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
