/root/repo/target/debug/deps/taj-8808c491ad3799c3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtaj-8808c491ad3799c3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
