/root/repo/target/debug/deps/proptest_frontend-548746f0b32494b2.d: crates/jir/tests/proptest_frontend.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_frontend-548746f0b32494b2.rmeta: crates/jir/tests/proptest_frontend.rs Cargo.toml

crates/jir/tests/proptest_frontend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
