/root/repo/target/debug/deps/taj_pointer-c476b777e3eb346c.d: crates/pointer/src/lib.rs crates/pointer/src/callgraph.rs crates/pointer/src/context.rs crates/pointer/src/escape.rs crates/pointer/src/heapgraph.rs crates/pointer/src/keys.rs crates/pointer/src/priority.rs crates/pointer/src/solver.rs Cargo.toml

/root/repo/target/debug/deps/libtaj_pointer-c476b777e3eb346c.rmeta: crates/pointer/src/lib.rs crates/pointer/src/callgraph.rs crates/pointer/src/context.rs crates/pointer/src/escape.rs crates/pointer/src/heapgraph.rs crates/pointer/src/keys.rs crates/pointer/src/priority.rs crates/pointer/src/solver.rs Cargo.toml

crates/pointer/src/lib.rs:
crates/pointer/src/callgraph.rs:
crates/pointer/src/context.rs:
crates/pointer/src/escape.rs:
crates/pointer/src/heapgraph.rs:
crates/pointer/src/keys.rs:
crates/pointer/src/priority.rs:
crates/pointer/src/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
