/root/repo/target/debug/deps/concurrency-9d4fefcd7259b1f9.d: tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-9d4fefcd7259b1f9: tests/concurrency.rs

tests/concurrency.rs:
