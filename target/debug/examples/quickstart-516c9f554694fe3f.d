/root/repo/target/debug/examples/quickstart-516c9f554694fe3f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-516c9f554694fe3f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
