/root/repo/target/debug/examples/report_dedup-f946ec87e245d605.d: examples/report_dedup.rs Cargo.toml

/root/repo/target/debug/examples/libreport_dedup-f946ec87e245d605.rmeta: examples/report_dedup.rs Cargo.toml

examples/report_dedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
