/root/repo/target/debug/examples/custom_rules-b7b3075ce4a7e0b1.d: examples/custom_rules.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_rules-b7b3075ce4a7e0b1.rmeta: examples/custom_rules.rs Cargo.toml

examples/custom_rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
