/root/repo/target/debug/examples/struts_audit-e5077f37ffaaf341.d: examples/struts_audit.rs Cargo.toml

/root/repo/target/debug/examples/libstruts_audit-e5077f37ffaaf341.rmeta: examples/struts_audit.rs Cargo.toml

examples/struts_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
