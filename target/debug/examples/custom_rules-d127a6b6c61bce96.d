/root/repo/target/debug/examples/custom_rules-d127a6b6c61bce96.d: examples/custom_rules.rs

/root/repo/target/debug/examples/custom_rules-d127a6b6c61bce96: examples/custom_rules.rs

examples/custom_rules.rs:
