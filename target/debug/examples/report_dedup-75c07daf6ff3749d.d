/root/repo/target/debug/examples/report_dedup-75c07daf6ff3749d.d: examples/report_dedup.rs

/root/repo/target/debug/examples/report_dedup-75c07daf6ff3749d: examples/report_dedup.rs

examples/report_dedup.rs:
