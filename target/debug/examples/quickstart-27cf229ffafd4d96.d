/root/repo/target/debug/examples/quickstart-27cf229ffafd4d96.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-27cf229ffafd4d96: examples/quickstart.rs

examples/quickstart.rs:
