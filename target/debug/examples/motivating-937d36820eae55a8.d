/root/repo/target/debug/examples/motivating-937d36820eae55a8.d: examples/motivating.rs Cargo.toml

/root/repo/target/debug/examples/libmotivating-937d36820eae55a8.rmeta: examples/motivating.rs Cargo.toml

examples/motivating.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
