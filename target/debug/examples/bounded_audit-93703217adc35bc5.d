/root/repo/target/debug/examples/bounded_audit-93703217adc35bc5.d: examples/bounded_audit.rs

/root/repo/target/debug/examples/bounded_audit-93703217adc35bc5: examples/bounded_audit.rs

examples/bounded_audit.rs:
