/root/repo/target/debug/examples/report_dedup-03a440315c8b9bd4.d: examples/report_dedup.rs

/root/repo/target/debug/examples/report_dedup-03a440315c8b9bd4: examples/report_dedup.rs

examples/report_dedup.rs:
