/root/repo/target/debug/examples/quickstart-daf927b9be5afb2b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-daf927b9be5afb2b: examples/quickstart.rs

examples/quickstart.rs:
