/root/repo/target/debug/examples/struts_audit-60d1c6d4d8b04b9a.d: examples/struts_audit.rs

/root/repo/target/debug/examples/struts_audit-60d1c6d4d8b04b9a: examples/struts_audit.rs

examples/struts_audit.rs:
