/root/repo/target/debug/examples/motivating-b21440548f465af5.d: examples/motivating.rs Cargo.toml

/root/repo/target/debug/examples/libmotivating-b21440548f465af5.rmeta: examples/motivating.rs Cargo.toml

examples/motivating.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
