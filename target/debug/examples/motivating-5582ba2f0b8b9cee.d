/root/repo/target/debug/examples/motivating-5582ba2f0b8b9cee.d: examples/motivating.rs

/root/repo/target/debug/examples/motivating-5582ba2f0b8b9cee: examples/motivating.rs

examples/motivating.rs:
