/root/repo/target/debug/examples/bounded_audit-2885f353abfe8fab.d: examples/bounded_audit.rs Cargo.toml

/root/repo/target/debug/examples/libbounded_audit-2885f353abfe8fab.rmeta: examples/bounded_audit.rs Cargo.toml

examples/bounded_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
