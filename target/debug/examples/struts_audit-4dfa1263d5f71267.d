/root/repo/target/debug/examples/struts_audit-4dfa1263d5f71267.d: examples/struts_audit.rs

/root/repo/target/debug/examples/struts_audit-4dfa1263d5f71267: examples/struts_audit.rs

examples/struts_audit.rs:
