/root/repo/target/debug/examples/custom_rules-4efa9fea8751f7fc.d: examples/custom_rules.rs

/root/repo/target/debug/examples/custom_rules-4efa9fea8751f7fc: examples/custom_rules.rs

examples/custom_rules.rs:
