/root/repo/target/debug/examples/report_dedup-34fb6b56d708dd3e.d: examples/report_dedup.rs Cargo.toml

/root/repo/target/debug/examples/libreport_dedup-34fb6b56d708dd3e.rmeta: examples/report_dedup.rs Cargo.toml

examples/report_dedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
