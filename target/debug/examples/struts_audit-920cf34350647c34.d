/root/repo/target/debug/examples/struts_audit-920cf34350647c34.d: examples/struts_audit.rs Cargo.toml

/root/repo/target/debug/examples/libstruts_audit-920cf34350647c34.rmeta: examples/struts_audit.rs Cargo.toml

examples/struts_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
