/root/repo/target/debug/examples/custom_rules-aed15b5067a70ead.d: examples/custom_rules.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_rules-aed15b5067a70ead.rmeta: examples/custom_rules.rs Cargo.toml

examples/custom_rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
