/root/repo/target/debug/examples/motivating-9c00a7d8592efb8f.d: examples/motivating.rs

/root/repo/target/debug/examples/motivating-9c00a7d8592efb8f: examples/motivating.rs

examples/motivating.rs:
