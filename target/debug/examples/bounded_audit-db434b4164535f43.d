/root/repo/target/debug/examples/bounded_audit-db434b4164535f43.d: examples/bounded_audit.rs Cargo.toml

/root/repo/target/debug/examples/libbounded_audit-db434b4164535f43.rmeta: examples/bounded_audit.rs Cargo.toml

examples/bounded_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
