/root/repo/target/debug/examples/bounded_audit-21082a7b9951375e.d: examples/bounded_audit.rs

/root/repo/target/debug/examples/bounded_audit-21082a7b9951375e: examples/bounded_audit.rs

examples/bounded_audit.rs:
