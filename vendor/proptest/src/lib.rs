//! Offline stand-in for the `proptest` crate. It keeps the same authoring
//! surface (`proptest!`, strategies, `prop_map`/`prop_flat_map`,
//! `prop_oneof!`, `proptest::collection::vec`, `any::<T>()`,
//! `ProptestConfig`) but runs each case from a deterministic per-test
//! seed and reports failures through plain `assert!` panics — no
//! shrinking, no persistence files.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Deterministic case-level RNG handed to strategies.
    pub struct TestRng {
        pub(crate) inner: StdRng,
    }

    impl TestRng {
        pub fn deterministic(seed: u64) -> TestRng {
            TestRng { inner: StdRng::seed_from_u64(seed) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        pub(crate) fn below(&mut self, bound: usize) -> usize {
            if bound == 0 {
                0
            } else {
                (self.next_u64() % bound as u64) as usize
            }
        }
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use std::rc::Rc;

    use rand::{Rng, SampleUniform};

    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let inner = self;
            BoxedStrategy::new(move |rng| f(inner.generate(rng)))
        }

        fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
        where
            Self: Sized + 'static,
            S2: Strategy + 'static,
            F: Fn(Self::Value) -> S2 + 'static,
        {
            let inner = self;
            BoxedStrategy::new(move |rng| {
                let mid = inner.generate(rng);
                f(mid).generate(rng)
            })
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy::new(move |rng| inner.generate(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Type-erased strategy; cheap to clone.
    pub struct BoxedStrategy<T> {
        gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { gen_fn: Rc::clone(&self.gen_fn) }
        }
    }

    impl<T> BoxedStrategy<T> {
        pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
            BoxedStrategy { gen_fn: Rc::new(f) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen_fn)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    impl<T: SampleUniform + 'static> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.inner.gen_range(self.start..self.end)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// String literals act as (very small) regex-like string strategies:
    /// `.` is any printable char, `[a-z]`-style classes, `\x` escapes,
    /// and the `{m,n}` / `{n}` / `*` / `+` / `?` quantifiers.
    impl Strategy for str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    #[derive(Clone)]
    enum Atom {
        Any,
        Lit(char),
        Class(Vec<(char, char)>),
    }

    fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '\\' => {
                    i += 1;
                    let c = chars.get(i).copied().unwrap_or('\\');
                    i += 1;
                    match c {
                        'n' => Atom::Lit('\n'),
                        't' => Atom::Lit('\t'),
                        'd' => Atom::Class(vec![('0', '9')]),
                        'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                        c => Atom::Lit(c),
                    }
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if chars.get(i + 1) == Some(&'-')
                            && chars.get(i + 2).is_some_and(|&c| c != ']')
                        {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    i += 1; // closing `]`
                    Atom::Class(ranges)
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Quantifier?
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i)
                        .expect("unterminated {} quantifier");
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    if let Some((lo, hi)) = spec.split_once(',') {
                        (lo.parse().expect("bad quantifier"), hi.parse().expect("bad quantifier"))
                    } else {
                        let n = spec.parse().expect("bad quantifier");
                        (n, n)
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            atoms.push((atom, min, max));
        }
        atoms
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in parse_pattern(pattern) {
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                match &atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Any => {
                        // Mostly printable ASCII, sometimes control or
                        // non-ASCII to keep parsers honest.
                        match rng.below(16) {
                            0 => out.push('\n'),
                            1 => out.push('\u{0}'),
                            2 => out.push('λ'),
                            3 => out.push('"'),
                            _ => out.push(char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()),
                        }
                    }
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.below(ranges.len())];
                        let span = hi as u32 - lo as u32 + 1;
                        out.push(
                            char::from_u32(lo as u32 + rng.below(span as usize) as u32).unwrap(),
                        );
                    }
                }
            }
        }
        out
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`]: an exact length or a
    /// half-open range of lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_exclusive - self.size.min;
            let len =
                self.size.min + if span == 0 { 0 } else { (rng.next_u64() % span as u64) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()`: the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            })*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// The test-block macro. Each contained `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($p:pat in $s:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __name_hash: u64 = 0xcbf29ce484222325;
                for __b in stringify!($name).bytes() {
                    __name_hash ^= __b as u64;
                    __name_hash = __name_hash.wrapping_mul(0x100000001b3);
                }
                for __case in 0..__cfg.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        __name_hash ^ __case.wrapping_mul(0x9e3779b97f4a7c15),
                    );
                    $(
                        let $p = $crate::strategy::Strategy::generate(
                            &($s),
                            &mut __rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let strat = (2usize..10, 0u8..3, any::<bool>());
        let mut rng = TestRng::deterministic(42);
        for _ in 0..64 {
            let (a, b, _) = strat.generate(&mut rng);
            assert!((2..10).contains(&a));
            assert!(b < 3);
        }
    }

    #[test]
    fn vec_respects_sizes() {
        let mut rng = TestRng::deterministic(7);
        let exact = crate::collection::vec(0usize..5, 4usize);
        assert_eq!(exact.generate(&mut rng).len(), 4);
        let ranged = crate::collection::vec(0usize..5, 1..3);
        for _ in 0..32 {
            let v = ranged.generate(&mut rng);
            assert!((1..3).contains(&v.len()), "{}", v.len());
        }
    }

    #[test]
    fn string_pattern_quantifier() {
        let mut rng = TestRng::deterministic(3);
        for _ in 0..32 {
            let s = ".{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
        }
        let lit = "ab{2}c".generate(&mut rng);
        assert_eq!(lit, "abbc");
    }

    #[test]
    fn flat_map_and_oneof_compose() {
        let strat = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(prop_oneof![Just("x"), Just("y")], n));
        let mut rng = TestRng::deterministic(11);
        for _ in 0..32 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
            assert!(v.iter().all(|&s| s == "x" || s == "y"));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, patterns, and bodies.
        #[test]
        fn macro_smoke((a, b) in (0usize..5, 0usize..5), flip in any::<bool>()) {
            prop_assert!(a < 5 && b < 5);
            let _ = flip;
        }
    }
}
