//! Offline stand-in for the `serde` crate, providing exactly the surface
//! this workspace uses: a `Serialize` trait that renders values into an
//! order-preserving JSON [`Value`], plus a derive macro (behind the
//! `derive` feature) mirroring `#[derive(Serialize)]` with support for
//! `#[serde(rename = "...")]` and `#[serde(flatten)]`.
//!
//! The container registry is unreachable in the build environment, so the
//! workspace vendors minimal implementations of its external dependencies
//! rather than pulling them from crates.io.

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// An order-preserving JSON document tree.
///
/// Object keys keep insertion order so serialized reports are
/// deterministic and diffable, matching what the real `serde_json`
/// produces with its `preserve_order` feature.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Unsigned integers (covers `u8`..`u128` and `usize`).
    UInt(u128),
    /// Signed integers that do not fit the unsigned arm.
    Int(i128),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty JSON object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Inserts (or replaces) a key in an object value. No-op on other
    /// variants.
    pub fn insert(&mut self, key: &str, value: Value) {
        if let Value::Object(entries) = self {
            if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                entries.push((key.to_string(), value));
            }
        }
    }

    /// Merges the entries of another object into this one (used by
    /// `#[serde(flatten)]`). Non-object arguments are ignored.
    pub fn merge(&mut self, other: Value) {
        if let Value::Object(entries) = other {
            for (k, v) in entries {
                self.insert(&k, v);
            }
        }
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => u64::try_from(*n).ok(),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::UInt(n) => i64::try_from(*n).ok(),
            Value::Int(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64().map(|n| n as usize) == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Serialization into a [`Value`] tree. The derive macro produces
/// implementations of this trait.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        })*
    };
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i128;
                if n >= 0 {
                    Value::UInt(n as u128)
                } else {
                    Value::Int(n)
                }
            }
        })*
    };
}

impl_serialize_uint!(u8, u16, u32, u64, u128, usize);
impl_serialize_int!(i8, i16, i32, i64, i128, isize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output: HashMap iteration order varies.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_insert_preserves_order_and_replaces() {
        let mut v = Value::object();
        v.insert("b", Value::UInt(1));
        v.insert("a", Value::UInt(2));
        v.insert("b", Value::UInt(3));
        assert_eq!(
            v,
            Value::Object(vec![("b".into(), Value::UInt(3)), ("a".into(), Value::UInt(2)),])
        );
    }

    #[test]
    fn index_missing_is_null() {
        let v = Value::object();
        assert!(v["nope"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn flatten_merge() {
        let mut outer = Value::object();
        outer.insert("kept", Value::Bool(true));
        let mut inner = Value::object();
        inner.insert("from_inner", Value::UInt(7));
        outer.merge(inner);
        assert_eq!(outer["from_inner"], 7u64);
        assert_eq!(outer["kept"], true);
    }

    #[test]
    fn primitive_serialize() {
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(5usize.to_value(), Value::UInt(5));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(vec![1u8, 2].to_value(), Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
    }
}
