//! Offline stand-in for `serde_json`: serializes any [`serde::Serialize`]
//! into pretty-printed JSON and parses JSON text back into
//! [`serde::Value`]. Only the API surface this workspace uses is
//! provided: `to_string_pretty`, `to_string`, `from_str`, `Value`, and
//! `Error`.

pub use serde::Value;

use std::fmt;

/// Parse or serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, true, &mut out);
    Ok(out)
}

/// Serializes a value as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, false, &mut out);
    Ok(out)
}

fn write_indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, depth: usize, pretty: bool, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    write_indent(depth + 1, out);
                }
                write_value(item, depth + 1, pretty, out);
            }
            if pretty {
                out.push('\n');
                write_indent(depth, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    write_indent(depth + 1, out);
                }
                write_escaped(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(item, depth + 1, pretty, out);
            }
            if pretty {
                out.push('\n');
                write_indent(depth, out);
            }
            out.push('}');
        }
    }
}

/// Maximum container nesting the parser accepts. The parser is
/// recursive-descent, so unbounded nesting would let a hostile input
/// (`[[[[…`) overflow the stack — an abort, not a catchable panic.
/// 128 is far beyond any legitimate protocol message.
const MAX_DEPTH: usize = 128;

/// Parses JSON text into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    parser.skip_ws();
    let v = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::new(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => {
                    self.depth -= 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos.saturating_sub(1)
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => {
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos.saturating_sub(1)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d =
                                self.bump().ok_or_else(|| Error::new("truncated \\u escape"))?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| Error::new("bad \\u escape digit"))?;
                        }
                        s.push(
                            char::from_u32(code).ok_or_else(|| Error::new("bad \\u code point"))?,
                        );
                    }
                    other => {
                        return Err(Error::new(format!(
                            "bad escape {:?}",
                            other.map(|c| c as char)
                        )))
                    }
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Re-decode a UTF-8 multibyte sequence.
                    let start = self.pos - 1;
                    let len = if b >= 0xf0 {
                        4
                    } else if b >= 0xe0 {
                        3
                    } else {
                        2
                    };
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error::new("bad UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad float `{text}`: {e}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u128>()
                .map(|n| Value::Int(-(n as i128)))
                .map_err(|e| Error::new(format!("bad int `{text}`: {e}")))
        } else {
            text.parse::<u128>()
                .map(Value::UInt)
                .map_err(|e| Error::new(format!("bad int `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_pretty() {
        let mut v = Value::object();
        v.insert("name", Value::String("taj".into()));
        v.insert("count", Value::UInt(3));
        v.insert("items", Value::Array(vec![Value::Bool(true), Value::Null]));
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"name\": \"taj\""));
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = from_str(r#"{"s": "a\"b\nc", "n": -42, "f": 1.5}"#).unwrap();
        assert_eq!(v["s"], "a\"b\nc");
        assert_eq!(v["n"].as_i64(), Some(-42));
        assert_eq!(v["f"].as_f64(), Some(1.5));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // 100k unclosed brackets must come back as Err, not abort the
        // process by blowing the recursive-descent parser's stack.
        let hostile = "[".repeat(100_000);
        let e = from_str(&hostile).unwrap_err();
        assert!(e.to_string().contains("nesting"), "{e}");
        let hostile_obj = "{\"a\":".repeat(100_000);
        assert!(from_str(&hostile_obj).is_err());
        // Reasonable nesting still parses, and depth resets between
        // siblings (close brackets must decrement the counter).
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str(&ok).is_ok());
        let siblings = "[[[1]],[[2]],[[3]]]";
        assert!(from_str(siblings).is_ok());
    }

    #[test]
    fn compact_and_pretty_agree() {
        let text = r#"{"a": [1, 2], "b": {"c": "d"}}"#;
        let v = from_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
    }
}
