//! Offline stand-in for the `rand` crate: a deterministic SplitMix64
//! generator exposing the `StdRng`/`SeedableRng`/`Rng::gen_range`
//! surface the workspace uses. Not cryptographic; statistically fine for
//! benchmark generation.

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a half-open range.
pub trait SampleUniform: Sized + Copy {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {
        $(impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(
                rng: &mut R,
                range: std::ops::Range<Self>,
            ) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $t
            }
        })*
    };
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Core generator operations, mirroring the slice of `rand::Rng` we use.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9e3779b97f4a7c15) }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..256 {
            let n = rng.gen_range(0..4);
            assert!((0..4).contains(&n));
            seen[n as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
    }
}
