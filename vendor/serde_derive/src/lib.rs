//! Offline stand-in for `serde_derive`, written against `proc_macro`
//! alone (no `syn`/`quote`). It supports the shapes this workspace
//! derives on: structs with named fields and enums with unit variants,
//! honoring `#[serde(rename = "...")]` and `#[serde(flatten)]` field
//! attributes. Anything else fails loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default)]
struct FieldAttrs {
    rename: Option<String>,
    flatten: bool,
    skip: bool,
}

/// Parses the tokens of one `#[...]` attribute group, updating `attrs`
/// if it is a `serde(...)` attribute.
fn parse_attr_group(group: &proc_macro::Group, attrs: &mut FieldAttrs) {
    let mut it = group.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(inner)) = it.next() else { return };
    let toks: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) => {
                let name = id.to_string();
                if name == "flatten" {
                    attrs.flatten = true;
                    i += 1;
                } else if name == "skip" || name == "skip_serializing" {
                    attrs.skip = true;
                    i += 1;
                } else if name == "rename" {
                    // rename = "literal"
                    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                        (toks.get(i + 1), toks.get(i + 2))
                    {
                        if eq.as_char() == '=' {
                            attrs.rename = Some(unquote(&lit.to_string()));
                        }
                    }
                    i += 3;
                } else {
                    // Unknown serde attribute (e.g. skip_serializing_if):
                    // skip the ident and any `= value` that follows.
                    i += 1;
                    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                        i += 2;
                    }
                }
            }
            _ => i += 1,
        }
    }
}

/// Strips the surrounding quotes from a string-literal token.
fn unquote(lit: &str) -> String {
    let inner = lit.trim_start_matches('"').trim_end_matches('"');
    // Un-escape the couple of sequences that can appear in our keys.
    inner.replace("\\\"", "\"").replace("\\\\", "\\")
}

/// Emits a string as a Rust string literal.
fn quote_str(s: &str) -> String {
    format!("{s:?}")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility ahead of `struct`/`enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                i += 1;
                break id.to_string();
            }
            Some(other) => {
                panic!("derive(Serialize) shim: unexpected token `{other}`")
            }
            None => panic!("derive(Serialize) shim: ran out of tokens"),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize) shim: expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize) shim: generic types are not supported ({name})");
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("derive(Serialize) shim: expected braced body for {name}, got {other:?}"),
    };

    let code = if kind == "struct" { derive_struct(&name, body) } else { derive_enum(&name, body) };
    code.parse().expect("derive(Serialize) shim: generated code parses")
}

fn derive_struct(name: &str, body: &proc_macro::Group) -> String {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut i = 0;
    let mut lines = String::new();

    while i < toks.len() {
        let mut attrs = FieldAttrs::default();
        // Field attributes.
        while matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                parse_attr_group(g, &mut attrs);
            }
            i += 2;
        }
        // Visibility.
        if matches!(toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(
                toks.get(i),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(field)) = toks.get(i) else {
            break;
        };
        let field = field.to_string();
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("derive(Serialize) shim: {name} must use named fields (at `{field}`)"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(t) = toks.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)

        if attrs.skip {
            continue;
        }
        if attrs.flatten {
            lines.push_str(&format!("__obj.merge(::serde::Serialize::to_value(&self.{field}));\n"));
        } else {
            let key = attrs.rename.unwrap_or_else(|| field.clone());
            lines.push_str(&format!(
                "__obj.insert({}, ::serde::Serialize::to_value(&self.{field}));\n",
                quote_str(&key)
            ));
        }
    }

    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{\n\
             let mut __obj = ::serde::Value::object();\n\
             {lines}\
             __obj\n\
           }}\n\
         }}"
    )
}

fn derive_enum(name: &str, body: &proc_macro::Group) -> String {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut i = 0;
    let mut arms = String::new();

    while i < toks.len() {
        let mut attrs = FieldAttrs::default();
        while matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                parse_attr_group(g, &mut attrs);
            }
            i += 2;
        }
        let Some(TokenTree::Ident(variant)) = toks.get(i) else {
            break;
        };
        let variant = variant.to_string();
        i += 1;
        if let Some(TokenTree::Group(_)) = toks.get(i) {
            panic!(
                "derive(Serialize) shim: enum {name} must have unit variants only \
                 (at `{variant}`)"
            );
        }
        // Skip a possible `= discriminant`.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 2;
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        let key = attrs.rename.unwrap_or_else(|| variant.clone());
        arms.push_str(&format!("{name}::{variant} => {},\n", quote_str(&key)));
    }

    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{\n\
             ::serde::Value::String(String::from(match self {{\n\
               {arms}\
             }}))\n\
           }}\n\
         }}"
    )
}
