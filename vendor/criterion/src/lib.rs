//! Offline stand-in for the `criterion` crate: the same authoring API
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_with_input`, `Throughput`) backed by a simple wall-clock
//! timer. It prints median per-iteration times instead of criterion's
//! statistical analysis, which is enough to compare hot paths locally.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier built from a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Throughput annotation; recorded and echoed, not analyzed.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Per-iteration timer handed to `iter` closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then the timed iterations.
        let _ = f();
        let start = Instant::now();
        for _ in 0..self.iters {
            let _ = std::hint::black_box(f());
        }
        self.total = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let samples = self.run_samples(|b| f(b, input));
        report(&label, &samples, self.throughput);
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let samples = self.run_samples(&mut f);
        report(&label, &samples, self.throughput);
    }

    fn run_samples<F: FnMut(&mut Bencher)>(&mut self, mut f: F) -> Vec<Duration> {
        let iters = self.criterion.iters_per_sample;
        (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher { iters, total: Duration::ZERO };
                f(&mut b);
                b.total / iters as u32
            })
            .collect()
    }

    pub fn finish(self) {}
}

/// Top-level harness state.
pub struct Criterion {
    iters_per_sample: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { iters_per_sample: 1 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10, throughput: None }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut samples = Vec::new();
        for _ in 0..10 {
            let mut b = Bencher { iters: self.iters_per_sample, total: Duration::ZERO };
            f(&mut b);
            samples.push(b.total / self.iters_per_sample as u32);
        }
        report(&name, &samples, None);
        self
    }
}

fn report(label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted.first().copied().unwrap_or_default();
    let max = sorted.last().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                format!("  ({:.1} MiB/s)", n as f64 / secs / (1024.0 * 1024.0))
            } else {
                String::new()
            }
        }
        Some(Throughput::Elements(n)) => {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                format!("  ({:.0} elem/s)", n as f64 / secs)
            } else {
                String::new()
            }
        }
        None => String::new(),
    };
    println!("{label:<60} median {median:>12.2?}  [{min:.2?} .. {max:.2?}]{rate}");
}

/// Re-export point used by generated harness code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
