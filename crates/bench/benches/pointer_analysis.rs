//! Criterion bench: phase-1 pointer analysis & call-graph construction
//! (§3.1) across benchmark sizes, with the context-policy ablation
//! (taint-API call-string contexts on/off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use taj_core::RuleSet;
use taj_pointer::{analyze, PolicyConfig, SolverConfig};
use taj_webgen::{generate, presets, Scale};

fn prepared_program(name: &str) -> jir::Program {
    let preset = presets().into_iter().find(|p| p.name == name).expect("preset");
    let bench = generate(&preset.spec(Scale::quick()));
    let mut program = jir::frontend::parse_program(&bench.source).expect("parses");
    taj_core::frameworks::synthesize_entrypoints(&mut program);
    taj_core::frameworks::apply_ejb_descriptor(&mut program, &bench.descriptor);
    let _ = taj_core::exceptions::model_exceptions(&mut program);
    jir::expand::expand_models(&mut program);
    jir::ssa::program_to_ssa(&mut program);
    program
}

fn bench_pointer_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("pointer_analysis");
    group.sample_size(10);
    for name in ["I", "Friki", "Webgoat"] {
        let program = prepared_program(name);
        let rules = RuleSet::default_rules();
        let cfg = SolverConfig {
            policy: PolicyConfig { taint_methods: rules.taint_methods(&program) },
            source_methods: rules.all_sources(&program),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("taj_policy", name), &program, |b, p| {
            b.iter(|| analyze(p, &cfg))
        });
        // Ablation: no taint-API call-string contexts.
        let plain = SolverConfig::default();
        group.bench_with_input(BenchmarkId::new("no_taint_ctx", name), &program, |b, p| {
            b.iter(|| analyze(p, &plain))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pointer_analysis);
criterion_main!(benches);
