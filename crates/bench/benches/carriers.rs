//! Criterion bench: taint-carrier detection (§4.1.1) with the
//! nested-depth ablation of §6.2.3 — depth 0/1/2/unbounded reachability
//! over the heap graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use taj_core::{IssueType, RuleSet};
use taj_pointer::{analyze, HeapGraph, PolicyConfig, SolverConfig};
use taj_webgen::{generate, presets, Scale};

fn bench_carriers(c: &mut Criterion) {
    let preset = presets().into_iter().find(|p| p.name == "Webgoat").expect("preset");
    let bench = generate(&preset.spec(Scale::quick()));
    let rules = RuleSet::default_rules();
    let mut program = jir::frontend::parse_program(&bench.source).expect("parses");
    taj_core::frameworks::synthesize_entrypoints(&mut program);
    jir::expand::expand_models(&mut program);
    jir::ssa::program_to_ssa(&mut program);
    let pts = analyze(
        &program,
        &SolverConfig {
            policy: PolicyConfig { taint_methods: rules.taint_methods(&program) },
            source_methods: rules.all_sources(&program),
            ..Default::default()
        },
    );
    let heap = HeapGraph::build(&pts);
    let resolved = rules.resolve(&program);
    let xss = resolved.iter().find(|r| r.issue == IssueType::Xss).expect("xss").clone();

    let mut group = c.benchmark_group("carrier_detection");
    group.sample_size(10);
    for depth in [Some(0usize), Some(1), Some(2), None] {
        let label = depth.map(|d| d.to_string()).unwrap_or_else(|| "unbounded".into());
        group.bench_with_input(BenchmarkId::new("nested_depth", label), &depth, |b, &d| {
            b.iter(|| taj_core::carriers::build_carrier_index(&program, &pts, &heap, &xss, d))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_carriers);
criterion_main!(benches);
