//! Criterion bench: priority-driven vs chaotic (FIFO) call-graph
//! construction under a node budget (§6.1) — the ablation behind the
//! prioritized column of Table 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use taj_core::RuleSet;
use taj_pointer::{analyze, PolicyConfig, SolverConfig};
use taj_webgen::{generate, presets, Scale};

fn bench_priority(c: &mut Criterion) {
    let preset = presets().into_iter().find(|p| p.name == "Webgoat").expect("preset");
    let bench = generate(&preset.spec(Scale::quick()));
    let rules = RuleSet::default_rules();
    let mut program = jir::frontend::parse_program(&bench.source).expect("parses");
    taj_core::frameworks::synthesize_entrypoints(&mut program);
    jir::expand::expand_models(&mut program);
    jir::ssa::program_to_ssa(&mut program);

    let mut group = c.benchmark_group("priority_cg");
    group.sample_size(10);
    for budget in [200usize, 500, 1000] {
        let base = SolverConfig {
            policy: PolicyConfig { taint_methods: rules.taint_methods(&program) },
            source_methods: rules.all_sources(&program),
            max_cg_nodes: Some(budget),
            priority: false,
        };
        group.bench_with_input(BenchmarkId::new("chaotic", budget), &program, |b, p| {
            b.iter(|| analyze(p, &base))
        });
        let prio = SolverConfig { priority: true, ..base.clone() };
        group.bench_with_input(BenchmarkId::new("prioritized", budget), &program, |b, p| {
            b.iter(|| analyze(p, &prio))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_priority);
criterion_main!(benches);
