//! Criterion bench: the jweb frontend substrate — lexing, parsing,
//! lowering, model expansion, and SSA construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use taj_webgen::{generate, presets, Scale};

fn bench_frontend(c: &mut Criterion) {
    let preset = presets().into_iter().find(|p| p.name == "Webgoat").expect("preset");
    let bench = generate(&preset.spec(Scale::quick()));
    let src = bench.source;

    let mut group = c.benchmark_group("frontend");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_with_input(BenchmarkId::new("lex", "Webgoat"), &src, |b, s| {
        b.iter(|| jir::lexer::lex(s).expect("lexes"))
    });
    group.bench_with_input(BenchmarkId::new("parse", "Webgoat"), &src, |b, s| {
        b.iter(|| jir::parser::parse(s).expect("parses"))
    });
    group.bench_with_input(BenchmarkId::new("lower", "Webgoat"), &src, |b, s| {
        b.iter(|| jir::frontend::parse_program(s).expect("lowers"))
    });
    group.bench_with_input(BenchmarkId::new("full_pipeline", "Webgoat"), &src, |b, s| {
        b.iter(|| jir::frontend::build_program(s).expect("builds"))
    });
    group.finish();
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
