//! Criterion bench: the three thin-slicing algorithms (§3.2) on prepared
//! programs — the core Table 3 comparison as a microbenchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use taj_core::{IssueType, RuleSet};
use taj_pointer::{analyze, PointsTo, PolicyConfig, SolverConfig};
use taj_sdg::{CiSlicer, CsSlicer, HybridSlicer, ProgramView, SliceBounds, SliceSpec};
use taj_webgen::{generate, presets, Scale};

struct Prepared {
    program: jir::Program,
    pts: PointsTo,
    spec: SliceSpec,
}

fn prepare(name: &str) -> Prepared {
    let preset = presets().into_iter().find(|p| p.name == name).expect("preset");
    let bench = generate(&preset.spec(Scale::quick()));
    let rules = RuleSet::default_rules();
    let mut program = jir::frontend::parse_program(&bench.source).expect("parses");
    taj_core::frameworks::synthesize_entrypoints(&mut program);
    jir::expand::expand_models(&mut program);
    jir::ssa::program_to_ssa(&mut program);
    let pts = analyze(
        &program,
        &SolverConfig {
            policy: PolicyConfig { taint_methods: rules.taint_methods(&program) },
            source_methods: rules.all_sources(&program),
            ..Default::default()
        },
    );
    let resolved = rules.resolve(&program);
    let xss = resolved.iter().find(|r| r.issue == IssueType::Xss).expect("xss");
    let mut spec = SliceSpec::default();
    spec.sources.extend(xss.sources.iter().copied());
    spec.sanitizers.extend(xss.sanitizers.iter().copied());
    for (m, pos) in &xss.sinks {
        spec.sinks.insert(*m, pos.clone());
    }
    Prepared { program, pts, spec }
}

fn bench_slicing(c: &mut Criterion) {
    let mut group = c.benchmark_group("slicing");
    group.sample_size(10);
    for name in ["I", "Webgoat"] {
        let p = prepare(name);
        let view = ProgramView::build(&p.program, &p.pts, &p.spec);
        group.bench_function(BenchmarkId::new("hybrid", name), |b| {
            b.iter(|| HybridSlicer::new(&view, SliceBounds::default()).run())
        });
        group.bench_function(BenchmarkId::new("ci", name), |b| {
            b.iter(|| CiSlicer::new(&view, SliceBounds::default()).run())
        });
        group.bench_function(BenchmarkId::new("cs", name), |b| {
            b.iter(|| CsSlicer::new(&view, SliceBounds::default()).run())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_slicing);
criterion_main!(benches);
