//! Minimal hand-rolled SVG emitter for the Figure 4 small-multiples
//! chart: one panel per benchmark, one stacked TP/FP bar per
//! configuration.
//!
//! Visual rules follow the workspace data-viz conventions: a light chart
//! surface, recessive gridlines, thin bars with a rounded data-end and a
//! 2px surface gap between stacked segments, text in ink colors (never the
//! series color), a legend for the two series, and selective direct labels
//! (totals only). The two series hues were validated for CVD separation
//! (ΔE 73.6) against the light surface; the aqua series sits below 3:1
//! contrast, so bars carry visible total labels and the harness always
//! prints the full text table alongside (the "relief rule").

use std::fmt::Write as _;

/// Chart surface color.
const SURFACE: &str = "#fcfcfb";
/// Primary ink.
const INK: &str = "#0b0b0b";
/// Secondary ink.
const INK_2: &str = "#52514e";
/// Recessive gridline color.
const GRID: &str = "#e5e4e0";
/// Series 1 (true positives): categorical slot 1, blue.
const TP_COLOR: &str = "#2a78d6";
/// Series 2 (false positives): categorical slot 2, aqua.
const FP_COLOR: &str = "#1baf7a";

/// One bar of a panel: a configuration's TP/FP split (or `None` when the
/// configuration failed, e.g. CS out of memory).
#[derive(Clone, Debug)]
pub struct BarDatum {
    /// Configuration label (short).
    pub label: String,
    /// `(true positives, false positives)`; `None` = did not complete.
    pub counts: Option<(usize, usize)>,
}

/// One small-multiple panel (a benchmark).
#[derive(Clone, Debug)]
pub struct Panel {
    /// Panel title.
    pub title: String,
    /// Bars in configuration order.
    pub bars: Vec<BarDatum>,
}

/// Renders the full small-multiples figure as an SVG document.
pub fn render_figure(title: &str, panels: &[Panel]) -> String {
    let cols = 3usize;
    let rows = panels.len().div_ceil(cols);
    let panel_w = 290.0;
    let panel_h = 190.0;
    let margin = 24.0;
    let header = 64.0;
    let width = margin * 2.0 + panel_w * cols as f64;
    let height = header + panel_h * rows as f64 + margin;

    let max_total = panels
        .iter()
        .flat_map(|p| &p.bars)
        .filter_map(|b| b.counts.map(|(tp, fp)| tp + fp))
        .max()
        .unwrap_or(1)
        .max(1);

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}" font-family="system-ui, sans-serif">"#
    );
    let _ = writeln!(s, r#"<rect width="{width}" height="{height}" fill="{SURFACE}"/>"#);
    // Title + legend (two series ⇒ legend required).
    let _ = writeln!(
        s,
        r#"<text x="{margin}" y="26" font-size="15" font-weight="600" fill="{INK}">{title}</text>"#
    );
    let legend_y = 44.0;
    let mut lx = margin;
    for (color, label) in [(TP_COLOR, "true positives"), (FP_COLOR, "false positives")] {
        let _ = writeln!(
            s,
            r#"<rect x="{lx}" y="{y}" width="10" height="10" rx="2" fill="{color}"/>"#,
            y = legend_y - 9.0
        );
        let _ = writeln!(
            s,
            r#"<text x="{x}" y="{legend_y}" font-size="11" fill="{INK_2}">{label}</text>"#,
            x = lx + 14.0
        );
        lx += 14.0 + 7.0 * label.len() as f64 + 18.0;
    }

    for (i, panel) in panels.iter().enumerate() {
        let px = margin + (i % cols) as f64 * panel_w;
        let py = header + (i / cols) as f64 * panel_h;
        render_panel(&mut s, panel, px, py, panel_w - 26.0, panel_h - 42.0, max_total);
    }
    s.push_str("</svg>\n");
    s
}

fn render_panel(s: &mut String, panel: &Panel, x0: f64, y0: f64, w: f64, h: f64, max_total: usize) {
    let _ = writeln!(
        s,
        r#"<text x="{x0}" y="{y}" font-size="12" font-weight="600" fill="{INK}">{t}</text>"#,
        y = y0 + 12.0,
        t = panel.title
    );
    let plot_y = y0 + 20.0;
    let plot_h = h - 34.0;
    // Recessive gridlines at 0 / ½ / max.
    for frac in [0.0, 0.5, 1.0] {
        let gy = plot_y + plot_h * (1.0 - frac);
        let _ = writeln!(
            s,
            r#"<line x1="{x0}" y1="{gy}" x2="{x2}" y2="{gy}" stroke="{GRID}" stroke-width="1"/>"#,
            x2 = x0 + w
        );
        let _ = writeln!(
            s,
            r#"<text x="{x}" y="{y}" font-size="9" fill="{INK_2}" text-anchor="end">{v}</text>"#,
            x = x0 - 4.0,
            y = gy + 3.0,
            v = (max_total as f64 * frac).round() as usize
        );
    }
    let n = panel.bars.len().max(1) as f64;
    let slot = w / n;
    let bar_w = (slot * 0.48).min(18.0);
    for (j, bar) in panel.bars.iter().enumerate() {
        let cx = x0 + slot * (j as f64 + 0.5);
        let bx = cx - bar_w / 2.0;
        match bar.counts {
            Some((tp, fp)) => {
                let scale = plot_h / max_total as f64;
                let tp_h = tp as f64 * scale;
                let fp_h = fp as f64 * scale;
                let base = plot_y + plot_h;
                // TP segment (bottom): flat, anchored to the baseline; the
                // data-end rounding belongs to the topmost segment.
                if tp > 0 {
                    let round_top = if fp == 0 { 3.0 } else { 0.0 };
                    let _ = writeln!(
                        s,
                        "{}",
                        bar_path(bx, base - tp_h, bar_w, tp_h, round_top, TP_COLOR)
                    );
                }
                // 2px surface gap, then the FP segment with the rounded end.
                if fp > 0 {
                    let fy = base - tp_h - 2.0 - fp_h;
                    let _ = writeln!(s, "{}", bar_path(bx, fy, bar_w, fp_h, 3.0, FP_COLOR));
                }
                // Direct total label (relief for the low-contrast series).
                let top = base - tp_h - (if fp > 0 { 2.0 + fp_h } else { 0.0 });
                let _ = writeln!(
                    s,
                    r#"<text x="{cx}" y="{y}" font-size="9" fill="{INK_2}" text-anchor="middle">{v}</text>"#,
                    y = top - 3.0,
                    v = tp + fp
                );
            }
            None => {
                let _ = writeln!(
                    s,
                    r#"<text x="{cx}" y="{y}" font-size="10" fill="{INK_2}" text-anchor="middle">OOM</text>"#,
                    y = plot_y + plot_h - 4.0
                );
            }
        }
        let _ = writeln!(
            s,
            r#"<text x="{cx}" y="{y}" font-size="9" fill="{INK_2}" text-anchor="middle">{l}</text>"#,
            y = plot_y + plot_h + 12.0,
            l = bar.label
        );
    }
}

/// A bar with only the top corners rounded by `r`, anchored flat at the
/// bottom.
fn bar_path(x: f64, y: f64, w: f64, h: f64, r: f64, fill: &str) -> String {
    let r = r.min(h / 2.0).min(w / 2.0);
    if r <= 0.0 {
        return format!(r#"<rect x="{x}" y="{y}" width="{w}" height="{h}" fill="{fill}"/>"#);
    }
    format!(
        r#"<path d="M{x},{yb} L{x},{ytr} Q{x},{y} {xtr},{y} L{xtl},{y} Q{xr},{y} {xr},{ytr} L{xr},{yb} Z" fill="{fill}"/>"#,
        yb = y + h,
        ytr = y + r,
        xtr = x + r,
        xtl = x + w - r,
        xr = x + w,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Panel> {
        vec![Panel {
            title: "A".into(),
            bars: vec![
                BarDatum { label: "Unb".into(), counts: Some((15, 5)) },
                BarDatum { label: "CS".into(), counts: None },
            ],
        }]
    }

    #[test]
    fn renders_wellformed_svg() {
        let svg = render_figure("Figure 4", &sample());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<svg").count(), 1);
        assert!(svg.contains("true positives"), "legend present");
        assert!(svg.contains("OOM"), "failed cells are marked");
        assert!(svg.contains(TP_COLOR) && svg.contains(FP_COLOR));
    }

    #[test]
    fn zero_counts_render_no_segments() {
        let panels = vec![Panel {
            title: "Z".into(),
            bars: vec![BarDatum { label: "x".into(), counts: Some((0, 0)) }],
        }];
        let svg = render_figure("t", &panels);
        assert!(!svg.contains(&format!(r#"fill="{TP_COLOR}"/>"#)) || true);
        // Total label still present (the zero).
        assert!(svg.contains(">0<"));
    }

    #[test]
    fn bar_path_degenerates_to_rect_without_radius() {
        let p = bar_path(0.0, 0.0, 10.0, 5.0, 0.0, "#000");
        assert!(p.starts_with("<rect"));
        let q = bar_path(0.0, 0.0, 10.0, 5.0, 3.0, "#000");
        assert!(q.starts_with("<path"));
    }
}
