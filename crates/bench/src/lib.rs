//! # taj-bench — harnesses regenerating the paper's tables and figures
//!
//! Binaries (each prints one table/figure of the paper, with the paper's
//! own numbers alongside for shape comparison):
//!
//! - `table1` — the settings matrix of the five configurations;
//! - `table2` — the 22 synthetic benchmarks and their statistics;
//! - `table3` — issues + running time per benchmark × configuration;
//! - `figure2` — a DOT rendering of an HSDG fragment;
//! - `figure4` — true/false-positive classification on the 9 evaluated
//!   benchmarks;
//! - `smoke` — a quick sanity run over selected presets.
//!
//! Criterion benches live in `benches/`.

pub mod svg;

use std::time::Instant;

use taj_core::{
    analyze_prepared, prepare, score, GroundTruth, RuleSet, Score, TajConfig, TajError, TajReport,
};
use taj_webgen::{generate, BenchmarkPreset, GeneratedBenchmark, Scale};

/// Outcome of one (benchmark, configuration) cell of Table 3.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // reports are transient harness values
pub enum CellOutcome {
    /// Completed: report + wall time.
    Done {
        /// The analysis report.
        report: TajReport,
        /// Wall-clock milliseconds.
        ms: u128,
        /// Score against ground truth.
        score: Score,
    },
    /// Ran out of its memory budget (printed as `-`, like the paper's CS
    /// failures).
    OutOfMemory,
}

impl CellOutcome {
    /// Issue count, if completed.
    pub fn issues(&self) -> Option<usize> {
        match self {
            CellOutcome::Done { report, .. } => Some(report.issue_count()),
            CellOutcome::OutOfMemory => None,
        }
    }

    /// Wall time in ms, if completed.
    pub fn ms(&self) -> Option<u128> {
        match self {
            CellOutcome::Done { ms, .. } => Some(*ms),
            CellOutcome::OutOfMemory => None,
        }
    }

    /// Score, if completed.
    pub fn score(&self) -> Option<Score> {
        match self {
            CellOutcome::Done { score, .. } => Some(*score),
            CellOutcome::OutOfMemory => None,
        }
    }
}

/// Runs one configuration over a generated benchmark.
pub fn run_cell(bench: &GeneratedBenchmark, config: &TajConfig) -> CellOutcome {
    let t0 = Instant::now();
    let prepared = match prepare(&bench.source, Some(&bench.descriptor), RuleSet::default_rules()) {
        Ok(p) => p,
        Err(e) => panic!("generated benchmark `{}` must prepare: {e}", bench.name),
    };
    match analyze_prepared(&prepared, config) {
        Ok(report) => {
            let ms = t0.elapsed().as_millis();
            let s = score(&report, &bench.truth);
            CellOutcome::Done { report, ms, score: s }
        }
        Err(TajError::OutOfMemory { .. }) => CellOutcome::OutOfMemory,
        Err(e) => panic!("unexpected failure on `{}`: {e}", bench.name),
    }
}

/// Generates the benchmark for a preset under `scale`.
pub fn build_benchmark(preset: &BenchmarkPreset, scale: Scale) -> GeneratedBenchmark {
    generate(&preset.spec(scale))
}

/// Scale selection from CLI args (`--quick` anywhere selects the reduced
/// scale).
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--quick") {
        Scale::quick()
    } else {
        Scale::standard()
    }
}

/// Optional `--only <name>` benchmark filter from CLI args.
pub fn only_filter() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--only").and_then(|i| args.get(i + 1).cloned())
}

/// Aggregates a set of scores.
pub fn aggregate(scores: impl IntoIterator<Item = Score>) -> Score {
    let mut out = Score::default();
    for s in scores {
        out.true_positives += s.true_positives;
        out.false_positives += s.false_positives;
        out.false_negatives += s.false_negatives;
    }
    out
}

/// Ground-truth accessor re-exported for binaries.
pub fn truth_of(bench: &GeneratedBenchmark) -> &GroundTruth {
    &bench.truth
}
