//! Thread-scaling benchmark for the parallel phase-2 engine: emits
//! `BENCH_parallel.json` with wall-clock per configuration × thread
//! count over the combined webgen securibench suite.
//!
//! Phase 1 is computed once per configuration (shared exactly as the
//! daemon's artifact cache shares it) and the timed region is phase 2 —
//! the part the parallel engine fans out. `speedup_vs_seq` is the
//! single-thread wall clock divided by this row's wall clock, so > 1.0
//! means the fan-out is winning.
//!
//! Honesty note: `host_cores` records what the machine can actually run
//! in parallel. On a single-core host every thread count interleaves on
//! one CPU and the speedup hovers around 1.0 — the numbers are measured,
//! never extrapolated. Run on a multi-core host for real scaling data.
//!
//! Usage: `parallel [--quick] [--scale K] [--out PATH]`
//!   --quick   1 timing iteration and scale 2 (CI smoke mode)
//!   --scale   replicate the suite K times with renamed classes
//!             (default 8) — one copy is ~12 KB of jweb, far too small
//!             for thread-spawn overhead to amortize
//!   --out     output path (default `BENCH_parallel.json`)

use std::fmt::Write as _;
use std::time::Instant;

use taj_core::{
    analyze_with_phase1_opts, prepare, run_phase1_shared, run_phase1_traced, Recorder, RuleSet,
    RunOptions, Supervisor, TajConfig,
};
use taj_webgen::securibench_cases;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Rewrites `source` appending `suffix` to every occurrence of a name in
/// `classes` (token-wise, so `Basic1` never corrupts `Basic10`). The
/// securibench class names are globally unique, which is what makes
/// replica suites compose into one well-formed program.
fn rename_classes(source: &str, classes: &[String], suffix: &str) -> String {
    let mut out = String::with_capacity(source.len() + 64);
    let bytes = source.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let ident = &source[start..i];
            out.push_str(ident);
            if classes.iter().any(|c| c == ident) {
                out.push_str(suffix);
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

/// Every class name defined in `source` (`class Foo ...`).
fn class_names(source: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut rest = source;
    while let Some(pos) = rest.find("class ") {
        let after = &rest[pos + 6..];
        let name: String =
            after.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if !name.is_empty() {
            names.push(name);
        }
        rest = after;
    }
    names.sort();
    names.dedup();
    names
}

struct Row {
    config: &'static str,
    threads: usize,
    wall_ms: f64,
    speedup_vs_seq: f64,
    issues: Option<usize>,
    error: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_parallel.json", String::as_str);
    let iters = if quick { 1 } else { 5 };
    let scale: usize = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map_or(if quick { 2 } else { 8 }, |v| v.parse().expect("--scale takes an integer"));

    // One combined program: every securibench case concatenated (class
    // names are globally unique across the suite, so the sources compose
    // into a single application with one seed list per rule — the shape
    // the chunked work queue is built for), replicated `scale` times
    // with renamed classes so phase 2 has enough seeds to be worth
    // fanning out.
    let cases = securibench_cases();
    let mut combined = String::new();
    for case in &cases {
        combined.push_str(&case.source);
        combined.push('\n');
    }
    let classes = class_names(&combined);
    let mut source = combined.clone();
    for k in 1..scale {
        source.push_str(&rename_classes(&combined, &classes, &format!("R{k}")));
    }
    eprintln!("suite: {} securibench cases x{scale}, {} bytes of jweb", cases.len(), source.len());

    let prepared = prepare(&source, None, RuleSet::default_rules()).expect("suite prepares");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows: Vec<Row> = Vec::new();
    // Per-config span recorders from one traced end-to-end pass: where
    // inside each phase the time actually goes (solve vs escape vs
    // per-unit slicing), embedded alongside the wall-clock rows.
    let mut breakdown: Vec<(&'static str, Recorder)> = Vec::new();
    // IFDS tabulation counters (facts created, summary edges, worklist
    // pops) from the traced pass — the scale knobs for the access-path
    // fact space.
    let mut ifds_counters: Option<(usize, usize, usize)> = None;

    for config in TajConfig::all() {
        let phase1 = run_phase1_shared(&prepared, &config);
        // One untimed warm-up pass: the first phase-2 run per config
        // pays one-time costs (page faults, allocator growth) that
        // would otherwise be billed entirely to the threads=1 row.
        let _ = analyze_with_phase1_opts(&prepared, &phase1, &config, &RunOptions::default());
        let mut seq_ms = f64::NAN;
        for &threads in &THREADS {
            let opts = RunOptions { threads, ..RunOptions::default() };
            let mut best = f64::INFINITY;
            let mut issues = None;
            let mut error = None;
            for _ in 0..iters {
                let t0 = Instant::now();
                match analyze_with_phase1_opts(&prepared, &phase1, &config, &opts) {
                    Ok(report) => issues = Some(report.issue_count()),
                    Err(e) => error = Some(e.to_string()),
                }
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            if threads == 1 {
                seq_ms = best;
            }
            eprintln!(
                "{:<20} threads={threads}: {best:8.2} ms  ({}x vs seq)",
                config.name,
                if best > 0.0 { format!("{:.2}", seq_ms / best) } else { "-".into() },
            );
            rows.push(Row {
                config: config.name,
                threads,
                wall_ms: best,
                speedup_vs_seq: if best > 0.0 { seq_ms / best } else { 1.0 },
                issues,
                error,
            });
        }
        // One traced end-to-end pass (default threads, untimed) whose
        // span aggregation becomes this config's per-phase cost rows.
        let recorder = Recorder::new();
        let traced_phase1 = run_phase1_traced(&prepared, &config, &Supervisor::new(), &recorder);
        let traced_opts = RunOptions { recorder: recorder.clone(), ..RunOptions::default() };
        let traced = analyze_with_phase1_opts(&prepared, &traced_phase1, &config, &traced_opts);
        if config.name == "IFDS" {
            if let Ok(report) = &traced {
                ifds_counters = Some((
                    report.stats.ifds_facts,
                    report.stats.ifds_summary_edges,
                    report.stats.ifds_worklist_pops,
                ));
            }
        }
        breakdown.push((config.name, recorder));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"suite\": \"webgen-securibench\",");
    let _ = writeln!(json, "  \"cases\": {},", cases.len());
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"iters\": {iters},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let issues = r.issues.map_or("null".to_string(), |n| n.to_string());
        let error = r.error.as_ref().map_or("null".to_string(), |e| format!("{e:?}"));
        let _ = write!(
            json,
            "    {{\"config\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}, \
             \"speedup_vs_seq\": {:.3}, \"issues\": {}, \"error\": {}}}",
            r.config, r.threads, r.wall_ms, r.speedup_vs_seq, issues, error,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"phase_breakdown\": {\n");
    for (ci, (config, recorder)) in breakdown.iter().enumerate() {
        let _ = writeln!(json, "    \"{config}\": [");
        let agg = recorder.aggregate();
        for (ri, row) in agg.iter().enumerate() {
            let _ = write!(
                json,
                "      {{\"span\": \"{}\", \"count\": {}, \"total_ms\": {:.3}}}",
                row.name,
                row.count,
                row.total_us as f64 / 1e3,
            );
            json.push_str(if ri + 1 < agg.len() { ",\n" } else { "\n" });
        }
        json.push_str("    ]");
        json.push_str(if ci + 1 < breakdown.len() { ",\n" } else { "\n" });
    }
    json.push_str("  },\n");
    match ifds_counters {
        Some((facts, summary_edges, pops)) => {
            let _ = writeln!(
                json,
                "  \"ifds_counters\": {{\"facts_created\": {facts}, \
                 \"summary_edges\": {summary_edges}, \"worklist_pops\": {pops}}}"
            );
        }
        None => {
            let _ = writeln!(json, "  \"ifds_counters\": null");
        }
    }
    json.push_str("}\n");
    std::fs::write(out_path, &json).expect("write benchmark output");
    eprintln!("wrote {out_path}");
}
