//! Regenerates **Figure 4**: classification of reported issues into true
//! and false positives on the 9 manually-evaluated benchmarks, for all
//! five paper configurations plus the escape-repaired `CS-Escape` mode —
//! and the accuracy scores of §7.2.

use taj_bench::svg::{render_figure, BarDatum, Panel};
use taj_bench::{aggregate, build_benchmark, run_cell, scale_from_args, CellOutcome};
use taj_core::{Score, TajConfig};
use taj_webgen::presets;

fn main() {
    let scale = scale_from_args();
    let configs = TajConfig::all();

    println!("Figure 4. Classification of Reported Issues into True and False Positives");
    println!("(the paper's 9 manually-classified benchmarks; TP/FP/FN per configuration)\n");
    print!("{:<12}", "Application");
    for c in &configs {
        print!(" | {:>14}", short(c.name));
    }
    println!();
    println!("{}", "-".repeat(12 + configs.len() * 17));

    let mut agg: Vec<Vec<Score>> = vec![Vec::new(); configs.len()];
    let mut panels: Vec<Panel> = Vec::new();
    for preset in presets().into_iter().filter(|p| p.in_figure4) {
        let bench = build_benchmark(&preset, scale);
        print!("{:<12}", preset.name);
        let mut bars = Vec::new();
        for (i, config) in configs.iter().enumerate() {
            let label = bar_label(config.name);
            match run_cell(&bench, config) {
                CellOutcome::Done { score, .. } => {
                    print!(
                        " | {:>4}/{:>4}/{:>3}",
                        score.true_positives, score.false_positives, score.false_negatives
                    );
                    agg[i].push(score);
                    bars.push(BarDatum {
                        label,
                        counts: Some((score.true_positives, score.false_positives)),
                    });
                }
                CellOutcome::OutOfMemory => {
                    print!(" | {:>14}", "-/-/-");
                    bars.push(BarDatum { label, counts: None });
                }
            }
        }
        panels.push(Panel { title: preset.name.to_string(), bars });
        println!();
    }
    if let Some(path) = svg_path() {
        let svg = render_figure(
            "Figure 4 — classification of reported issues (TP/FP per configuration)",
            &panels,
        );
        match std::fs::write(&path, svg) {
            Ok(()) => println!(
                "
wrote {path}"
            ),
            Err(e) => eprintln!(
                "
error: cannot write {path}: {e}"
            ),
        }
    }

    println!("{}", "-".repeat(12 + configs.len() * 17));
    print!("{:<12}", "TOTAL");
    let mut totals = Vec::new();
    for scores in &agg {
        let t = aggregate(scores.iter().copied());
        print!(" | {:>4}/{:>4}/{:>3}", t.true_positives, t.false_positives, t.false_negatives);
        totals.push(t);
    }
    println!("\n(format: TP/FP/FN)\n");

    println!("—— Accuracy scores (TP / (TP+FP)) ——");
    for (c, t) in configs.iter().zip(&totals) {
        println!("{:<20} {:.2}", c.name, t.accuracy());
    }
    println!("\nPaper (§7.2): hybrid 0.35, CS 0.54, CI 0.22 — ordering CS > hybrid > CI.");
    println!("Paper: hybrid and CI agree on true positives on all 9 benchmarks; CS has");
    println!("false negatives on the multithreaded BlueBlog (2), I (1) and SBM (2).");

    // Per-benchmark CS false negatives on the multithreaded trio, and the
    // escape-analysis repair that recovers them (CS-Escape).
    println!("\n—— CS false negatives on multithreaded benchmarks ——");
    for preset in presets().into_iter().filter(|p| p.threads > 0) {
        let bench = build_benchmark(&preset, scale);
        let cs = run_cell(&bench, &TajConfig::cs_thin());
        let ce = run_cell(&bench, &TajConfig::cs_escape());
        match (cs, ce) {
            (CellOutcome::Done { score: cs, .. }, CellOutcome::Done { score: ce, .. }) => {
                println!(
                    "{:<12} CS false negatives: {} (paper: {}) | CS-Escape recovers {} -> {} remaining",
                    preset.name,
                    cs.false_negatives,
                    preset.threads,
                    cs.false_negatives.saturating_sub(ce.false_negatives),
                    ce.false_negatives
                );
            }
            _ => println!("{:<12} out of memory at this scale", preset.name),
        }
    }
}

/// `--svg <path>` CLI option.
fn svg_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--svg").and_then(|i| args.get(i + 1).cloned())
}

fn bar_label(name: &str) -> String {
    match name {
        "Hybrid-Unbounded" => "Unb".into(),
        "Hybrid-Prioritized" => "Pri".into(),
        "Hybrid-Optimized" => "Opt".into(),
        "CS-Escape" => "CS-E".into(),
        other => other.to_string(),
    }
}

fn short(name: &str) -> &str {
    match name {
        "Hybrid-Unbounded" => "Unbounded",
        "Hybrid-Prioritized" => "Prioritized",
        "Hybrid-Optimized" => "Optimized",
        other => other,
    }
}
