//! Load generator for the serving stack: shards × router × persistent
//! store, measured end to end. Emits `BENCH_serve.json`.
//!
//! The harness stands up N in-process shard daemons (each with its own
//! on-disk artifact store), fronts them with a router, and drives the
//! webgen securibench corpus through closed-loop client workers in two
//! phases:
//!
//! - **cold** — fresh daemons, empty stores: every distinct program pays
//!   prepare + phase 1 + phase 2 once; repeats are in-memory cache hits.
//! - **warm** — every daemon is shut down and restarted on the *same*
//!   store directory (new ephemeral ports, new router): the in-memory
//!   caches are empty again, but the disk tier answers repeats without a
//!   single phase-1 re-run. Warm-phase `tier="disk"` hits are the whole
//!   point of the persistent store; the harness fails if there are none.
//!
//! Latency percentiles come from the client-observed wall clock; tier
//! hit counts come from scraping each shard's Prometheus `metrics`
//! endpoint (counters restart at zero with the daemons, so a post-phase
//! scrape is that phase's total).
//!
//! Usage: `serve_load [--quick] [--out PATH] [--shards N] [--clients N]
//!                    [--requests N] [--threads N] [--store-dir DIR]`
//!   --quick      small corpus, few requests (CI smoke mode)
//!   --shards     backend daemons behind the router (default 2)
//!   --clients    closed-loop worker connections (default 4, quick 2)
//!   --requests   analyze requests per phase (default 4x corpus size)
//!   --threads    phase-2 threads per request (default 1 — determinism
//!                and fairness on small CI hosts)
//!   --store-dir  base directory for the shard stores (default: a
//!                per-process directory under the system temp dir)

use std::fmt::Write as _;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Instant;

use taj_service::{
    route, serve, AnalyzeOpts, Bind, BoundAddr, Client, RouterOptions, ServeOptions,
};
use taj_webgen::securibench_cases;

/// One shard daemon plus the directory its store persists under.
struct ShardProc {
    handle: taj_service::ServerHandle,
    addr: String,
    store_dir: std::path::PathBuf,
}

fn tcp_addr(bound: &BoundAddr) -> String {
    match bound {
        BoundAddr::Tcp(a) => a.to_string(),
        BoundAddr::Unix(p) => panic!("expected TCP bind, got unix:{}", p.display()),
    }
}

fn start_shards(store_base: &std::path::Path, shards: usize) -> Vec<ShardProc> {
    (0..shards)
        .map(|i| {
            let store_dir = store_base.join(format!("shard{i}"));
            let options = ServeOptions {
                bind: Bind::Tcp("127.0.0.1:0".to_string()),
                workers: 2,
                cache_bytes: 64 << 20,
                default_timeout_ms: None,
                debug: false,
                store_dir: Some(store_dir.clone()),
                store_bytes: 256 << 20,
                max_queue: 0,
                flight_records: 64,
                slow_ms: None,
            };
            let handle = serve(options).expect("start shard");
            let addr = tcp_addr(handle.addr());
            ShardProc { handle, addr, store_dir }
        })
        .collect()
}

fn start_router(shards: &[ShardProc]) -> (taj_service::RouterHandle, String) {
    let options = RouterOptions {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        shards: shards.iter().map(|s| s.addr.clone()).collect(),
        default_timeout_ms: None,
        tuning: taj_service::RouterTuning::default(),
        flight_records: 64,
        trace_out: None,
    };
    let handle = route(options).expect("start router");
    let addr = tcp_addr(handle.addr());
    (handle, addr)
}

/// Client-observed outcome of one phase.
struct PhaseResult {
    latencies_ms: Vec<f64>,
    errors: usize,
    wall_ms: f64,
    batch_ms: f64,
    batch_items: usize,
}

/// Closed-loop load: `clients` workers share `requests` analyze calls
/// round-robin over the corpus, each on its own router connection. A
/// final single batch envelope covering the whole corpus exercises the
/// batch path and times it.
fn run_phase(
    router_addr: &str,
    corpus: &Arc<Vec<String>>,
    clients: usize,
    requests: usize,
    threads: u64,
) -> PhaseResult {
    let t0 = Instant::now();
    let (tx, rx) = channel::<Result<f64, ()>>();
    let mut workers = Vec::new();
    for w in 0..clients {
        let tx = tx.clone();
        let corpus = Arc::clone(corpus);
        let addr = router_addr.to_string();
        let from = requests * w / clients;
        let to = requests * (w + 1) / clients;
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect_tcp(&addr).expect("connect worker");
            let opts = AnalyzeOpts { threads: Some(threads), ..AnalyzeOpts::default() };
            for k in from..to {
                let source = &corpus[k % corpus.len()];
                let t = Instant::now();
                let outcome = client.analyze(source, &opts);
                let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
                let _ = tx.send(outcome.map(|_| elapsed_ms).map_err(|_| ()));
            }
        }));
    }
    drop(tx);
    let mut latencies_ms = Vec::with_capacity(requests);
    let mut errors = 0;
    while let Ok(r) = rx.recv() {
        match r {
            Ok(ms) => latencies_ms.push(ms),
            Err(()) => errors += 1,
        }
    }
    for w in workers {
        let _ = w.join();
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut client = Client::connect_tcp(router_addr).expect("connect batch client");
    let opts = AnalyzeOpts { threads: Some(threads), ..AnalyzeOpts::default() };
    let items: Vec<(String, AnalyzeOpts)> =
        corpus.iter().map(|s| (s.clone(), opts.clone())).collect();
    let tb = Instant::now();
    let batch = client.batch(&items, None).expect("batch request");
    let batch_ms = tb.elapsed().as_secs_f64() * 1e3;
    let batch_items = batch.get("count").and_then(serde::Value::as_u64).map_or(0, |n| n as usize);
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    PhaseResult { latencies_ms, errors, wall_ms, batch_ms, batch_items }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() as f64 * p).ceil() as usize).clamp(1, sorted_ms.len()) - 1;
    sorted_ms[idx]
}

/// Reads one sample out of a Prometheus text exposition; `label` is the
/// exact rendered label set (e.g. `{tier="disk"}`), empty for none.
fn metric(exposition: &str, family: &str, label: &str) -> f64 {
    let needle = format!("{family}{label} ");
    exposition
        .lines()
        .find(|l| l.starts_with(&needle))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

/// Per-tier hit/miss totals summed over every shard, scraped from the
/// `metrics` endpoint.
#[derive(Default)]
struct TierTotals {
    hits: [f64; 4],
    misses: [f64; 4],
    store_entries: f64,
    store_replayed: f64,
    phase1_runs: f64,
}

const TIERS: [&str; 4] = ["prepared", "phase1", "report", "disk"];

fn scrape(shards: &[ShardProc]) -> TierTotals {
    let mut totals = TierTotals::default();
    for shard in shards {
        let mut client = Client::connect_tcp(&shard.addr).expect("connect for scrape");
        let text = client.metrics().expect("scrape metrics");
        for (i, tier) in TIERS.iter().enumerate() {
            let label = format!("{{tier=\"{tier}\"}}");
            totals.hits[i] += metric(&text, "taj_cache_hits_total", &label);
            totals.misses[i] += metric(&text, "taj_cache_misses_total", &label);
        }
        totals.store_entries += metric(&text, "taj_cache_entries", "{tier=\"disk\"}");
        totals.store_replayed += metric(&text, "taj_store_replayed_entries", "");
        totals.phase1_runs += metric(&text, "taj_phase1_runs_total", "");
    }
    totals
}

fn shutdown_all(shards: Vec<ShardProc>) -> Vec<std::path::PathBuf> {
    let mut dirs = Vec::new();
    for shard in shards {
        let mut client = Client::connect_tcp(&shard.addr).expect("connect for shutdown");
        let _ = client.shutdown();
        shard.handle.join();
        dirs.push(shard.store_dir);
    }
    dirs
}

fn phase_json(json: &mut String, name: &str, r: &PhaseResult, t: &TierTotals) {
    let mean = if r.latencies_ms.is_empty() {
        f64::NAN
    } else {
        r.latencies_ms.iter().sum::<f64>() / r.latencies_ms.len() as f64
    };
    let throughput = r.latencies_ms.len() as f64 / (r.wall_ms / 1e3);
    let _ = writeln!(json, "    \"{name}\": {{");
    let _ = writeln!(json, "      \"requests\": {},", r.latencies_ms.len());
    let _ = writeln!(json, "      \"errors\": {},", r.errors);
    let _ = writeln!(json, "      \"wall_ms\": {:.3},", r.wall_ms);
    let _ = writeln!(json, "      \"throughput_rps\": {throughput:.3},");
    let _ = writeln!(
        json,
        "      \"latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \
         \"mean\": {mean:.3}, \"max\": {:.3}}},",
        percentile(&r.latencies_ms, 0.50),
        percentile(&r.latencies_ms, 0.90),
        percentile(&r.latencies_ms, 0.99),
        r.latencies_ms.last().copied().unwrap_or(f64::NAN),
    );
    let _ = writeln!(
        json,
        "      \"batch\": {{\"items\": {}, \"wall_ms\": {:.3}}},",
        r.batch_items, r.batch_ms
    );
    json.push_str("      \"tiers\": {\n");
    for (i, tier) in TIERS.iter().enumerate() {
        let _ = write!(
            json,
            "        \"{tier}\": {{\"hits\": {}, \"misses\": {}}}",
            t.hits[i] as u64, t.misses[i] as u64
        );
        json.push_str(if i + 1 < TIERS.len() { ",\n" } else { "\n" });
    }
    json.push_str("      },\n");
    let _ = writeln!(
        json,
        "      \"store\": {{\"entries\": {}, \"replayed_entries\": {}}},",
        t.store_entries as u64, t.store_replayed as u64
    );
    let _ = writeln!(json, "      \"phase1_runs\": {}", t.phase1_runs as u64);
    json.push_str("    }");
}

/// Stitched-trace leg: one traced request through the router, its span
/// fragments fetched back via `trace <id>` and merged into a Chrome
/// trace — the per-hop latency decomposition (router forward vs shard
/// queue-wait vs analysis phases) that aggregate percentiles can't show.
fn trace_leg(router_addr: &str, source: &str, threads: u64) -> (Vec<serde::Value>, String) {
    let trace_id = "serve-load-trace-1";
    let mut client = Client::connect_tcp(router_addr).expect("connect trace client");
    let opts = AnalyzeOpts {
        threads: Some(threads),
        trace_id: Some(trace_id.to_string()),
        ..AnalyzeOpts::default()
    };
    client.analyze(source, &opts).expect("traced analyze");
    let trace = client.trace(trace_id).expect("fetch trace from router");
    let fragments = taj_service::fragments_of(&trace);
    let stitched = taj_service::stitch_fragments(&fragments);
    (fragments, stitched)
}

/// Emits the per-hop decomposition of a stitched trace: one entry per
/// process fragment, with every durationful span's name and µs.
fn trace_json(json: &mut String, fragments: &[serde::Value]) {
    json.push_str("  \"trace\": {\n");
    let _ = writeln!(json, "    \"processes\": {},", fragments.len());
    json.push_str("    \"hops\": [\n");
    for (i, f) in fragments.iter().enumerate() {
        let process = f.get("process").and_then(serde::Value::as_str).unwrap_or("unknown");
        let outcome = f.get("outcome").and_then(serde::Value::as_str).unwrap_or("unknown");
        let elapsed = f.get("elapsed_us").and_then(serde::Value::as_u64).unwrap_or(0);
        let _ = write!(
            json,
            "      {{\"process\": \"{process}\", \"outcome\": \"{outcome}\", \
             \"elapsed_us\": {elapsed}, \"spans\": ["
        );
        let mut first = true;
        if let Some(serde::Value::Array(spans)) = f.get("spans") {
            for span in spans {
                let name = span.get("name").and_then(serde::Value::as_str);
                let dur = span.get("dur").and_then(serde::Value::as_u64);
                if let (Some(name), Some(dur)) = (name, dur) {
                    if !first {
                        json.push_str(", ");
                    }
                    first = false;
                    let _ = write!(json, "{{\"name\": \"{name}\", \"dur_us\": {dur}}}");
                }
            }
        }
        json.push_str("]}");
        json.push_str(if i + 1 < fragments.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let num = |name: &str, default: usize| -> usize {
        arg(name)
            .map_or(default, |v| v.parse().unwrap_or_else(|_| panic!("{name} takes an integer")))
    };
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let shard_count = num("--shards", 2);
    let clients = num("--clients", if quick { 2 } else { 4 });
    let threads = num("--threads", 1) as u64;
    let store_base = arg("--store-dir").map_or_else(
        || std::env::temp_dir().join(format!("taj-serve-load-{}", std::process::id())),
        std::path::PathBuf::from,
    );

    // The corpus: every securibench case as its own program, so requests
    // spread over shards by content hash and distinct programs stress
    // every cache tier independently.
    let cases = securibench_cases();
    let corpus: Vec<String> = if quick {
        cases.iter().take(6).map(|c| c.source.clone()).collect()
    } else {
        cases.iter().map(|c| c.source.clone()).collect()
    };
    let corpus = Arc::new(corpus);
    let requests = num("--requests", corpus.len() * 4);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "serve_load: {} programs, {shard_count} shards, {clients} clients, \
         {requests} requests/phase, stores under {}",
        corpus.len(),
        store_base.display()
    );

    // Cold: fresh daemons, empty stores.
    let shards = start_shards(&store_base, shard_count);
    let (router, router_addr) = start_router(&shards);
    let cold = run_phase(&router_addr, &corpus, clients, requests, threads);
    let cold_tiers = scrape(&shards);
    router.request_shutdown();
    router.join();
    let store_dirs = shutdown_all(shards);
    eprintln!(
        "cold: p50 {:.1} ms, p99 {:.1} ms, {} errors, disk hits {}",
        percentile(&cold.latencies_ms, 0.5),
        percentile(&cold.latencies_ms, 0.99),
        cold.errors,
        cold_tiers.hits[3] as u64
    );

    // Warm: the same store directories under brand-new daemons — the
    // in-memory caches are gone, the disk tier is not.
    let shards = start_shards(&store_base, shard_count);
    for (shard, dir) in shards.iter().zip(&store_dirs) {
        assert_eq!(&shard.store_dir, dir, "restart must reuse the same store directories");
    }
    let (router, router_addr) = start_router(&shards);
    let warm = run_phase(&router_addr, &corpus, clients, requests, threads);
    let warm_tiers = scrape(&shards);
    let (trace_fragments, stitched_trace) = trace_leg(&router_addr, &corpus[0], threads);
    router.request_shutdown();
    router.join();
    let _ = shutdown_all(shards);
    eprintln!(
        "warm: p50 {:.1} ms, p99 {:.1} ms, {} errors, disk hits {}, phase1 re-runs {}",
        percentile(&warm.latencies_ms, 0.5),
        percentile(&warm.latencies_ms, 0.99),
        warm.errors,
        warm_tiers.hits[3] as u64,
        warm_tiers.phase1_runs as u64
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"suite\": \"webgen-securibench\",");
    let _ = writeln!(json, "  \"programs\": {},", corpus.len());
    let _ = writeln!(json, "  \"shards\": {shard_count},");
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"requests_per_phase\": {requests},");
    let _ = writeln!(json, "  \"threads_per_request\": {threads},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    trace_json(&mut json, &trace_fragments);
    json.push_str("  \"phases\": {\n");
    phase_json(&mut json, "cold", &cold, &cold_tiers);
    json.push_str(",\n");
    phase_json(&mut json, "warm", &warm, &warm_tiers);
    json.push_str("\n  }\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("wrote {out_path}");
    let trace_path = format!("{}.trace.json", out_path.trim_end_matches(".json"));
    std::fs::write(&trace_path, &stitched_trace).expect("write stitched trace");
    eprintln!("wrote {trace_path} (open with https://ui.perfetto.dev)");

    // The store's reason to exist: a restarted fleet answers repeats
    // from disk. Zero warm disk hits means persistence is broken — fail
    // loudly so CI catches it.
    if warm_tiers.hits[3] as u64 == 0 {
        eprintln!("FAIL: warm phase produced no disk-tier hits");
        std::process::exit(1);
    }
    // The trace leg must span both sides of the wire: the router's own
    // fragment plus the shard that served the request.
    let traced_processes: Vec<&str> =
        trace_fragments.iter().filter_map(|f| f["process"].as_str()).collect();
    if !traced_processes.contains(&"router")
        || !traced_processes.iter().any(|p| p.starts_with("shard"))
    {
        eprintln!("FAIL: stitched trace missing router or shard fragments: {traced_processes:?}");
        std::process::exit(1);
    }
    let _ = std::fs::remove_dir_all(&store_base);
}
