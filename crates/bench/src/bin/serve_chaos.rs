//! Chaos harness for the serving stack: kills and restarts a shard under
//! live load, floods an undersized daemon past its admission queue, and
//! asserts the one invariant that matters — **errors, never wrong
//! answers**. Emits `BENCH_chaos.json` and exits non-zero on any
//! violated invariant so CI can gate on it.
//!
//! Phases:
//!
//! - **baseline** — healthy shards × router: every corpus program is
//!   analyzed once and its canonicalized report recorded. Canonical form
//!   zeroes the wall-clock `stats` fields (`pointer_ms`, `slice_ms`,
//!   `total_ms`) — everything else must be byte-identical forever after.
//! - **chaos** — closed-loop client workers with retry enabled drive the
//!   corpus through the router while shard 0 is shut down mid-load. The
//!   breaker must open, every completed response must match its baseline
//!   bytes, every error must carry an allowed code, and p99 during the
//!   outage must stay bounded (local failover, not 30-second hangs).
//! - **reintegration** — load stops, shard 0 restarts on the *same*
//!   port. The router's background prober alone must walk the breaker
//!   back to `closed`: the shard's `forwarded` counter must not move
//!   until the breaker closes, proving no user request was spent as a
//!   probe. A final pass confirms the healed shard serves baseline bytes
//!   again.
//! - **overload** — a dedicated `workers=1 max_queue=1` daemon is wedged
//!   with `debug_sleep` jobs and hit with an analyze burst: at least one
//!   request must be shed with `overloaded` + a sane `retry_after_ms`,
//!   the shed counter must agree, and a patient retrying client must
//!   eventually get the right answer through the same front door.
//!
//! Usage: `serve_chaos [--quick] [--out PATH] [--shards N] [--clients N]
//!                     [--store-dir DIR]`

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Value;
use taj_service::{
    route, serve, AnalyzeOpts, Bind, BoundAddr, Client, ClientError, RetryPolicy, RouterOptions,
    RouterTuning, ServeOptions,
};
use taj_webgen::securibench_cases;

/// One shard daemon plus the directory its store persists under.
struct ShardProc {
    handle: taj_service::ServerHandle,
    addr: String,
    store_dir: std::path::PathBuf,
}

fn tcp_addr(bound: &BoundAddr) -> String {
    match bound {
        BoundAddr::Tcp(a) => a.to_string(),
        BoundAddr::Unix(p) => panic!("expected TCP bind, got unix:{}", p.display()),
    }
}

fn shard_options(store_dir: std::path::PathBuf, bind: Bind) -> ServeOptions {
    ServeOptions {
        bind,
        workers: 2,
        cache_bytes: 64 << 20,
        default_timeout_ms: None,
        debug: false,
        store_dir: Some(store_dir),
        store_bytes: 256 << 20,
        max_queue: 0,
        flight_records: 64,
        slow_ms: None,
    }
}

fn start_shards(store_base: &std::path::Path, shards: usize) -> Vec<ShardProc> {
    (0..shards)
        .map(|i| {
            let store_dir = store_base.join(format!("shard{i}"));
            let options = shard_options(store_dir.clone(), Bind::Tcp("127.0.0.1:0".to_string()));
            let handle = serve(options).expect("start shard");
            let addr = tcp_addr(handle.addr());
            ShardProc { handle, addr, store_dir }
        })
        .collect()
}

/// Breaker tuning fast enough for a harness that runs in seconds: two
/// consecutive failures trip a shard, probes fire every 25 ms, and a
/// tripped shard is re-probed after 200 ms of cooldown.
fn chaos_tuning() -> RouterTuning {
    RouterTuning {
        failure_threshold: 2,
        cooldown_ms: 200,
        probe_interval_ms: 25,
        ..RouterTuning::default()
    }
}

fn start_router(shards: &[ShardProc]) -> (taj_service::RouterHandle, String) {
    let options = RouterOptions {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        shards: shards.iter().map(|s| s.addr.clone()).collect(),
        default_timeout_ms: None,
        tuning: chaos_tuning(),
        flight_records: 64,
        trace_out: None,
    };
    let handle = route(options).expect("start router");
    let addr = tcp_addr(handle.addr());
    (handle, addr)
}

/// Zeroes every wall-clock field (`pointer_ms`, `slice_ms`, `total_ms`)
/// anywhere in the tree, so reports computed at different times — or by
/// the router's local-failover engine instead of a shard — compare
/// byte-for-byte.
fn canonicalize(value: &mut Value) {
    match value {
        Value::Object(entries) => {
            for (key, v) in entries.iter_mut() {
                if matches!(key.as_str(), "pointer_ms" | "slice_ms" | "total_ms") {
                    *v = Value::UInt(0);
                } else {
                    canonicalize(v);
                }
            }
        }
        Value::Array(items) => {
            for v in items.iter_mut() {
                canonicalize(v);
            }
        }
        _ => {}
    }
}

fn canonical_bytes(mut result: Value) -> String {
    canonicalize(&mut result);
    serde_json::to_string(&result).expect("serialize canonical report")
}

/// Error codes a degraded system is allowed to answer with. Anything
/// else — and any `ok` response whose bytes differ from baseline — is a
/// wrong answer.
fn error_allowed(e: &ClientError) -> bool {
    match e {
        ClientError::Io(_) => true,
        ClientError::Remote { code, .. } => {
            matches!(code.as_str(), "overloaded" | "shutting_down" | "timeout")
        }
        ClientError::Protocol(_) => false,
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() as f64 * p).ceil() as usize).clamp(1, sorted_ms.len()) - 1;
    sorted_ms[idx]
}

fn router_stats(router_addr: &str) -> Value {
    let mut client = Client::connect_tcp(router_addr).expect("connect for router stats");
    client.stats().expect("router stats")
}

fn shard_stat(stats: &Value, shard: usize, key: &str) -> u64 {
    stats["shards"][shard][key].as_u64().unwrap_or(0)
}

fn shard_state(stats: &Value, shard: usize) -> String {
    stats["shards"][shard]["state"].as_str().unwrap_or("?").to_string()
}

/// Outcome tallies shared by the chaos-phase workers.
#[derive(Default)]
struct ChaosTally {
    wrong_answers: AtomicUsize,
    allowed_errors: AtomicUsize,
    disallowed_errors: AtomicUsize,
}

/// Latency sample: milliseconds plus whether shard 0 was down when the
/// request was issued.
type Sample = (f64, bool);

#[allow(clippy::too_many_arguments)]
fn spawn_chaos_workers(
    router_addr: &str,
    corpus: &Arc<Vec<String>>,
    baseline: &Arc<Vec<String>>,
    clients: usize,
    stop: &Arc<AtomicBool>,
    down: &Arc<AtomicBool>,
    tally: &Arc<ChaosTally>,
    samples: &Arc<Mutex<Vec<Sample>>>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..clients)
        .map(|w| {
            let addr = router_addr.to_string();
            let corpus = Arc::clone(corpus);
            let baseline = Arc::clone(baseline);
            let stop = Arc::clone(stop);
            let down = Arc::clone(down);
            let tally = Arc::clone(tally);
            let samples = Arc::clone(samples);
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_tcp(&addr).expect("connect chaos worker").with_retry(
                        RetryPolicy { max_attempts: 4, base_backoff_ms: 10, max_backoff_ms: 200 },
                    );
                let _ = client.set_io_timeout(Some(Duration::from_secs(10)));
                let opts = AnalyzeOpts { threads: Some(1), ..AnalyzeOpts::default() };
                let mut k = w;
                while !stop.load(Ordering::SeqCst) {
                    let idx = k % corpus.len();
                    k += 1;
                    let was_down = down.load(Ordering::SeqCst);
                    let t = Instant::now();
                    match client.analyze(&corpus[idx], &opts) {
                        Ok(result) => {
                            let ms = t.elapsed().as_secs_f64() * 1e3;
                            if canonical_bytes(result) == baseline[idx] {
                                samples.lock().expect("samples lock").push((ms, was_down));
                            } else {
                                tally.wrong_answers.fetch_add(1, Ordering::SeqCst);
                                eprintln!("WRONG ANSWER: program {idx} diverged from baseline");
                            }
                        }
                        Err(e) if error_allowed(&e) => {
                            tally.allowed_errors.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) => {
                            tally.disallowed_errors.fetch_add(1, Ordering::SeqCst);
                            eprintln!("DISALLOWED ERROR: program {idx}: {e:?}");
                        }
                    }
                }
            })
        })
        .collect()
}

/// Waits until `pred` holds over fresh router stats, or panics after
/// `timeout`.
fn await_stats(
    router_addr: &str,
    timeout: Duration,
    what: &str,
    mut pred: impl FnMut(&Value) -> bool,
) -> Value {
    let t0 = Instant::now();
    loop {
        let stats = router_stats(router_addr);
        if pred(&stats) {
            return stats;
        }
        assert!(t0.elapsed() < timeout, "timed out waiting for {what}: {stats:?}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Results of the overload phase against the undersized daemon.
struct OverloadResult {
    burst: usize,
    shed_observed: usize,
    hint_min: u64,
    hint_max: u64,
    requests_shed_stat: u64,
    patient_retry_ok: bool,
}

/// Wedges a `workers=1 max_queue=1` daemon with sleeper jobs, then
/// bursts analyze requests at it: the overflow must be shed with
/// `overloaded` + `retry_after_ms`, and a patient retrying client must
/// still get through once the sleepers drain.
fn overload_phase(program: &str, baseline_bytes: &str) -> OverloadResult {
    let options = ServeOptions {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        workers: 1,
        cache_bytes: 16 << 20,
        default_timeout_ms: None,
        debug: true,
        store_dir: None,
        store_bytes: 0,
        max_queue: 1,
        flight_records: 16,
        slow_ms: None,
    };
    let handle = serve(options).expect("start overload daemon");
    let addr = tcp_addr(handle.addr());

    // Wedge: one sleeper occupies the single worker, a second fills the
    // admission queue. The raw streams are parked unread so the jobs
    // stay in flight.
    let mut sleepers = Vec::new();
    for (id, ms) in [(1u64, 1_500u64), (2, 400)] {
        let mut stream = TcpStream::connect(&addr).expect("connect sleeper");
        let line = format!("{{\"id\":{id},\"cmd\":\"debug_sleep\",\"ms\":{ms}}}\n");
        stream.write_all(line.as_bytes()).expect("send sleeper");
        stream.flush().expect("flush sleeper");
        sleepers.push(stream);
        std::thread::sleep(Duration::from_millis(150));
    }

    // Burst: every submission past the full queue must bounce with
    // `overloaded`, an id echo, and a retry hint — shed work is an
    // error, never a hang and never a wrong answer.
    let burst = 6;
    let mut shed_observed = 0;
    let (mut hint_min, mut hint_max) = (u64::MAX, 0u64);
    for k in 0..burst {
        let mut client = Client::connect_tcp(&addr).expect("connect burst client");
        client.set_retry(RetryPolicy::none());
        let opts = AnalyzeOpts { threads: Some(1), ..AnalyzeOpts::default() };
        match client.analyze(program, &opts) {
            Ok(result) => {
                assert_eq!(
                    canonical_bytes(result),
                    baseline_bytes,
                    "overload burst request {k} completed with non-baseline bytes"
                );
            }
            Err(ClientError::Remote { code, retry_after_ms, .. }) if code == "overloaded" => {
                shed_observed += 1;
                let hint = retry_after_ms.expect("shed response must carry retry_after_ms");
                assert!((1..=1_000).contains(&hint), "retry_after_ms {hint} out of range");
                hint_min = hint_min.min(hint);
                hint_max = hint_max.max(hint);
            }
            Err(e) => panic!("overload burst request {k} failed with unexpected error: {e:?}"),
        }
    }

    // Self-healing: a patient client retries through the `overloaded`
    // rejections (honoring the hint) and lands the right answer once
    // the sleepers drain.
    let mut patient = Client::connect_tcp(&addr)
        .expect("connect patient client")
        .with_retry(RetryPolicy { max_attempts: 10, base_backoff_ms: 100, max_backoff_ms: 2_000 });
    let opts = AnalyzeOpts { threads: Some(1), ..AnalyzeOpts::default() };
    let patient_retry_ok = match patient.analyze(program, &opts) {
        Ok(result) => canonical_bytes(result) == baseline_bytes,
        Err(e) => panic!("patient retry never got through: {e:?}"),
    };

    let mut stats_client = Client::connect_tcp(&addr).expect("connect stats client");
    let stats = stats_client.stats().expect("overload daemon stats");
    let requests_shed_stat = stats["requests_shed"].as_u64().unwrap_or(0);
    let metrics = stats_client.metrics().expect("overload daemon metrics");
    assert!(
        metrics.contains("taj_requests_shed_total"),
        "metrics must export taj_requests_shed_total"
    );

    // Drain the sleepers' responses so their conns close cleanly.
    for stream in sleepers {
        let mut line = String::new();
        let _ = BufReader::new(stream).read_line(&mut line);
    }
    let _ = stats_client.shutdown();
    handle.join();

    OverloadResult {
        burst,
        shed_observed,
        hint_min: if shed_observed == 0 { 0 } else { hint_min },
        hint_max,
        requests_shed_stat,
        patient_retry_ok,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let num = |name: &str, default: usize| -> usize {
        arg(name)
            .map_or(default, |v| v.parse().unwrap_or_else(|_| panic!("{name} takes an integer")))
    };
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_chaos.json".to_string());
    let shard_count = num("--shards", 2).max(2);
    let clients = num("--clients", if quick { 2 } else { 3 });
    let store_base = arg("--store-dir").map_or_else(
        || std::env::temp_dir().join(format!("taj-serve-chaos-{}", std::process::id())),
        std::path::PathBuf::from,
    );

    let cases = securibench_cases();
    let take = if quick { 4 } else { 10.min(cases.len()) };
    let corpus: Vec<String> = cases.iter().take(take).map(|c| c.source.clone()).collect();
    let corpus = Arc::new(corpus);
    eprintln!(
        "serve_chaos: {} programs, {shard_count} shards, {clients} clients, stores under {}",
        corpus.len(),
        store_base.display()
    );

    // Baseline: healthy fleet, canonical bytes per program.
    let mut shards = start_shards(&store_base, shard_count);
    let (router, router_addr) = start_router(&shards);
    let mut baseline_client = Client::connect_tcp(&router_addr).expect("connect baseline client");
    let opts = AnalyzeOpts { threads: Some(1), ..AnalyzeOpts::default() };
    let mut baseline = Vec::with_capacity(corpus.len());
    let mut baseline_ms: Vec<f64> = Vec::with_capacity(corpus.len());
    for source in corpus.iter() {
        let t = Instant::now();
        let result = baseline_client.analyze(source, &opts).expect("baseline analyze");
        baseline_ms.push(t.elapsed().as_secs_f64() * 1e3);
        baseline.push(canonical_bytes(result));
    }
    baseline_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let baseline = Arc::new(baseline);
    eprintln!(
        "baseline: {} programs, p50 {:.1} ms, p99 {:.1} ms",
        baseline.len(),
        percentile(&baseline_ms, 0.5),
        percentile(&baseline_ms, 0.99)
    );

    // Chaos: live load, then shard 0 dies mid-flight.
    let stop = Arc::new(AtomicBool::new(false));
    let down = Arc::new(AtomicBool::new(false));
    let tally = Arc::new(ChaosTally::default());
    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let workers = spawn_chaos_workers(
        &router_addr,
        &corpus,
        &baseline,
        clients,
        &stop,
        &down,
        &tally,
        &samples,
    );

    std::thread::sleep(Duration::from_millis(400));
    let shard0 = shards.remove(0);
    let shard0_addr = shard0.addr.clone();
    let shard0_store = shard0.store_dir.clone();
    {
        let mut killer = Client::connect_tcp(&shard0_addr).expect("connect for shard kill");
        let _ = killer.shutdown();
    }
    down.store(true, Ordering::SeqCst);
    eprintln!("chaos: shard 0 ({shard0_addr}) shut down under load");

    let opened = await_stats(&router_addr, Duration::from_secs(10), "breaker to open", |s| {
        shard_state(s, 0) == "open"
    });
    eprintln!(
        "chaos: breaker opened after {} trip(s), {} failover(s) so far",
        shard_stat(&opened, 0, "opens"),
        shard_stat(&opened, 0, "failovers")
    );

    // Keep the outage window under load so the down-window percentiles
    // mean something, then stop before the shard comes back.
    std::thread::sleep(Duration::from_millis(if quick { 800 } else { 1_500 }));
    stop.store(true, Ordering::SeqCst);
    for w in workers {
        let _ = w.join();
    }
    shard0.handle.join();

    let down_stats = router_stats(&router_addr);
    let forwarded_while_down = shard_stat(&down_stats, 0, "forwarded");
    let probes_before_restart = shard_stat(&down_stats, 0, "probes");

    // Reintegration: same port, same store, zero user requests risked.
    let mut restarted = None;
    for attempt in 0..20 {
        match serve(shard_options(shard0_store.clone(), Bind::Tcp(shard0_addr.clone()))) {
            Ok(handle) => {
                restarted = Some(handle);
                break;
            }
            Err(e) => {
                assert!(attempt < 19, "could not rebind shard 0 on {shard0_addr}: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    let restarted = restarted.expect("restart shard 0");
    let closed = await_stats(&router_addr, Duration::from_secs(10), "breaker to close", |s| {
        shard_state(s, 0) == "closed"
    });
    let probes_total = shard_stat(&closed, 0, "probes");
    let forwarded_at_close = shard_stat(&closed, 0, "forwarded");
    assert!(
        probes_total > probes_before_restart,
        "reintegration must be driven by background probes"
    );
    assert_eq!(
        forwarded_at_close, forwarded_while_down,
        "no user request may be forwarded to a shard before its breaker closes"
    );
    eprintln!(
        "reintegration: breaker closed after {} probe(s), forwarded held at {}",
        probes_total, forwarded_at_close
    );

    // Recovery pass: the healed fleet serves baseline bytes again and
    // shard 0 is genuinely back in rotation.
    let mut recovery_errors = 0usize;
    for (idx, source) in corpus.iter().enumerate() {
        match baseline_client.analyze(source, &opts) {
            Ok(result) => assert_eq!(
                canonical_bytes(result),
                baseline[idx],
                "recovery pass diverged from baseline on program {idx}"
            ),
            Err(_) => recovery_errors += 1,
        }
    }
    assert_eq!(recovery_errors, 0, "recovery pass must complete without errors");
    let final_stats = router_stats(&router_addr);
    assert!(
        shard_stat(&final_stats, 0, "forwarded") > forwarded_while_down,
        "restarted shard 0 must serve traffic again"
    );

    // Forensics: a traced request through the healed fleet must be
    // reconstructable end-to-end — the router's flight recorder plus the
    // serving shard's stitch into one cross-process trace.
    let trace_id = "chaos-forensics-1";
    let traced_opts = AnalyzeOpts {
        threads: Some(1),
        trace_id: Some(trace_id.to_string()),
        ..AnalyzeOpts::default()
    };
    baseline_client.analyze(&corpus[0], &traced_opts).expect("traced analyze");
    let trace = baseline_client.trace(trace_id).expect("fetch trace from router");
    let fragments = taj_service::fragments_of(&trace);
    let trace_processes: Vec<String> = fragments
        .iter()
        .filter_map(|f| f.get("process").and_then(Value::as_str))
        .map(str::to_string)
        .collect();
    assert!(
        trace_processes.iter().any(|p| p == "router")
            && trace_processes.iter().any(|p| p.starts_with("shard")),
        "stitched trace must span router and shard processes: {trace_processes:?}"
    );
    let stitched = taj_service::stitch_fragments(&fragments);
    assert!(stitched.contains("\"traceEvents\""), "stitched trace must be Chrome trace JSON");
    eprintln!("forensics: trace {trace_id} stitched across {trace_processes:?}");

    router.request_shutdown();
    router.join();
    for shard in &shards {
        let mut client = Client::connect_tcp(&shard.addr).expect("connect for shutdown");
        let _ = client.shutdown();
    }
    for shard in shards {
        shard.handle.join();
    }
    {
        let mut client = Client::connect_tcp(&shard0_addr).expect("connect restarted shard");
        let _ = client.shutdown();
    }
    restarted.join();

    // Chaos-phase verdicts.
    let mut all_ms: Vec<f64> = Vec::new();
    let mut down_ms: Vec<f64> = Vec::new();
    for (ms, was_down) in samples.lock().expect("samples lock").iter() {
        all_ms.push(*ms);
        if *was_down {
            down_ms.push(*ms);
        }
    }
    all_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    down_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let wrong_answers = tally.wrong_answers.load(Ordering::SeqCst);
    let allowed_errors = tally.allowed_errors.load(Ordering::SeqCst);
    let disallowed_errors = tally.disallowed_errors.load(Ordering::SeqCst);
    let p99_down = percentile(&down_ms, 0.99);
    eprintln!(
        "chaos: {} completed ({} during outage), p99 {:.1} ms, outage p99 {:.1} ms, \
         {} allowed error(s), {} wrong answer(s)",
        all_ms.len(),
        down_ms.len(),
        percentile(&all_ms, 0.99),
        p99_down,
        allowed_errors,
        wrong_answers
    );

    // Overload: admission control on an undersized daemon.
    let overload = overload_phase(&corpus[0], &baseline[0]);
    eprintln!(
        "overload: {}/{} burst requests shed (hints {}..={} ms), daemon counted {}, \
         patient retry {}",
        overload.shed_observed,
        overload.burst,
        overload.hint_min,
        overload.hint_max,
        overload.requests_shed_stat,
        if overload.patient_retry_ok { "succeeded" } else { "FAILED" }
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"suite\": \"webgen-securibench-chaos\",");
    let _ = writeln!(json, "  \"programs\": {},", corpus.len());
    let _ = writeln!(json, "  \"shards\": {shard_count},");
    let _ = writeln!(json, "  \"clients\": {clients},");
    json.push_str("  \"chaos\": {\n");
    let _ = writeln!(json, "    \"completed\": {},", all_ms.len());
    let _ = writeln!(json, "    \"completed_during_outage\": {},", down_ms.len());
    let _ = writeln!(json, "    \"wrong_answers\": {wrong_answers},");
    let _ = writeln!(json, "    \"allowed_errors\": {allowed_errors},");
    let _ = writeln!(json, "    \"disallowed_errors\": {disallowed_errors},");
    let _ = writeln!(
        json,
        "    \"latency_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}}},",
        percentile(&all_ms, 0.50),
        percentile(&all_ms, 0.99)
    );
    let _ = writeln!(
        json,
        "    \"outage_latency_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}}}",
        percentile(&down_ms, 0.50),
        p99_down
    );
    json.push_str("  },\n");
    json.push_str("  \"reintegration\": {\n");
    let _ = writeln!(json, "    \"probes\": {probes_total},");
    let _ = writeln!(json, "    \"opens\": {},", shard_stat(&closed, 0, "opens"));
    let _ = writeln!(json, "    \"forwarded_while_down\": {forwarded_while_down},");
    let _ = writeln!(json, "    \"forwarded_at_close\": {forwarded_at_close},");
    let _ = writeln!(json, "    \"user_requests_risked\": 0,");
    let _ = writeln!(json, "    \"recovery_errors\": {recovery_errors}");
    json.push_str("  },\n");
    json.push_str("  \"trace\": {\n");
    let _ = writeln!(json, "    \"fragments\": {},", fragments.len());
    let _ = writeln!(
        json,
        "    \"processes\": [{}]",
        trace_processes.iter().map(|p| format!("\"{p}\"")).collect::<Vec<_>>().join(", ")
    );
    json.push_str("  },\n");
    json.push_str("  \"overload\": {\n");
    let _ = writeln!(json, "    \"burst\": {},", overload.burst);
    let _ = writeln!(json, "    \"shed_observed\": {},", overload.shed_observed);
    let _ = writeln!(json, "    \"requests_shed_stat\": {},", overload.requests_shed_stat);
    let _ = writeln!(
        json,
        "    \"retry_after_ms\": {{\"min\": {}, \"max\": {}}},",
        overload.hint_min, overload.hint_max
    );
    let _ = writeln!(json, "    \"patient_retry_succeeded\": {}", overload.patient_retry_ok);
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("wrote {out_path}");

    // Hard verdicts — any violation is a broken robustness contract.
    let mut failed = false;
    if wrong_answers > 0 {
        eprintln!("FAIL: {wrong_answers} completed response(s) diverged from baseline");
        failed = true;
    }
    if disallowed_errors > 0 {
        eprintln!("FAIL: {disallowed_errors} error(s) carried a disallowed code");
        failed = true;
    }
    if down_ms.is_empty() {
        eprintln!("FAIL: no requests completed during the outage window");
        failed = true;
    }
    if p99_down.is_nan() || p99_down > 10_000.0 {
        eprintln!("FAIL: outage p99 {p99_down:.1} ms is unbounded");
        failed = true;
    }
    if overload.shed_observed == 0 || overload.requests_shed_stat == 0 {
        eprintln!("FAIL: overload phase shed nothing");
        failed = true;
    }
    if !overload.patient_retry_ok {
        eprintln!("FAIL: patient retry did not recover the baseline answer");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    let _ = std::fs::remove_dir_all(&store_base);
}
