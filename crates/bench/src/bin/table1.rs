//! Regenerates **Table 1**: the settings used by the evaluated
//! algorithms — which knobs each of the five paper configurations (plus
//! the escape-repaired `CS-Escape`) enables.

use taj_core::TajConfig;

fn main() {
    println!("Table 1. Settings Used for the Evaluated Algorithms");
    println!("(✓ = enabled; bounds show the scaled default in parentheses)\n");
    println!(
        "{:<20} {:>10} {:>12} {:>12} {:>10} {:>10} {:>12} {:>8}",
        "Configuration",
        "Algorithm",
        "CG budget",
        "Heap bound",
        "Len ≤",
        "Depth ≤",
        "CS budget",
        "Escape"
    );
    println!("{}", "-".repeat(101));
    for c in TajConfig::all() {
        println!(
            "{:<20} {:>10} {:>12} {:>12} {:>10} {:>10} {:>12} {:>8}",
            c.name,
            format!("{:?}", c.algorithm),
            opt(c.max_cg_nodes.map(|n| format!("✓ ({n})"))),
            opt(c.max_heap_transitions.map(|n| format!("✓ ({n})"))),
            opt(c.max_flow_len.map(|n| n.to_string())),
            opt(c.nested_depth.map(|n| n.to_string())),
            opt(c.cs_path_edge_budget.map(|n| format!("{n}"))),
            if c.escape_analysis { "✓" } else { "—" },
        );
    }
    println!();
    println!("Paper: the prioritized and fully optimized variants bound the call graph");
    println!("at 20,000 nodes; the fully optimized variant also restricts heap");
    println!("transitions to 20,000, filters flows longer than 14, and allows at most");
    println!("2 field dereferences in taint-carrier detection. All configurations use");
    println!("synthetic models. Our bounds are scaled ~10× down with the benchmarks.");
    println!("The sixth row (CS-Escape, beyond the paper) adds thread-escape + MHP");
    println!("analysis to repair CS's cross-thread false negatives (§7.2).");
}

fn opt(v: Option<String>) -> String {
    v.unwrap_or_else(|| "—".to_string())
}
