//! Internal calibration helper: per-benchmark TP/FP per config + CS work.

use taj_bench::{build_benchmark, run_cell, CellOutcome};
use taj_core::TajConfig;
use taj_webgen::{presets, Scale};

fn main() {
    let scale = Scale::standard();
    println!(
        "{:<14} {:>18} {:>18} {:>18} {:>14}",
        "bench", "unbnd TP/FP/FN", "prior TP/FP/FN", "optim TP/FP/FN", "CS work"
    );
    for preset in presets() {
        let bench = build_benchmark(&preset, scale);
        let mut cells = Vec::new();
        for c in [
            TajConfig::hybrid_unbounded(),
            TajConfig::hybrid_prioritized(),
            TajConfig::hybrid_optimized(),
        ] {
            match run_cell(&bench, &c) {
                CellOutcome::Done { score, .. } => cells.push(format!(
                    "{}/{}/{}",
                    score.true_positives, score.false_positives, score.false_negatives
                )),
                CellOutcome::OutOfMemory => cells.push("-".into()),
            }
        }
        let cs_work = match run_cell(&bench, &TajConfig::cs_thin()) {
            CellOutcome::Done { report, .. } => report.stats.slicer_work.to_string(),
            CellOutcome::OutOfMemory => "OOM".into(),
        };
        println!(
            "{:<14} {:>18} {:>18} {:>18} {:>14}",
            preset.name, cells[0], cells[1], cells[2], cs_work
        );
    }
}
