//! Incremental-analysis benchmark: cold full analyze vs. warm
//! `analyze_delta` over generated edits. Emits `BENCH_incremental.json`.
//!
//! The harness stands up one in-process daemon, analyzes a generated
//! webgen benchmark cold (filling the prepared/phase-1/summary tiers),
//! then replays edits of increasing weight through `analyze_delta`:
//!
//! - **comment** — a trailing comment; the edit region is empty and the
//!   daemon reuses the base phase-1 artifact outright;
//! - **body-single** — one method body changes; only that method's
//!   dependency region is re-solved;
//! - **body-multi** — two method bodies in different classes change.
//!
//! Each delta response's `delta` object reports how many method
//! summaries were re-solved vs. the program total; the harness fails if
//! a warm single-method edit did not re-solve *strictly fewer* methods
//! than the program holds — that inequality is the incremental path's
//! reason to exist, and CI asserts it from the emitted JSON too.
//!
//! Usage: `incremental [--quick] [--out PATH]`

use std::fmt::Write as _;
use std::time::Instant;

use taj_service::{serve, AnalyzeOpts, Bind, BoundAddr, Client, ServeOptions};
use taj_webgen::{apply_edit, generate, standard_mix, BenchmarkSpec, EditKind};

fn tcp_addr(bound: &BoundAddr) -> String {
    match bound {
        BoundAddr::Tcp(a) => a.to_string(),
        BoundAddr::Unix(p) => panic!("expected TCP bind, got unix:{}", p.display()),
    }
}

/// One delta request's outcome, straight from the response envelope.
struct EditResult {
    kind: String,
    wall_ms: f64,
    source: String,
    phase1_reused: bool,
    methods_resolved: u64,
    methods_total: u64,
}

fn run_delta(
    client: &mut Client,
    opts: &AnalyzeOpts,
    base: &str,
    edited: &str,
    kind: &str,
) -> EditResult {
    let t = Instant::now();
    let (result, delta) = client.analyze_delta(base, edited, opts).expect("analyze_delta");
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    // The delta result must be exactly what a plain analyze of the
    // edited source returns — and having just run, that analyze is a
    // report-cache hit, so the comparison is cheap.
    let replay = client.analyze(edited, opts).expect("replay analyze");
    assert_eq!(result, replay, "{kind}: delta result differs from plain analyze");
    let field_u64 = |name: &str| delta.get(name).and_then(serde::Value::as_u64).unwrap_or(0);
    EditResult {
        kind: kind.to_string(),
        wall_ms,
        source: delta.get("source").and_then(serde::Value::as_str).unwrap_or("?").to_string(),
        phase1_reused: delta.get("phase1_reused").and_then(serde::Value::as_bool) == Some(true),
        methods_resolved: field_u64("methods_resolved"),
        methods_total: field_u64("methods_total"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_incremental.json".to_string());

    let spec = BenchmarkSpec {
        name: "incremental".into(),
        pattern_counts: standard_mix(if quick { 6 } else { 18 }, 0, !quick),
        filler_classes: if quick { 6 } else { 16 },
        methods_per_class: if quick { 5 } else { 8 },
        seed: 0x17C4,
    };
    let bench = generate(&spec);
    eprintln!(
        "incremental: {} classes, {} methods, {} lines",
        bench.stats.classes, bench.stats.methods, bench.stats.lines
    );

    let handle = serve(ServeOptions {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        workers: 2,
        cache_bytes: 128 << 20,
        default_timeout_ms: None,
        debug: false,
        store_dir: None,
        store_bytes: 0,
        max_queue: 0,
        flight_records: 0,
        slow_ms: None,
    })
    .expect("start daemon");
    let addr = tcp_addr(handle.addr());
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let opts = AnalyzeOpts { threads: Some(1), ..AnalyzeOpts::default() };

    // Cold: the full pipeline, and the base artifacts every later delta
    // request builds on.
    let t = Instant::now();
    client.analyze(&bench.source, &opts).expect("cold analyze");
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!("cold analyze: {cold_ms:.1} ms");

    let mut edits = Vec::new();

    // Comment edit: empty region, whole-artifact reuse.
    let commented = apply_edit(&bench.source, EditKind::Comment, 1).expect("comment edit applies");
    edits.push(run_delta(&mut client, &opts, &bench.source, &commented, "comment"));

    // Single-method body edit: the flagship case — strictly fewer
    // methods re-solved than the program holds.
    let single = apply_edit(&bench.source, EditKind::Body, 2).expect("body edit applies");
    edits.push(run_delta(&mut client, &opts, &bench.source, &single, "body-single"));

    // Multi-method edit: two bodies, (almost surely) two classes.
    let multi_a = apply_edit(&bench.source, EditKind::Body, 3).expect("body edit applies");
    let multi = apply_edit(&multi_a, EditKind::Body, 11).expect("second body edit applies");
    edits.push(run_delta(&mut client, &opts, &bench.source, &multi, "body-multi"));

    for e in &edits {
        eprintln!(
            "{}: {:.1} ms, phase1 {}, {} of {} methods re-solved",
            e.kind, e.wall_ms, e.source, e.methods_resolved, e.methods_total
        );
    }

    // Daemon-side counters confirm what the envelopes claimed.
    let stats = client.stats().expect("stats");
    let counter = |name: &str| stats.get(name).and_then(serde::Value::as_u64).unwrap_or(0);
    let delta_requests = counter("delta_requests");
    let delta_phase1_reused = counter("delta_phase1_reused");
    let delta_methods_resolved = counter("delta_methods_resolved");
    let delta_methods_total = counter("delta_methods_total");

    let _ = client.shutdown();
    handle.join();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"suite\": \"webgen-incremental\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"program\": {{\"classes\": {}, \"methods\": {}, \"lines\": {}}},",
        bench.stats.classes, bench.stats.methods, bench.stats.lines
    );
    let _ = writeln!(json, "  \"cold\": {{\"wall_ms\": {cold_ms:.3}}},");
    json.push_str("  \"edits\": [\n");
    for (i, e) in edits.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"kind\": \"{}\", \"wall_ms\": {:.3}, \"source\": \"{}\", \
             \"phase1_reused\": {}, \"methods_resolved\": {}, \"methods_total\": {}}}",
            e.kind, e.wall_ms, e.source, e.phase1_reused, e.methods_resolved, e.methods_total
        );
        json.push_str(if i + 1 < edits.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"counters\": {{\"delta_requests\": {delta_requests}, \
         \"delta_phase1_reused\": {delta_phase1_reused}, \
         \"delta_methods_resolved\": {delta_methods_resolved}, \
         \"delta_methods_total\": {delta_methods_total}}}"
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("wrote {out_path}");

    // The incremental path's contract: a warm single-method edit
    // re-solves some methods, but strictly fewer than the program holds.
    let single = edits.iter().find(|e| e.kind == "body-single").expect("single edit ran");
    if single.methods_resolved == 0 || single.methods_resolved >= single.methods_total {
        eprintln!(
            "FAIL: body-single re-solved {} of {} methods (want 0 < resolved < total)",
            single.methods_resolved, single.methods_total
        );
        std::process::exit(1);
    }
    let comment = edits.iter().find(|e| e.kind == "comment").expect("comment edit ran");
    if !comment.phase1_reused {
        eprintln!("FAIL: comment edit did not reuse the base phase-1 artifact");
        std::process::exit(1);
    }
}
