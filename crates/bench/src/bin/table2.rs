//! Regenerates **Table 2**: statistics on the applications used in the
//! experiments — paper sizes alongside the generated synthetic stand-ins.

use taj_bench::{build_benchmark, scale_from_args};
use taj_webgen::presets;

fn main() {
    let scale = scale_from_args();
    println!("Table 2. Statistics on the Applications Used in the Experiments");
    println!("(paper columns, then the generated synthetic equivalents)\n");
    println!(
        "{:<14} {:>9} {:>9} {:>10} | {:>9} {:>9} {:>9} {:>8}",
        "Application", "classes*", "methods*", "total m.*", "classes", "methods", "lines", "seeds"
    );
    println!("{}", "-".repeat(88));
    let mut tot_methods = 0usize;
    let mut tot_lines = 0usize;
    for preset in presets() {
        let bench = build_benchmark(&preset, scale);
        let seeds = bench.truth.vulnerable.len() + bench.truth.benign.len();
        println!(
            "{:<14} {:>9} {:>9} {:>10} | {:>9} {:>9} {:>9} {:>8}",
            preset.name,
            preset.paper_classes,
            preset.paper_methods,
            preset.paper_total_methods,
            bench.stats.classes,
            bench.stats.methods,
            bench.stats.lines,
            seeds,
        );
        tot_methods += bench.stats.methods;
        tot_lines += bench.stats.lines;
    }
    println!("{}", "-".repeat(88));
    println!(
        "{:<14} {:>9} {:>9} {:>10} | {:>9} {:>9} {:>9}",
        "TOTAL", "", "", "", "", tot_methods, tot_lines
    );
    println!("\n* paper-reported application-side numbers (Table 2 of the paper).");
    println!(
        "Generated sizes are scaled ~{}× down; relative ordering is preserved.",
        if std::env::args().any(|a| a == "--quick") { 60 } else { 10 }
    );
}
