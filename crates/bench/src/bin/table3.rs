//! Regenerates **Table 3**: reported issues and running time for the five
//! configurations on all 22 benchmarks, plus the §7.2 shape summary
//! (speed ratios, CS failures, false-positive deltas).
//!
//! `--quick` shrinks the benchmarks; `--only <name>` runs one benchmark.

use taj_bench::{build_benchmark, only_filter, run_cell, scale_from_args, CellOutcome};
use taj_core::{Score, TajConfig};
use taj_webgen::presets;

fn main() {
    let scale = scale_from_args();
    let only = only_filter();
    let configs = TajConfig::all();

    println!("Table 3. Experimental Results Comparing Hybrid Variants and Other Algorithms");
    println!("(issues = LCP-deduplicated findings; time in ms; `-` = out of memory budget)\n");
    print!("{:<14} {:>7}", "Application", "paper*");
    for c in &configs {
        print!(" | {:>7} {:>8}", short(c.name), "time");
    }
    println!();
    println!("{}", "-".repeat(14 + 8 + configs.len() * 19));

    let mut per_config: Vec<Vec<Option<(usize, u128, Score)>>> = vec![Vec::new(); configs.len()];
    for preset in presets() {
        if let Some(f) = &only {
            if preset.name != f {
                continue;
            }
        }
        let bench = build_benchmark(&preset, scale);
        print!("{:<14} {:>7}", preset.name, preset.paper_hybrid_issues);
        for (i, config) in configs.iter().enumerate() {
            match run_cell(&bench, config) {
                CellOutcome::Done { report, ms, score } => {
                    print!(" | {:>7} {:>8}", report.issue_count(), ms);
                    per_config[i].push(Some((report.issue_count(), ms, score)));
                }
                CellOutcome::OutOfMemory => {
                    print!(" | {:>7} {:>8}", "-", "-");
                    per_config[i].push(None);
                }
            }
        }
        println!();
    }

    // ---- §7.2 shape summary.
    println!("\n—— Shape summary (compare with §7.2 of the paper) ——");
    let avg = |idx: usize| -> Option<f64> {
        let done: Vec<u128> =
            per_config[idx].iter().filter_map(|c| c.map(|(_, ms, _)| ms)).collect();
        if done.is_empty() {
            None
        } else {
            Some(done.iter().sum::<u128>() as f64 / done.len() as f64)
        }
    };
    let names: Vec<&str> = configs.iter().map(|c| c.name).collect();
    let find = |n: &str| names.iter().position(|&x| x == n).expect("config present");
    let (h_u, h_p, h_o, cs, ci) = (
        find("Hybrid-Unbounded"),
        find("Hybrid-Prioritized"),
        find("Hybrid-Optimized"),
        find("CS"),
        find("CI"),
    );

    if let (Some(hu), Some(cit)) = (avg(h_u), avg(ci)) {
        println!(
            "hybrid-unbounded avg {hu:.0} ms vs CI avg {cit:.0} ms  →  {:.2}× \
             (paper: hybrid 2.65× slower than CI)",
            hu / cit
        );
    }
    let cs_done = per_config[cs].iter().filter(|c| c.is_some()).count();
    let cs_total = per_config[cs].len();
    println!("CS completed on {cs_done}/{cs_total} benchmarks (paper: 6/22, rest out of memory)");
    // Average hybrid vs CS on the benchmarks CS completed.
    let mut hu_on_cs = Vec::new();
    let mut cs_times = Vec::new();
    for (hc, cc) in per_config[h_u].iter().zip(&per_config[cs]) {
        if let (Some((_, hms, _)), Some((_, cms, _))) = (hc, cc) {
            hu_on_cs.push(*hms);
            cs_times.push(*cms);
        }
    }
    if !cs_times.is_empty() {
        let hu: f64 = hu_on_cs.iter().sum::<u128>() as f64 / hu_on_cs.len() as f64;
        let cst: f64 = cs_times.iter().sum::<u128>() as f64 / cs_times.len() as f64;
        println!(
            "on CS-completed benchmarks: hybrid {hu:.0} ms vs CS {cst:.0} ms  →  CS {:.1}× \
             slower (paper: 29×)",
            cst / hu.max(1.0)
        );
    }
    if let (Some(hp), Some(cit)) = (avg(h_p), avg(ci)) {
        println!(
            "prioritized avg {hp:.0} ms vs CI avg {cit:.0} ms  →  {:.2}× \
             (paper: prioritized 1.8× faster than CI)",
            cit / hp
        );
    }
    if let (Some(ho), Some(cit)) = (avg(h_o), avg(ci)) {
        println!(
            "optimized avg {ho:.0} ms vs CI avg {cit:.0} ms  →  {:.0}% of CI \
             (paper: optimized 21% faster than CI)",
            100.0 * ho / cit
        );
    }
    let fp = |idx: usize| -> usize {
        per_config[idx].iter().filter_map(|c| c.map(|(_, _, s)| s.false_positives)).sum()
    };
    println!(
        "false positives: unbounded {} → prioritized {} → optimized {} \
         (paper on 9 benchmarks: 556 → 146 → 74)",
        fp(h_u),
        fp(h_p),
        fp(h_o)
    );
    println!("\n* paper's Table 3 issue count for the unbounded hybrid configuration.");
}

fn short(name: &str) -> &str {
    match name {
        "Hybrid-Unbounded" => "Unbnd",
        "Hybrid-Prioritized" => "Prior",
        "Hybrid-Optimized" => "Optim",
        other => other,
    }
}
