//! Quick timing smoke test over selected presets.

use std::time::Instant;
use taj_core::{analyze_source, RuleSet, TajConfig};
use taj_webgen::{generate, presets, Scale};

fn main() {
    let scale = Scale::standard();
    for name in ["I", "Friki", "Webgoat", "GridSphere"] {
        let preset = presets().into_iter().find(|p| p.name == name).unwrap();
        let t0 = Instant::now();
        let bench = generate(&preset.spec(scale));
        let gen_ms = t0.elapsed().as_millis();
        let t1 = Instant::now();
        match analyze_source(
            &bench.source,
            Some(&bench.descriptor),
            RuleSet::default_rules(),
            &TajConfig::hybrid_unbounded(),
        ) {
            Ok(report) => println!(
                "{name:>12}: {} methods, {} lines | gen {gen_ms}ms, analyze {}ms, {} issues, {} cg nodes",
                bench.stats.methods,
                bench.stats.lines,
                t1.elapsed().as_millis(),
                report.issue_count(),
                report.stats.cg_nodes,
            ),
            Err(e) => println!("{name:>12}: ERROR {e}"),
        }
    }
}
