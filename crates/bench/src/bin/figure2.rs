//! Regenerates **Figure 2**: a fragment of the Hybrid SDG, rendered as
//! DOT. Solid edges are store→load *direct edges* (computed from the
//! points-to solution); dashed edges are *summary/local* propagation over
//! the no-heap SDG (RHS tabulation).
//!
//! Pipe into graphviz: `cargo run -p taj-bench --bin figure2 | dot -Tsvg`

use taj_core::RuleSet;
use taj_pointer::{analyze, PolicyConfig, SolverConfig};
use taj_sdg::{HybridSlicer, ProgramView, SliceBounds, SliceSpec, StepKind};

/// A small program whose single flow exercises both HSDG edge kinds: the
/// tainted value crosses the heap twice (store/load pairs on two `Holder`
/// objects) with summary-edge propagation through `relay` in between.
const SOURCE: &str = r#"
    class Holder { field String v; ctor () { } }
    class Page extends HttpServlet {
        method void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String t = req.getParameter("q");
            Holder h1 = new Holder();
            h1.v = t;
            String mid = this.relay(h1);
            Holder h2 = new Holder();
            h2.v = mid;
            String out = h2.v;
            resp.getWriter().println(out);
        }
        method String relay(Holder h) { return h.v; }
    }
"#;

fn main() {
    let rules = RuleSet::default_rules();
    let mut program = jir::frontend::parse_program(SOURCE).expect("parses");
    taj_core::frameworks::synthesize_entrypoints(&mut program);
    jir::expand::expand_models(&mut program);
    jir::ssa::program_to_ssa(&mut program);
    let pts = analyze(
        &program,
        &SolverConfig {
            policy: PolicyConfig { taint_methods: rules.taint_methods(&program) },
            source_methods: rules.all_sources(&program),
            ..Default::default()
        },
    );
    let resolved = rules.resolve(&program);
    let xss = resolved.iter().find(|r| r.issue == taj_core::IssueType::Xss).expect("xss rule");
    let mut spec = SliceSpec::default();
    spec.sources.extend(xss.sources.iter().copied());
    spec.sanitizers.extend(xss.sanitizers.iter().copied());
    for (m, pos) in &xss.sinks {
        spec.sinks.insert(*m, pos.clone());
    }
    let view = ProgramView::build(&program, &pts, &spec);
    let result = HybridSlicer::new(&view, SliceBounds::default()).run();
    assert!(!result.flows.is_empty(), "the demo flow must be found");

    println!("// Figure 2: fragment of the HSDG for the demo program's taint flow.");
    println!("// Solid black edges: store-to-load direct edges (pointer analysis).");
    println!("// Dashed gray edges: no-heap SDG propagation / summary edges (RHS).");
    println!("digraph hsdg {{");
    println!("  rankdir=LR;");
    println!("  node [fontname=\"monospace\", shape=box, fontsize=10];");
    for (fi, flow) in result.flows.iter().enumerate() {
        for (i, step) in flow.path.iter().enumerate() {
            let method = pts.callgraph.method_of(step.stmt.node);
            let mname = &program.method(method).name;
            let shape = match step.kind {
                StepKind::Seed => "oval",
                StepKind::HeapEdge => "ellipse",
                _ => "box",
            };
            println!(
                "  f{fi}_s{i} [label=\"{:?}\\n{}@{:?}\", shape={shape}];",
                step.kind, mname, step.stmt.loc
            );
            if i > 0 {
                let (style, color) = match step.kind {
                    StepKind::HeapEdge | StepKind::CarrierEdge => ("solid", "black"),
                    _ => ("dashed", "gray40"),
                };
                println!("  f{fi}_s{} -> f{fi}_s{i} [style={style}, color={color}];", i - 1);
            }
        }
    }
    println!("}}");
}
