//! Recursive-descent parser for jweb.

use std::fmt;

use crate::ast::*;
use crate::lexer::{lex, LexError, Tok, Token};

/// A parse (or lowering) failure with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation.
    pub msg: String,
    /// 1-based line (0 when unknown).
    pub line: u32,
    /// 1-based column (0 when unknown).
    pub col: u32,
}

impl ParseError {
    /// Creates an error without position information (used by lowering).
    pub fn msg(msg: impl Into<String>) -> Self {
        ParseError { msg: msg.into(), line: 0, col: 0 }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "error: {}", self.msg)
        } else {
            write!(f, "error at {}:{}: {}", self.line, self.col, self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { msg: e.msg, line: e.line, col: e.col }
    }
}

/// Parses jweb source into an AST.
///
/// # Errors
/// Returns the first syntax error encountered.
pub fn parse(src: &str) -> Result<ProgramAst, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_at(&self, off: usize) -> &Tok {
        let i = (self.pos + off).min(self.tokens.len() - 1);
        &self.tokens[i].tok
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn advance(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, expected: &Tok) -> Result<(), ParseError> {
        if self.peek() == expected {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected {expected}, found {}", self.peek())))
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn err(&self, msg: String) -> ParseError {
        ParseError { msg, line: self.tokens[self.pos].line, col: self.tokens[self.pos].col }
    }

    // ---- declarations ----

    fn program(&mut self) -> Result<ProgramAst, ParseError> {
        let mut classes = Vec::new();
        while *self.peek() != Tok::Eof {
            classes.push(self.class_decl()?);
        }
        Ok(ProgramAst { classes })
    }

    fn class_decl(&mut self) -> Result<ClassDecl, ParseError> {
        let line = self.line();
        let mut is_library = false;
        if *self.peek() == Tok::Library {
            self.advance();
            is_library = true;
        }
        let is_interface = match self.advance() {
            Tok::Class => false,
            Tok::Interface => true,
            other => return Err(self.err(format!("expected `class`/`interface`, found {other}"))),
        };
        let name = self.eat_ident()?;
        let mut superclass = None;
        if *self.peek() == Tok::Extends {
            self.advance();
            superclass = Some(self.eat_ident()?);
        }
        let mut interfaces = Vec::new();
        if *self.peek() == Tok::Implements {
            self.advance();
            interfaces.push(self.eat_ident()?);
            while *self.peek() == Tok::Comma {
                self.advance();
                interfaces.push(self.eat_ident()?);
            }
        }
        self.eat(&Tok::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while *self.peek() != Tok::RBrace {
            let mut is_static = false;
            if *self.peek() == Tok::Static {
                self.advance();
                is_static = true;
            }
            match self.peek().clone() {
                Tok::FieldKw => {
                    self.advance();
                    let ty = self.parse_type()?;
                    let fname = self.eat_ident()?;
                    self.eat(&Tok::Semi)?;
                    fields.push(FieldDecl { name: fname, ty, is_static });
                }
                Tok::MethodKw => {
                    self.advance();
                    let mline = self.line();
                    let ret = self.parse_type()?;
                    let mname = self.eat_ident()?;
                    let params = self.param_list()?;
                    let body = if *self.peek() == Tok::Semi {
                        self.advance();
                        None
                    } else {
                        Some(self.block()?)
                    };
                    methods.push(MethodDecl {
                        name: mname,
                        params,
                        ret,
                        is_static,
                        body,
                        line: mline,
                    });
                }
                Tok::Ctor => {
                    self.advance();
                    let mline = self.line();
                    let params = self.param_list()?;
                    let body = Some(self.block()?);
                    methods.push(MethodDecl {
                        name: "<init>".into(),
                        params,
                        ret: TypeAst::Void,
                        is_static: false,
                        body,
                        line: mline,
                    });
                }
                other => {
                    return Err(
                        self.err(format!("expected `field`, `method` or `ctor`, found {other}"))
                    )
                }
            }
        }
        self.eat(&Tok::RBrace)?;
        Ok(ClassDecl {
            name,
            superclass,
            interfaces,
            is_interface,
            is_library,
            fields,
            methods,
            line,
        })
    }

    fn param_list(&mut self) -> Result<Vec<(TypeAst, String)>, ParseError> {
        self.eat(&Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let ty = self.parse_type()?;
                let name = self.eat_ident()?;
                params.push((ty, name));
                if *self.peek() == Tok::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen)?;
        Ok(params)
    }

    fn parse_type(&mut self) -> Result<TypeAst, ParseError> {
        let mut ty = match self.advance() {
            Tok::Void => TypeAst::Void,
            Tok::IntKw => TypeAst::Int,
            Tok::BooleanKw => TypeAst::Boolean,
            Tok::Ident(s) if s == "String" => TypeAst::Str,
            Tok::Ident(s) => TypeAst::Named(s),
            other => return Err(self.err(format!("expected type, found {other}"))),
        };
        while *self.peek() == Tok::LBracket && *self.peek_at(1) == Tok::RBracket {
            self.advance();
            self.advance();
            ty = TypeAst::Array(Box::new(ty));
        }
        Ok(ty)
    }

    // ---- statements ----

    fn block(&mut self) -> Result<Block, ParseError> {
        self.eat(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            self.stmt(&mut stmts)?;
        }
        self.eat(&Tok::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        match self.peek().clone() {
            Tok::If => {
                self.advance();
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                let then_blk = self.block()?;
                let else_blk = if *self.peek() == Tok::Else {
                    self.advance();
                    if *self.peek() == Tok::If {
                        // else-if chain: wrap in a synthetic block.
                        let mut inner = Vec::new();
                        self.stmt(&mut inner)?;
                        Some(Block { stmts: inner })
                    } else {
                        Some(self.block()?)
                    }
                } else {
                    None
                };
                out.push(Stmt::If { cond, then_blk, else_blk });
            }
            Tok::While => {
                self.advance();
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                let body = self.block()?;
                out.push(Stmt::While { cond, body });
            }
            Tok::For => {
                // for (init; cond; update) { body }  ≡  init; while (cond) { body; update }
                self.advance();
                self.eat(&Tok::LParen)?;
                let mut init = Vec::new();
                if *self.peek() != Tok::Semi {
                    self.simple_stmt(&mut init)?;
                }
                self.eat(&Tok::Semi)?;
                let cond = self.expr()?;
                self.eat(&Tok::Semi)?;
                let mut update = Vec::new();
                if *self.peek() != Tok::RParen {
                    self.simple_stmt(&mut update)?;
                }
                self.eat(&Tok::RParen)?;
                let mut body = self.block()?;
                body.stmts.extend(update);
                out.extend(init);
                out.push(Stmt::While { cond, body });
            }
            Tok::Return => {
                let line = self.line();
                self.advance();
                let value = if *self.peek() == Tok::Semi { None } else { Some(self.expr()?) };
                self.eat(&Tok::Semi)?;
                out.push(Stmt::Return(value, line));
            }
            Tok::Throw => {
                let line = self.line();
                self.advance();
                let e = self.expr()?;
                self.eat(&Tok::Semi)?;
                out.push(Stmt::Throw(e, line));
            }
            Tok::Try => {
                self.advance();
                let body = self.block()?;
                self.eat(&Tok::Catch)?;
                self.eat(&Tok::LParen)?;
                let catch_class = self.eat_ident()?;
                let catch_name = self.eat_ident()?;
                self.eat(&Tok::RParen)?;
                let handler = self.block()?;
                out.push(Stmt::Try { body, catch_class, catch_name, handler });
            }
            _ => {
                self.simple_stmt(out)?;
                self.eat(&Tok::Semi)?;
            }
        }
        Ok(())
    }

    /// Parses a declaration, assignment, or expression statement (without
    /// the trailing semicolon); used by both `stmt` and `for` headers.
    fn simple_stmt(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        let line = self.line();
        if self.looks_like_decl() {
            let ty = self.parse_type()?;
            let name = self.eat_ident()?;
            let init = if *self.peek() == Tok::Assign {
                self.advance();
                Some(self.expr()?)
            } else {
                None
            };
            out.push(Stmt::VarDecl { ty, name, init, line });
            return Ok(());
        }
        let e = self.expr()?;
        if *self.peek() == Tok::Assign {
            self.advance();
            let rhs = self.expr()?;
            let lhs = match e {
                Expr::Var(name, _) => LValue::Var(name),
                Expr::Field { base, name, .. } => LValue::Field { base: *base, name },
                Expr::Index { base, index } => LValue::Index { base: *base, index: *index },
                other => return Err(self.err(format!("invalid assignment target: {other:?}"))),
            };
            out.push(Stmt::Assign { lhs, rhs, line });
        } else {
            out.push(Stmt::Expr(e));
        }
        Ok(())
    }

    /// Lookahead: does the upcoming token sequence start a variable
    /// declaration (`Type name …`)?
    fn looks_like_decl(&self) -> bool {
        match self.peek() {
            Tok::IntKw | Tok::BooleanKw | Tok::Void => true,
            Tok::Ident(_) => {
                // `Foo x` or `Foo[] x`
                let mut off = 1;
                while *self.peek_at(off) == Tok::LBracket && *self.peek_at(off + 1) == Tok::RBracket
                {
                    off += 2;
                }
                matches!(self.peek_at(off), Tok::Ident(_))
            }
            _ => false,
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_expr()?;
        while *self.peek() == Tok::OrOr {
            self.advance();
            let r = self.and_expr()?;
            e = Expr::Binary { op: AstBinOp::OrOr, lhs: Box::new(e), rhs: Box::new(r) };
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.eq_expr()?;
        while *self.peek() == Tok::AndAnd {
            self.advance();
            let r = self.eq_expr()?;
            e = Expr::Binary { op: AstBinOp::AndAnd, lhs: Box::new(e), rhs: Box::new(r) };
        }
        Ok(e)
    }

    fn eq_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.rel_expr()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => AstBinOp::EqEq,
                Tok::NotEq => AstBinOp::NotEq,
                _ => break,
            };
            self.advance();
            let r = self.rel_expr()?;
            e = Expr::Binary { op, lhs: Box::new(e), rhs: Box::new(r) };
        }
        Ok(e)
    }

    fn rel_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => AstBinOp::Lt,
                Tok::Gt => AstBinOp::Gt,
                _ => break,
            };
            self.advance();
            let r = self.add_expr()?;
            e = Expr::Binary { op, lhs: Box::new(e), rhs: Box::new(r) };
        }
        Ok(e)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => AstBinOp::Plus,
                Tok::Minus => AstBinOp::Minus,
                _ => break,
            };
            self.advance();
            let r = self.mul_expr()?;
            e = Expr::Binary { op, lhs: Box::new(e), rhs: Box::new(r) };
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary_expr()?;
        while *self.peek() == Tok::Star {
            self.advance();
            let r = self.unary_expr()?;
            e = Expr::Binary { op: AstBinOp::Star, lhs: Box::new(e), rhs: Box::new(r) };
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if *self.peek() == Tok::Bang {
            self.advance();
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        if self.looks_like_cast() {
            let line = self.line();
            self.eat(&Tok::LParen)?;
            let ty = self.parse_type()?;
            self.eat(&Tok::RParen)?;
            let operand = self.unary_expr()?;
            return Ok(Expr::Cast { ty, expr: Box::new(operand), line });
        }
        self.postfix_expr()
    }

    /// Heuristic cast detection: `( TypeName [..] )` followed by a token
    /// that can start an expression. `(x) + 1` therefore parses as a
    /// parenthesized variable, while `(Foo) x` parses as a cast.
    fn looks_like_cast(&self) -> bool {
        if *self.peek() != Tok::LParen {
            return false;
        }
        let mut off = 1;
        match self.peek_at(off) {
            Tok::Ident(_) | Tok::IntKw | Tok::BooleanKw => off += 1,
            _ => return false,
        }
        while *self.peek_at(off) == Tok::LBracket && *self.peek_at(off + 1) == Tok::RBracket {
            off += 2;
        }
        if *self.peek_at(off) != Tok::RParen {
            return false;
        }
        matches!(
            self.peek_at(off + 1),
            Tok::Ident(_)
                | Tok::Int(_)
                | Tok::Str(_)
                | Tok::This
                | Tok::New
                | Tok::LParen
                | Tok::Null
        )
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek().clone() {
                Tok::Dot => {
                    self.advance();
                    let line = self.line();
                    let name = self.eat_ident()?;
                    if *self.peek() == Tok::LParen {
                        let args = self.arg_list()?;
                        e = Expr::Call { base: Some(Box::new(e)), name, args, line };
                    } else {
                        e = Expr::Field { base: Box::new(e), name, line };
                    }
                }
                Tok::LBracket => {
                    self.advance();
                    let idx = self.expr()?;
                    self.eat(&Tok::RBracket)?;
                    e = Expr::Index { base: Box::new(e), index: Box::new(idx) };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn arg_list(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.eat(&Tok::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                args.push(self.expr()?);
                if *self.peek() == Tok::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen)?;
        Ok(args)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.advance() {
            Tok::Int(n) => Ok(Expr::Int(n)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::True => Ok(Expr::Bool(true)),
            Tok::False => Ok(Expr::Bool(false)),
            Tok::Null => Ok(Expr::Null),
            Tok::This => Ok(Expr::This(line)),
            Tok::Ident(name) => {
                if *self.peek() == Tok::LParen {
                    let args = self.arg_list()?;
                    Ok(Expr::Call { base: None, name, args, line })
                } else {
                    Ok(Expr::Var(name, line))
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            Tok::New => {
                // `new C(args)` | `new T[n]` | `new T[] { e, … }`
                let ty = self.parse_type_no_array()?;
                if *self.peek() == Tok::LParen {
                    let class = match ty {
                        TypeAst::Named(n) => n,
                        TypeAst::Str => "String".to_string(),
                        other => {
                            return Err(
                                self.err(format!("cannot construct non-class type {other:?}"))
                            )
                        }
                    };
                    let args = self.arg_list()?;
                    Ok(Expr::New { class, args, line })
                } else if *self.peek() == Tok::LBracket {
                    self.advance();
                    if *self.peek() == Tok::RBracket {
                        self.advance();
                        // `new T[] { … }`
                        self.eat(&Tok::LBrace)?;
                        let mut init = Vec::new();
                        if *self.peek() != Tok::RBrace {
                            loop {
                                init.push(self.expr()?);
                                if *self.peek() == Tok::Comma {
                                    self.advance();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.eat(&Tok::RBrace)?;
                        Ok(Expr::NewArray { elem: ty, init, line })
                    } else {
                        let _len = self.expr()?;
                        self.eat(&Tok::RBracket)?;
                        Ok(Expr::NewArray { elem: ty, init: vec![], line })
                    }
                } else {
                    Err(self.err("expected `(` or `[` after `new T`".into()))
                }
            }
            other => {
                Err(ParseError { msg: format!("expected expression, found {other}"), line, col: 0 })
            }
        }
    }

    fn parse_type_no_array(&mut self) -> Result<TypeAst, ParseError> {
        match self.advance() {
            Tok::IntKw => Ok(TypeAst::Int),
            Tok::BooleanKw => Ok(TypeAst::Boolean),
            Tok::Ident(s) if s == "String" => Ok(TypeAst::Str),
            Tok::Ident(s) => Ok(TypeAst::Named(s)),
            other => Err(self.err(format!("expected type, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_class_with_members() {
        let ast = parse(
            r#"
            class Foo extends Bar implements Baz, Qux {
                field String name;
                static field int count;
                ctor (String n) { this.name = n; }
                method String getName() { return this.name; }
                method void abstractish();
            }
            "#,
        )
        .unwrap();
        assert_eq!(ast.classes.len(), 1);
        let c = &ast.classes[0];
        assert_eq!(c.superclass.as_deref(), Some("Bar"));
        assert_eq!(c.interfaces, vec!["Baz".to_string(), "Qux".to_string()]);
        assert_eq!(c.fields.len(), 2);
        assert!(c.fields[1].is_static);
        assert_eq!(c.methods.len(), 3);
        assert_eq!(c.methods[0].name, "<init>");
        assert!(c.methods[2].body.is_none());
    }

    #[test]
    fn parses_control_flow() {
        let ast = parse(
            r#"
            class C {
                method int f(int x) {
                    int y = 0;
                    while (x > 0) { y = y + x; x = x - 1; }
                    if (y == 0) { return 1; } else { return y; }
                }
            }
            "#,
        )
        .unwrap();
        let m = &ast.classes[0].methods[0];
        let b = m.body.as_ref().unwrap();
        assert!(matches!(b.stmts[0], Stmt::VarDecl { .. }));
        assert!(matches!(b.stmts[1], Stmt::While { .. }));
        assert!(matches!(b.stmts[2], Stmt::If { .. }));
    }

    #[test]
    fn for_desugars_to_while() {
        let ast = parse(
            r#"
            class C {
                method void f() {
                    for (int i = 0; i < 10; i = i + 1) { this.g(i); }
                }
                method void g(int i) { }
            }
            "#,
        )
        .unwrap();
        let b = ast.classes[0].methods[0].body.as_ref().unwrap();
        assert!(matches!(b.stmts[0], Stmt::VarDecl { .. }), "init hoisted");
        match &b.stmts[1] {
            Stmt::While { body, .. } => {
                assert!(
                    matches!(body.stmts.last(), Some(Stmt::Assign { .. })),
                    "update appended to loop body"
                );
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn cast_vs_paren() {
        let ast = parse(
            r#"
            class C {
                method void f(Object o) {
                    Widget w = (Widget) o;
                }
            }
            "#,
        )
        .unwrap();
        let b = ast.classes[0].methods[0].body.as_ref().unwrap();
        match &b.stmts[0] {
            Stmt::VarDecl { init: Some(Expr::Cast { ty, .. }), .. } => {
                assert_eq!(*ty, TypeAst::Named("Widget".into()));
            }
            other => panic!("expected cast initializer, got {other:?}"),
        }
    }

    #[test]
    fn array_literal() {
        let ast = parse(
            r#"
            class C {
                method Object[] f(Object a) {
                    return new Object[] { a };
                }
            }
            "#,
        )
        .unwrap();
        let b = ast.classes[0].methods[0].body.as_ref().unwrap();
        match &b.stmts[0] {
            Stmt::Return(Some(Expr::NewArray { init, .. }), _) => assert_eq!(init.len(), 1),
            other => panic!("expected array literal return, got {other:?}"),
        }
    }

    #[test]
    fn try_catch_throw() {
        let ast = parse(
            r#"
            class C {
                method void f() {
                    try { this.g(); } catch (Exception e) { throw e; }
                }
                method void g() { }
            }
            "#,
        )
        .unwrap();
        let b = ast.classes[0].methods[0].body.as_ref().unwrap();
        match &b.stmts[0] {
            Stmt::Try { catch_class, catch_name, handler, .. } => {
                assert_eq!(catch_class, "Exception");
                assert_eq!(catch_name, "e");
                assert!(matches!(handler.stmts[0], Stmt::Throw(..)));
            }
            other => panic!("expected try, got {other:?}"),
        }
    }

    #[test]
    fn library_modifier() {
        let ast = parse("library class L { }").unwrap();
        assert!(ast.classes[0].is_library);
    }

    #[test]
    fn error_reports_position() {
        let err = parse("class { }").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("identifier"));
    }

    #[test]
    fn chained_calls_and_fields() {
        let ast = parse(
            r#"
            class C {
                method void f(Req r, Resp p) {
                    p.getWriter().println(r.getParameter("x"));
                }
            }
            "#,
        )
        .unwrap();
        let b = ast.classes[0].methods[0].body.as_ref().unwrap();
        match &b.stmts[0] {
            Stmt::Expr(Expr::Call { name, base: Some(inner), .. }) => {
                assert_eq!(name, "println");
                assert!(matches!(**inner, Expr::Call { .. }));
            }
            other => panic!("expected chained call, got {other:?}"),
        }
    }
}
