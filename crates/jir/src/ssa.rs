//! Semi-pruned SSA construction (Cytron et al. φ-placement on iterated
//! dominance frontiers + dominator-tree renaming).
//!
//! TAJ relies on an SSA register-transfer representation "which gives a
//! measure of flow sensitivity for points-to sets of local variables"
//! (§3.1); every analysis in this workspace assumes bodies are in SSA form.

use std::collections::HashMap;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::inst::{BlockId, Inst, Var};
use crate::method::{Body, MethodKind};
use crate::program::Program;

/// Converts every method body in `program` to SSA form.
pub fn program_to_ssa(program: &mut Program) {
    for m in &mut program.methods {
        let incoming = m.params.len() + usize::from(!m.is_static);
        if let MethodKind::Body(body) = &mut m.kind {
            if !body.is_ssa {
                to_ssa(body, incoming);
            }
        }
    }
}

/// Converts one body to SSA form. `num_incoming` registers (receiver +
/// parameters) are treated as defined at entry.
#[allow(clippy::needless_range_loop)] // index loops mirror the textbook algorithm
pub fn to_ssa(body: &mut Body, num_incoming: usize) {
    if body.blocks.is_empty() {
        body.is_ssa = true;
        return;
    }
    // Clear unreachable blocks first: the renaming walk only visits the
    // dominator tree of the entry, so stale instructions in dead blocks
    // would otherwise keep their original (now duplicated) names.
    {
        let pre = Cfg::build(body);
        for (i, block) in body.blocks.iter_mut().enumerate() {
            if !pre.is_reachable(crate::inst::BlockId(i as u32)) {
                block.insts.clear();
                block.term = crate::inst::Terminator::Unreachable;
            }
        }
    }
    let cfg = Cfg::build(body);
    let dom = DomTree::build(&cfg);
    let orig_vars = body.num_vars;

    // ---- 1. Find "global" variables (live across blocks) and def blocks.
    let mut def_blocks: Vec<Vec<BlockId>> = vec![Vec::new(); orig_vars as usize];
    let mut globals = vec![false; orig_vars as usize];
    let mut uses_buf = Vec::new();
    for (bid, block) in body.iter_blocks() {
        let mut killed = vec![false; orig_vars as usize];
        for inst in &block.insts {
            uses_buf.clear();
            inst.uses(&mut uses_buf);
            for &u in &uses_buf {
                if !killed[u.index()] {
                    globals[u.index()] = true;
                }
            }
            if let Some(d) = inst.def() {
                killed[d.index()] = true;
                if !def_blocks[d.index()].contains(&bid) {
                    def_blocks[d.index()].push(bid);
                }
            }
        }
        if let Some(u) = block.term.use_var() {
            if !killed[u.index()] {
                globals[u.index()] = true;
            }
        }
    }
    // Incoming registers are defined at entry.
    for v in 0..num_incoming.min(orig_vars as usize) {
        if !def_blocks[v].contains(&BlockId(0)) {
            def_blocks[v].push(BlockId(0));
        }
    }

    // ---- 2. Place φ-functions at iterated dominance frontiers.
    // phis[block] : orig var -> operand vector position
    let nblocks = body.blocks.len();
    let mut phi_for: Vec<HashMap<Var, usize>> = vec![HashMap::new(); nblocks];
    let mut phi_list: Vec<Vec<Var>> = vec![Vec::new(); nblocks]; // orig vars, insertion order
    for v in 0..orig_vars {
        let var = Var(v);
        if !globals[v as usize] && def_blocks[v as usize].len() <= 1 {
            continue; // semi-pruned: single-block locals need no φ
        }
        let mut work: Vec<BlockId> = def_blocks[v as usize].clone();
        let mut has_phi = vec![false; nblocks];
        while let Some(d) = work.pop() {
            if !cfg.is_reachable(d) {
                continue;
            }
            for &f in &dom.frontier[d.index()] {
                if !has_phi[f.index()] {
                    has_phi[f.index()] = true;
                    phi_for[f.index()].insert(var, phi_list[f.index()].len());
                    phi_list[f.index()].push(var);
                    if !def_blocks[v as usize].contains(&f) {
                        work.push(f);
                    }
                }
            }
        }
    }
    // Materialize φ instructions at block starts (operands initially the
    // original variable; renaming fixes them up).
    for b in 0..nblocks {
        if phi_list[b].is_empty() {
            continue;
        }
        let preds = cfg.preds[b].clone();
        let mut phis: Vec<Inst> = Vec::with_capacity(phi_list[b].len());
        for &v in &phi_list[b] {
            phis.push(Inst::Phi { dst: v, srcs: preds.iter().map(|&p| (p, v)).collect() });
        }
        let block = &mut body.blocks[b];
        let old = std::mem::take(&mut block.insts);
        block.insts = phis.into_iter().chain(old).collect();
    }

    // ---- 3. Rename via dominator-tree walk.
    let mut stacks: Vec<Vec<Var>> = vec![Vec::new(); orig_vars as usize];
    let mut name_taken = vec![false; orig_vars as usize];
    for v in 0..num_incoming.min(orig_vars as usize) {
        stacks[v].push(Var(v as u32)); // parameters keep their names
        name_taken[v] = true;
    }
    // Fresh-name allocation preserving declared types.
    let mut var_types = std::mem::take(&mut body.var_types);
    let default_ty = crate::types::TypeTable::new().null();
    let mut fresh = |body: &mut Body, orig: Var| -> Var {
        let nv = body.fresh_var();
        let ty = var_types.get(orig.index()).copied().unwrap_or(default_ty);
        var_types.push(ty);
        nv
    };

    // Iterative DFS over dominator tree, with per-block pop lists.
    enum Step {
        Enter(BlockId),
        Exit(Vec<Var>), // orig vars whose stacks to pop
    }
    let mut agenda = vec![Step::Enter(BlockId(0))];
    while let Some(step) = agenda.pop() {
        match step {
            Step::Exit(pops) => {
                for v in pops {
                    stacks[v.index()].pop();
                }
            }
            Step::Enter(b) => {
                let mut pops: Vec<Var> = Vec::new();
                // Rename within the block.
                let ninsts = body.blocks[b.index()].insts.len();
                for i in 0..ninsts {
                    let is_phi = matches!(body.blocks[b.index()].insts[i], Inst::Phi { .. });
                    if !is_phi {
                        let inst = &mut body.blocks[b.index()].insts[i];
                        inst.rewrite_uses(|v| stacks[v.index()].last().copied().unwrap_or(v));
                    }
                    let def = body.blocks[b.index()].insts[i].def();
                    if let Some(d) = def {
                        if d.0 < orig_vars {
                            let new_name = if !name_taken[d.index()] {
                                name_taken[d.index()] = true;
                                d // first def anywhere keeps the source name
                            } else {
                                fresh(body, d)
                            };
                            stacks[d.index()].push(new_name);
                            pops.push(d);
                            body.blocks[b.index()].insts[i].rewrite_def(|_| new_name);
                        }
                    }
                }
                {
                    let term = &mut body.blocks[b.index()].term;
                    term.rewrite_uses(|v| stacks[v.index()].last().copied().unwrap_or(v));
                }
                // Fill φ operands in successors.
                for &s in &cfg.succs[b.index()] {
                    for inst in &mut body.blocks[s.index()].insts {
                        if let Inst::Phi { srcs, .. } = inst {
                            for (pred, val) in srcs.iter_mut() {
                                if *pred == b && val.0 < orig_vars {
                                    if let Some(&top) = stacks[val.index()].last() {
                                        *val = top;
                                    }
                                }
                            }
                        } else {
                            break; // φs are a prefix of the block
                        }
                    }
                }
                agenda.push(Step::Exit(pops));
                for &c in dom.children[b.index()].iter().rev() {
                    agenda.push(Step::Enter(c));
                }
            }
        }
    }

    body.var_types = var_types;
    body.is_ssa = true;
}

/// Returns, for each register, the location of its unique definition
/// (`None` for parameters and never-defined registers).
///
/// # Panics
/// Panics (in debug builds) if the body is not in SSA form and a register
/// has multiple definitions.
pub fn def_sites(body: &Body) -> Vec<Option<crate::inst::Loc>> {
    let mut defs: Vec<Option<crate::inst::Loc>> = vec![None; body.num_vars as usize];
    for (bid, block) in body.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(d) = inst.def() {
                debug_assert!(
                    defs[d.index()].is_none() || !body.is_ssa,
                    "multiple defs of {d:?} in SSA body"
                );
                defs[d.index()] = Some(crate::inst::Loc::new(bid, i));
            }
        }
    }
    defs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, ConstValue, Terminator};
    use crate::method::BasicBlock;

    /// x = 1; if c { x = 2 } ; use x  — classic φ test.
    fn branchy_body() -> Body {
        let mut body = Body { num_vars: 3, ..Default::default() }; // v0=c, v1=x, v2=use
        body.var_types = vec![crate::types::TypeTable::new().int(); 3];
        body.blocks = vec![
            BasicBlock {
                insts: vec![Inst::Const { dst: Var(1), value: ConstValue::Int(1) }],
                term: Terminator::If { cond: Var(0), then_bb: BlockId(1), else_bb: BlockId(2) },
                ..Default::default()
            },
            BasicBlock {
                insts: vec![Inst::Const { dst: Var(1), value: ConstValue::Int(2) }],
                term: Terminator::Goto(BlockId(2)),
                ..Default::default()
            },
            BasicBlock {
                insts: vec![Inst::Binary { dst: Var(2), op: BinOp::Add, lhs: Var(1), rhs: Var(1) }],
                term: Terminator::Return(Some(Var(2))),
                ..Default::default()
            },
        ];
        body
    }

    #[test]
    fn phi_inserted_at_join() {
        let mut body = branchy_body();
        to_ssa(&mut body, 1);
        assert!(body.is_ssa);
        let join = &body.blocks[2];
        assert!(
            matches!(join.insts[0], Inst::Phi { .. }),
            "join block should start with a φ, got {:?}",
            join.insts[0]
        );
        if let Inst::Phi { dst, srcs } = &join.insts[0] {
            assert_eq!(srcs.len(), 2);
            let (a, b) = (srcs[0].1, srcs[1].1);
            assert_ne!(a, b, "φ operands must differ across the two paths");
            // The use below must read the φ result.
            if let Inst::Binary { lhs, rhs, .. } = &join.insts[1] {
                assert_eq!(*lhs, *dst);
                assert_eq!(*rhs, *dst);
            } else {
                panic!("expected binary after φ");
            }
        }
    }

    #[test]
    fn ssa_bodies_have_unique_defs() {
        let mut body = branchy_body();
        to_ssa(&mut body, 1);
        let mut seen = std::collections::HashSet::new();
        for (_, block) in body.iter_blocks() {
            for inst in &block.insts {
                if let Some(d) = inst.def() {
                    assert!(seen.insert(d), "register {d:?} defined twice");
                }
            }
        }
    }

    #[test]
    fn straightline_body_untouched_structure() {
        let mut body = Body { num_vars: 2, ..Default::default() };
        body.var_types = vec![crate::types::TypeTable::new().int(); 2];
        body.blocks = vec![BasicBlock {
            insts: vec![
                Inst::Const { dst: Var(1), value: ConstValue::Int(7) },
                Inst::Binary { dst: Var(1), op: BinOp::Add, lhs: Var(1), rhs: Var(1) },
            ],
            term: Terminator::Return(Some(Var(1))),
            ..Default::default()
        }];
        to_ssa(&mut body, 1);
        // Second def of v1 must be renamed; the return reads the renamed one.
        let b = &body.blocks[0];
        let d0 = b.insts[0].def().unwrap();
        let d1 = b.insts[1].def().unwrap();
        assert_ne!(d0, d1);
        if let Inst::Binary { lhs, rhs, .. } = &b.insts[1] {
            assert_eq!(*lhs, d0);
            assert_eq!(*rhs, d0);
        }
        assert_eq!(b.term, Terminator::Return(Some(d1)));
    }

    #[test]
    fn loop_gets_phi_at_header() {
        // x = 0; while (c) { x = x + 1 }; return x
        let mut body = Body { num_vars: 3, ..Default::default() };
        body.var_types = vec![crate::types::TypeTable::new().int(); 3];
        body.blocks = vec![
            BasicBlock {
                insts: vec![Inst::Const { dst: Var(1), value: ConstValue::Int(0) }],
                term: Terminator::Goto(BlockId(1)),
                ..Default::default()
            },
            BasicBlock {
                term: Terminator::If { cond: Var(0), then_bb: BlockId(2), else_bb: BlockId(3) },
                ..Default::default()
            },
            BasicBlock {
                insts: vec![Inst::Binary { dst: Var(1), op: BinOp::Add, lhs: Var(1), rhs: Var(1) }],
                term: Terminator::Goto(BlockId(1)),
                ..Default::default()
            },
            BasicBlock { term: Terminator::Return(Some(Var(1))), ..Default::default() },
        ];
        to_ssa(&mut body, 1);
        assert!(
            matches!(body.blocks[1].insts.first(), Some(Inst::Phi { .. })),
            "loop header needs a φ for x"
        );
    }

    #[test]
    fn def_sites_unique_after_ssa() {
        let mut body = branchy_body();
        to_ssa(&mut body, 1);
        let defs = def_sites(&body);
        // Every non-parameter register that is used somewhere has a def.
        let mut used = Vec::new();
        for (_, block) in body.iter_blocks() {
            for inst in &block.insts {
                inst.uses(&mut used);
            }
        }
        for u in used {
            if u.0 >= 1 {
                assert!(defs[u.index()].is_some(), "{u:?} used but never defined");
            }
        }
    }
}
