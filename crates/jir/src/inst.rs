//! The register-transfer instruction set.
//!
//! Every instruction reads and writes virtual registers ([`Var`]). After SSA
//! construction each register has exactly one definition; [`Phi`]
//! instructions appear at block starts.
//!
//! [`Phi`]: Inst::Phi

use crate::class::{ClassId, FieldId, SelectorId};
use crate::index_type;
use crate::method::MethodId;
use crate::types::TypeId;

index_type! {
    /// A virtual register, local to one method body.
    pub struct Var, "v"
}

index_type! {
    /// A basic block within one method body.
    pub struct BlockId, "bb"
}

/// Position of an instruction inside a method body.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// Containing basic block.
    pub block: BlockId,
    /// Index within the block's instruction list.
    pub idx: u32,
}

impl Loc {
    /// Creates a location.
    pub fn new(block: BlockId, idx: usize) -> Self {
        Loc { block, idx: idx as u32 }
    }
}

/// A compile-time constant.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ConstValue {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal; drives constant-key dictionary modeling (§4.2.1) and
    /// reflection resolution (§4.2.3).
    Str(String),
    /// The `null` reference.
    Null,
    /// A class literal produced by resolving `Class.forName("C")`.
    ClassLit(ClassId),
}

/// A filter attached to a copy, restricting which abstract objects flow
/// across it.
///
/// Cast expressions produce [`Filter::InstanceOf`]; the reflection-narrowing
/// pass (§4.2.3) produces [`Filter::MethodNameEquals`] for the
/// `if (m.getName().equals("id")) target = m;` idiom.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Filter {
    /// Only objects whose class is a subtype of the given class pass.
    InstanceOf(ClassId),
    /// Only reflective `Method` objects whose method name equals the given
    /// string pass.
    MethodNameEquals(String),
}

/// Binary operators. String `+` lowers to [`BinOp::Concat`], which analyses
/// treat as taint-propagating from both operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// String concatenation (taint-propagating).
    Concat,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Less-than.
    Lt,
    /// Greater-than.
    Gt,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

/// The callee designator of a [`Inst::Call`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CallTarget {
    /// Direct call to a static method.
    Static(MethodId),
    /// Virtually dispatched call through the receiver.
    Virtual(SelectorId),
    /// Direct (non-virtual) call: constructors and `super` calls.
    Special(MethodId),
}

/// One IR instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Inst {
    /// `dst = const`.
    Const {
        /// Destination register.
        dst: Var,
        /// The constant.
        value: ConstValue,
    },
    /// `dst = src`, optionally restricted by a [`Filter`] (casts, reflective
    /// method-name narrowing).
    Assign {
        /// Destination register.
        dst: Var,
        /// Source register.
        src: Var,
        /// Optional flow filter.
        filter: Option<Filter>,
    },
    /// `dst = new C` — heap allocation; the allocation site is this
    /// instruction's location.
    New {
        /// Destination register.
        dst: Var,
        /// Allocated class.
        class: ClassId,
    },
    /// `dst = new T[..]`.
    NewArray {
        /// Destination register.
        dst: Var,
        /// Element type.
        elem: TypeId,
    },
    /// `dst = base.field` — instance field load.
    Load {
        /// Destination register.
        dst: Var,
        /// Base object.
        base: Var,
        /// Loaded field.
        field: FieldId,
    },
    /// `base.field = src` — instance field store.
    Store {
        /// Base object.
        base: Var,
        /// Stored field.
        field: FieldId,
        /// Stored value.
        src: Var,
    },
    /// `dst = C.field` — static field load.
    StaticLoad {
        /// Destination register.
        dst: Var,
        /// Loaded static field.
        field: FieldId,
    },
    /// `C.field = src` — static field store.
    StaticStore {
        /// Stored static field.
        field: FieldId,
        /// Stored value.
        src: Var,
    },
    /// `dst = base[i]` — array load. The static analyses are
    /// index-insensitive (they merge array contents), but the index is
    /// retained for the concrete interpreter.
    ArrayLoad {
        /// Destination register.
        dst: Var,
        /// Array object.
        base: Var,
        /// Index register, when the source had one.
        index: Option<Var>,
    },
    /// `base[i] = src` — array store (see [`Inst::ArrayLoad`] on indices).
    ArrayStore {
        /// Array object.
        base: Var,
        /// Index register, when the source had one.
        index: Option<Var>,
        /// Stored value.
        src: Var,
    },
    /// Method invocation.
    Call {
        /// Register receiving the return value, if any.
        dst: Option<Var>,
        /// Callee designator.
        target: CallTarget,
        /// Receiver for instance calls.
        recv: Option<Var>,
        /// Actual arguments (excluding the receiver).
        args: Vec<Var>,
    },
    /// `dst = lhs op rhs`.
    Binary {
        /// Destination register.
        dst: Var,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Var,
        /// Right operand.
        rhs: Var,
    },
    /// SSA φ-function: `dst = φ(block₁: v₁, …)`. Operand order matches the
    /// block's predecessor order.
    Phi {
        /// Destination register.
        dst: Var,
        /// `(predecessor, value)` operands.
        srcs: Vec<(BlockId, Var)>,
    },
    /// Nondeterministic choice: `dst = select(v₁, …, vₙ)` — dataflow from
    /// every source, position-independent. Produced by model expansion
    /// (constant-key dictionary reads, §4.2.1) and framework synthesis
    /// (tainted `ActionForm` population, §4.2.2), where a value may come
    /// from any of several places with no corresponding control flow.
    Select {
        /// Destination register.
        dst: Var,
        /// Possible sources.
        srcs: Vec<Var>,
    },
    /// Binds the in-flight exception at the start of a handler block.
    CatchBind {
        /// Register receiving the caught exception.
        dst: Var,
        /// Class of exceptions caught (catch-all uses the root
        /// `Throwable`-like class).
        class: ClassId,
    },
}

impl Inst {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<Var> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Assign { dst, .. }
            | Inst::New { dst, .. }
            | Inst::NewArray { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::StaticLoad { dst, .. }
            | Inst::ArrayLoad { dst, .. }
            | Inst::Binary { dst, .. }
            | Inst::Phi { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::CatchBind { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } | Inst::StaticStore { .. } | Inst::ArrayStore { .. } => None,
        }
    }

    /// Collects the registers used (read) by this instruction. Phi operands
    /// are included.
    pub fn uses(&self, out: &mut Vec<Var>) {
        match self {
            Inst::Const { .. } => {}
            Inst::Assign { src, .. } => out.push(*src),
            Inst::New { .. } | Inst::NewArray { .. } | Inst::CatchBind { .. } => {}
            Inst::Load { base, .. } => out.push(*base),
            Inst::Store { base, src, .. } => {
                out.push(*base);
                out.push(*src);
            }
            Inst::StaticLoad { .. } => {}
            Inst::StaticStore { src, .. } => out.push(*src),
            Inst::ArrayLoad { base, index, .. } => {
                out.push(*base);
                if let Some(i) = index {
                    out.push(*i);
                }
            }
            Inst::ArrayStore { base, index, src } => {
                out.push(*base);
                if let Some(i) = index {
                    out.push(*i);
                }
                out.push(*src);
            }
            Inst::Call { recv, args, .. } => {
                if let Some(r) = recv {
                    out.push(*r);
                }
                out.extend(args.iter().copied());
            }
            Inst::Binary { lhs, rhs, .. } => {
                out.push(*lhs);
                out.push(*rhs);
            }
            Inst::Phi { srcs, .. } => out.extend(srcs.iter().map(|(_, v)| *v)),
            Inst::Select { srcs, .. } => out.extend(srcs.iter().copied()),
        }
    }

    /// Rewrites every used register through `f` (used by SSA renaming).
    /// Phi operands are *not* rewritten here; renaming handles them at the
    /// predecessor.
    pub fn rewrite_uses(&mut self, mut f: impl FnMut(Var) -> Var) {
        match self {
            Inst::Const { .. }
            | Inst::New { .. }
            | Inst::NewArray { .. }
            | Inst::StaticLoad { .. }
            | Inst::CatchBind { .. }
            | Inst::Phi { .. } => {}
            Inst::Assign { src, .. } => *src = f(*src),
            Inst::Load { base, .. } => *base = f(*base),
            Inst::Store { base, src, .. } => {
                *base = f(*base);
                *src = f(*src);
            }
            Inst::StaticStore { src, .. } => *src = f(*src),
            Inst::ArrayLoad { base, index, .. } => {
                *base = f(*base);
                if let Some(i) = index {
                    *i = f(*i);
                }
            }
            Inst::ArrayStore { base, index, src } => {
                *base = f(*base);
                if let Some(i) = index {
                    *i = f(*i);
                }
                *src = f(*src);
            }
            Inst::Call { recv, args, .. } => {
                if let Some(r) = recv {
                    *r = f(*r);
                }
                for a in args {
                    *a = f(*a);
                }
            }
            Inst::Binary { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Select { srcs, .. } => {
                for s in srcs {
                    *s = f(*s);
                }
            }
        }
    }

    /// Rewrites the defined register through `f`.
    pub fn rewrite_def(&mut self, mut f: impl FnMut(Var) -> Var) {
        match self {
            Inst::Const { dst, .. }
            | Inst::Assign { dst, .. }
            | Inst::New { dst, .. }
            | Inst::NewArray { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::StaticLoad { dst, .. }
            | Inst::ArrayLoad { dst, .. }
            | Inst::Binary { dst, .. }
            | Inst::Phi { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::CatchBind { dst, .. } => *dst = f(*dst),
            Inst::Call { dst, .. } => {
                if let Some(d) = dst {
                    *d = f(*d);
                }
            }
            Inst::Store { .. } | Inst::StaticStore { .. } | Inst::ArrayStore { .. } => {}
        }
    }

    /// Whether this is a call instruction.
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. })
    }
}

/// Block terminator.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way conditional branch on a boolean register.
    If {
        /// Condition register.
        cond: Var,
        /// Successor when true.
        then_bb: BlockId,
        /// Successor when false.
        else_bb: BlockId,
    },
    /// Method return.
    Return(Option<Var>),
    /// Throws the given register's value.
    Throw(Var),
    /// Placeholder used while a body is under construction.
    #[default]
    Unreachable,
}

impl Terminator {
    /// Normal-control-flow successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Goto(b) => vec![*b],
            Terminator::If { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::Return(_) | Terminator::Throw(_) | Terminator::Unreachable => vec![],
        }
    }

    /// The register read by this terminator, if any.
    pub fn use_var(&self) -> Option<Var> {
        match self {
            Terminator::If { cond, .. } => Some(*cond),
            Terminator::Return(v) => *v,
            Terminator::Throw(v) => Some(*v),
            Terminator::Goto(_) | Terminator::Unreachable => None,
        }
    }

    /// Rewrites the used register through `f`.
    pub fn rewrite_uses(&mut self, mut f: impl FnMut(Var) -> Var) {
        match self {
            Terminator::If { cond, .. } => *cond = f(*cond),
            Terminator::Return(Some(v)) => *v = f(*v),
            Terminator::Throw(v) => *v = f(*v),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_use_of_store() {
        let st = Inst::Store { base: Var(1), field: FieldId(0), src: Var(2) };
        assert_eq!(st.def(), None);
        let mut uses = Vec::new();
        st.uses(&mut uses);
        assert_eq!(uses, vec![Var(1), Var(2)]);
    }

    #[test]
    fn def_use_of_call() {
        let call = Inst::Call {
            dst: Some(Var(0)),
            target: CallTarget::Virtual(SelectorId(3)),
            recv: Some(Var(1)),
            args: vec![Var(2), Var(3)],
        };
        assert_eq!(call.def(), Some(Var(0)));
        let mut uses = Vec::new();
        call.uses(&mut uses);
        assert_eq!(uses, vec![Var(1), Var(2), Var(3)]);
    }

    #[test]
    fn rewrite_uses_shifts_registers() {
        let mut add = Inst::Binary { dst: Var(0), op: BinOp::Add, lhs: Var(1), rhs: Var(2) };
        add.rewrite_uses(|v| Var(v.0 + 10));
        match add {
            Inst::Binary { lhs, rhs, .. } => {
                assert_eq!(lhs, Var(11));
                assert_eq!(rhs, Var(12));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::If { cond: Var(0), then_bb: BlockId(1), else_bb: BlockId(2) };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Return(None).successors(), vec![]);
        assert_eq!(t.use_var(), Some(Var(0)));
    }
}
