//! Control-flow graph views over a [`Body`]: successor/predecessor maps and
//! reverse postorder, including exceptional edges to handler blocks.

use crate::inst::{BlockId, Inst, Terminator};
use crate::method::Body;

/// Precomputed CFG adjacency for one body.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successors per block (normal + exceptional).
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors per block (normal + exceptional).
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry.
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`usize::MAX` when unreachable).
    pub rpo_pos: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG for `body`.
    ///
    /// A block gains an exceptional edge to its handler when it contains a
    /// call (which may throw) or ends in `throw`.
    pub fn build(body: &Body) -> Cfg {
        let n = body.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, block) in body.iter_blocks() {
            let mut out = block.term.successors();
            if let Some(h) = block.handler {
                let may_throw = block.insts.iter().any(Inst::is_call)
                    || matches!(block.term, Terminator::Throw(_));
                if may_throw && !out.contains(&h) {
                    out.push(h);
                }
            }
            for s in &out {
                preds[s.index()].push(id);
            }
            succs[id.index()] = out;
        }

        // Reverse postorder via iterative DFS.
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        if n > 0 {
            let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
            visited[0] = true;
            while let Some(&mut (b, ref mut next)) = stack.last_mut() {
                let ss = &succs[b.index()];
                if *next < ss.len() {
                    let s = ss[*next];
                    *next += 1;
                    if !visited[s.index()] {
                        visited[s.index()] = true;
                        stack.push((s, 0));
                    }
                } else {
                    postorder.push(b);
                    stack.pop();
                }
            }
        }
        postorder.reverse();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in postorder.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        Cfg { succs, preds, rpo: postorder, rpo_pos }
    }

    /// Whether `block` is reachable from the entry.
    pub fn is_reachable(&self, block: BlockId) -> bool {
        self.rpo_pos[block.index()] != usize::MAX
    }

    /// Number of blocks (including unreachable ones).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the CFG has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{CallTarget, Var};
    use crate::method::{BasicBlock, MethodId};

    fn diamond() -> Body {
        // bb0 -> bb1, bb2; bb1 -> bb3; bb2 -> bb3; bb3 -> return
        let mut body = Body { num_vars: 1, ..Default::default() };
        body.blocks = vec![
            BasicBlock {
                term: Terminator::If { cond: Var(0), then_bb: BlockId(1), else_bb: BlockId(2) },
                ..Default::default()
            },
            BasicBlock { term: Terminator::Goto(BlockId(3)), ..Default::default() },
            BasicBlock { term: Terminator::Goto(BlockId(3)), ..Default::default() },
            BasicBlock { term: Terminator::Return(None), ..Default::default() },
        ];
        body
    }

    #[test]
    fn diamond_adjacency() {
        let cfg = Cfg::build(&diamond());
        assert_eq!(cfg.succs[0], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds[3], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert_eq!(*cfg.rpo.last().unwrap(), BlockId(3));
        assert_eq!(cfg.rpo.len(), 4);
    }

    #[test]
    fn handler_edge_added_for_calls() {
        let mut body = diamond();
        body.blocks[1].handler = Some(BlockId(2));
        body.blocks[1].insts.push(Inst::Call {
            dst: None,
            target: CallTarget::Static(MethodId(0)),
            recv: None,
            args: vec![],
        });
        let cfg = Cfg::build(&body);
        assert!(cfg.succs[1].contains(&BlockId(2)), "exceptional edge to handler");
    }

    #[test]
    fn no_handler_edge_without_throwing_insts() {
        let mut body = diamond();
        body.blocks[1].handler = Some(BlockId(2));
        let cfg = Cfg::build(&body);
        assert_eq!(cfg.succs[1], vec![BlockId(3)]);
    }

    #[test]
    fn unreachable_block_detected() {
        let mut body = diamond();
        body.blocks.push(BasicBlock { term: Terminator::Return(None), ..Default::default() });
        let cfg = Cfg::build(&body);
        assert!(!cfg.is_reachable(BlockId(4)));
        assert!(cfg.is_reachable(BlockId(3)));
    }
}
