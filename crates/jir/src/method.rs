//! Methods, bodies, basic blocks, and intrinsic (synthetic-model) methods.

use crate::class::ClassId;
use crate::index_type;
use crate::inst::{BlockId, Inst, Terminator, Var};
use crate::types::TypeId;

index_type! {
    /// Id of a [`Method`] in a [`crate::program::Program`].
    pub struct MethodId, "m"
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Clone, Debug, Default)]
pub struct BasicBlock {
    /// Instructions in execution order; φ-functions first after SSA.
    pub insts: Vec<Inst>,
    /// The terminator. Defaults to [`Terminator::Unreachable`] while the
    /// block is under construction.
    pub term: Terminator,
    /// Exception handler covering this block, if any. A call or `throw`
    /// inside the block may transfer control there.
    pub handler: Option<BlockId>,
}

/// An analyzable method body.
#[derive(Clone, Debug, Default)]
pub struct Body {
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Number of virtual registers (SSA construction grows this).
    pub num_vars: u32,
    /// Declared types of registers where known (indexed by register; may be
    /// shorter than `num_vars` for SSA-introduced registers).
    pub var_types: Vec<TypeId>,
    /// Whether SSA construction has run.
    pub is_ssa: bool,
}

impl Body {
    /// Allocates a fresh register.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Iterates over `(BlockId, &BasicBlock)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total instruction count across blocks (excludes terminators).
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Access a block by id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block by id.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }
}

/// Built-in semantics for library methods that TAJ models synthetically
/// instead of analyzing (§4.2 of the paper).
///
/// Most dataflow-relevant intrinsics (`MapPut`, `BuilderAppend`, …) are
/// *expanded* into ordinary load/store instructions by
/// [`crate::expand::expand_models`] before any analysis runs; the pointer
/// analysis only needs special handling for the reflection and allocation
/// intrinsics that survive expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// Returns a value derived from the receiver and every argument
    /// (string operations: `concat`, `substring`, `toLowerCase`, …).
    Propagate,
    /// Returns a fresh value unrelated to the inputs (e.g. `Date.getDate`).
    Fresh,
    /// Returns a freshly allocated object of the given class; the call site
    /// acts as the allocation site (library factory methods, `getWriter`).
    FreshObject(ClassId),
    /// Returns the receiver unchanged (fluent no-ops).
    ReturnReceiver,
    /// `Map.put(key, value)` → store into a synthetic per-key field.
    MapPut,
    /// `Map.get(key)` → load from a synthetic per-key field.
    MapGet,
    /// `Collection.add(v)` → store into the synthetic `$elems` field.
    CollAdd,
    /// `Collection.get(i)` / `Iterator.next()` → load from `$elems`.
    CollGet,
    /// `coll.iterator()` → alias of the receiver.
    IterAlias,
    /// `StringBuilder.append(v)` → store into `$content`, returns receiver.
    BuilderAppend,
    /// `StringBuilder.toString()` → load from `$content`.
    BuilderToString,
    /// `Class.forName(name)`: with a constant argument resolves to a class
    /// literal (§4.2.3).
    ClassForName,
    /// `Class.newInstance()`: allocates an object of each pointed-to class.
    ClassNewInstance,
    /// `Class.getMethods()`: array of reflective `Method` objects.
    GetMethods,
    /// `Class.getMethod(name)`: a single reflective `Method` object when the
    /// name is constant.
    GetMethod,
    /// `Method.getName()`: a string; participates in reflective narrowing.
    MethodGetName,
    /// `Method.invoke(recv, argArray)`: reflective dispatch.
    MethodInvoke,
    /// `Thread.start()`: invokes `run()` on the receiver.
    ThreadStart,
    /// `Throwable.getMessage()`: returns internal message state; marked as an
    /// information-leakage source by the default rules (§4.1.2).
    GetMessage,
    /// No dataflow effect.
    Nop,
}

/// How a method's behaviour is specified.
#[derive(Clone, Debug)]
pub enum MethodKind {
    /// An analyzable IR body.
    Body(Body),
    /// A synthetic model (§4.2).
    Intrinsic(Intrinsic),
    /// Abstract/interface method with no behaviour.
    Abstract,
}

/// A method declaration.
#[derive(Clone, Debug)]
pub struct Method {
    /// Method name.
    pub name: String,
    /// Declaring class.
    pub owner: ClassId,
    /// Declared parameter types, excluding the receiver.
    pub params: Vec<TypeId>,
    /// Return type.
    pub ret: TypeId,
    /// Whether the method is static (no receiver).
    pub is_static: bool,
    /// Behaviour.
    pub kind: MethodKind,
    /// Whether this is a library factory method; such methods receive one
    /// level of call-string context in the pointer analysis (§3.1).
    pub is_factory: bool,
}

impl Method {
    /// Number of registers holding incoming values: receiver (if any)
    /// followed by the declared parameters.
    pub fn num_incoming(&self) -> usize {
        self.params.len() + usize::from(!self.is_static)
    }

    /// The register holding the receiver, if the method is an instance
    /// method with a body.
    pub fn this_var(&self) -> Option<Var> {
        if self.is_static {
            None
        } else {
            Some(Var(0))
        }
    }

    /// The register holding the `i`-th declared parameter.
    pub fn param_var(&self, i: usize) -> Var {
        Var((i + usize::from(!self.is_static)) as u32)
    }

    /// The IR body, if this method has one.
    pub fn body(&self) -> Option<&Body> {
        match &self.kind {
            MethodKind::Body(b) => Some(b),
            _ => None,
        }
    }

    /// Mutable IR body access.
    pub fn body_mut(&mut self) -> Option<&mut Body> {
        match &mut self.kind {
            MethodKind::Body(b) => Some(b),
            _ => None,
        }
    }

    /// The intrinsic model, if any.
    pub fn intrinsic(&self) -> Option<Intrinsic> {
        match &self.kind {
            MethodKind::Intrinsic(i) => Some(*i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_method(is_static: bool, nparams: usize) -> Method {
        Method {
            name: "m".into(),
            owner: ClassId(0),
            params: vec![TypeId(1); nparams],
            ret: TypeId(0),
            is_static,
            kind: MethodKind::Abstract,
            is_factory: false,
        }
    }

    #[test]
    fn incoming_registers_account_for_receiver() {
        let m = mk_method(false, 2);
        assert_eq!(m.num_incoming(), 3);
        assert_eq!(m.this_var(), Some(Var(0)));
        assert_eq!(m.param_var(0), Var(1));
        assert_eq!(m.param_var(1), Var(2));

        let s = mk_method(true, 2);
        assert_eq!(s.num_incoming(), 2);
        assert_eq!(s.this_var(), None);
        assert_eq!(s.param_var(0), Var(0));
    }

    #[test]
    fn fresh_vars_are_sequential() {
        let mut b = Body { num_vars: 3, ..Default::default() };
        assert_eq!(b.fresh_var(), Var(3));
        assert_eq!(b.fresh_var(), Var(4));
        assert_eq!(b.num_vars, 5);
    }

    #[test]
    fn intrinsic_accessor() {
        let mut m = mk_method(true, 0);
        m.kind = MethodKind::Intrinsic(Intrinsic::MapGet);
        assert_eq!(m.intrinsic(), Some(Intrinsic::MapGet));
        assert!(m.body().is_none());
    }
}
