//! Human-readable IR printing for debugging, examples, and golden tests.

use std::fmt::Write as _;

use crate::inst::{CallTarget, ConstValue, Inst, Terminator};
use crate::method::{Method, MethodId, MethodKind};
use crate::program::Program;
use crate::types::Type;

/// Renders one method's IR.
pub fn method_to_string(program: &Program, mid: MethodId) -> String {
    let m = program.method(mid);
    let mut out = String::new();
    let owner = &program.class(m.owner).name;
    let _ = write!(out, "{}{}.{}(", if m.is_static { "static " } else { "" }, owner, m.name);
    let params: Vec<String> = m.params.iter().map(|&t| type_name(program, t)).collect();
    let _ = writeln!(out, "{}) -> {} {{", params.join(", "), type_name(program, m.ret));
    match &m.kind {
        MethodKind::Intrinsic(i) => {
            let _ = writeln!(out, "  <intrinsic {i:?}>");
        }
        MethodKind::Abstract => {
            let _ = writeln!(out, "  <abstract>");
        }
        MethodKind::Body(body) => {
            for (bid, block) in body.iter_blocks() {
                let handler = match block.handler {
                    Some(h) => format!("  (handler {h})"),
                    None => String::new(),
                };
                let _ = writeln!(out, "{bid}:{handler}");
                for inst in &block.insts {
                    let _ = writeln!(out, "    {}", inst_to_string(program, m, inst));
                }
                let _ = writeln!(out, "    {}", term_to_string(&block.term));
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a whole program's application classes (library bodies omitted).
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for (cid, class) in program.iter_classes() {
        if class.is_library {
            continue;
        }
        let _ = writeln!(out, "class {} {{", class.name);
        for &f in &class.fields {
            let field = program.field(f);
            let _ = writeln!(out, "  field {}: {}", field.name, type_name(program, field.ty));
        }
        for &m in &class.methods {
            for line in method_to_string(program, m).lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        let _ = writeln!(out, "}}");
        let _ = cid;
    }
    out
}

/// Renders one instruction.
pub fn inst_to_string(program: &Program, method: &Method, inst: &Inst) -> String {
    let _ = method;
    match inst {
        Inst::Const { dst, value } => format!("{dst} = const {}", const_to_string(program, value)),
        Inst::Assign { dst, src, filter: None } => format!("{dst} = {src}"),
        Inst::Assign { dst, src, filter: Some(f) } => format!("{dst} = {src} [filter {f:?}]"),
        Inst::New { dst, class } => {
            format!("{dst} = new {}", program.class(*class).name)
        }
        Inst::NewArray { dst, elem } => {
            format!("{dst} = new {}[]", type_name(program, *elem))
        }
        Inst::Load { dst, base, field } => {
            format!("{dst} = {base}.{}", program.field(*field).name)
        }
        Inst::Store { base, field, src } => {
            format!("{base}.{} = {src}", program.field(*field).name)
        }
        Inst::StaticLoad { dst, field } => {
            let f = program.field(*field);
            format!("{dst} = {}.{}", program.class(f.owner).name, f.name)
        }
        Inst::StaticStore { field, src } => {
            let f = program.field(*field);
            format!("{}.{} = {src}", program.class(f.owner).name, f.name)
        }
        Inst::ArrayLoad { dst, base, .. } => format!("{dst} = {base}[*]"),
        Inst::ArrayStore { base, src, .. } => format!("{base}[*] = {src}"),
        Inst::Call { dst, target, recv, args } => {
            let mut s = String::new();
            if let Some(d) = dst {
                let _ = write!(s, "{d} = ");
            }
            match target {
                CallTarget::Static(m) => {
                    let callee = program.method(*m);
                    let _ = write!(s, "call {}.{}", program.class(callee.owner).name, callee.name);
                }
                CallTarget::Special(m) => {
                    let callee = program.method(*m);
                    let _ =
                        write!(s, "special {}.{}", program.class(callee.owner).name, callee.name);
                }
                CallTarget::Virtual(sel) => {
                    let selector = program.resolve_selector(*sel);
                    let _ = write!(s, "virtual .{}", selector.name);
                }
            }
            let _ = write!(s, "(");
            let mut first = true;
            if let Some(r) = recv {
                let _ = write!(s, "this={r}");
                first = false;
            }
            for a in args {
                if !first {
                    let _ = write!(s, ", ");
                }
                let _ = write!(s, "{a}");
                first = false;
            }
            let _ = write!(s, ")");
            s
        }
        Inst::Binary { dst, op, lhs, rhs } => format!("{dst} = {lhs} {op:?} {rhs}"),
        Inst::Phi { dst, srcs } => {
            let ops: Vec<String> = srcs.iter().map(|(b, v)| format!("{b}: {v}")).collect();
            format!("{dst} = φ({})", ops.join(", "))
        }
        Inst::Select { dst, srcs } => {
            let ops: Vec<String> = srcs.iter().map(|v| format!("{v}")).collect();
            format!("{dst} = select({})", ops.join(", "))
        }
        Inst::CatchBind { dst, class } => {
            format!("{dst} = catch {}", program.class(*class).name)
        }
    }
}

fn term_to_string(term: &Terminator) -> String {
    match term {
        Terminator::Goto(b) => format!("goto {b}"),
        Terminator::If { cond, then_bb, else_bb } => {
            format!("if {cond} then {then_bb} else {else_bb}")
        }
        Terminator::Return(Some(v)) => format!("return {v}"),
        Terminator::Return(None) => "return".into(),
        Terminator::Throw(v) => format!("throw {v}"),
        Terminator::Unreachable => "unreachable".into(),
    }
}

fn const_to_string(program: &Program, value: &ConstValue) -> String {
    match value {
        ConstValue::Int(n) => n.to_string(),
        ConstValue::Bool(b) => b.to_string(),
        ConstValue::Str(s) => format!("{s:?}"),
        ConstValue::Null => "null".into(),
        ConstValue::ClassLit(c) => format!("class {}", program.class(*c).name),
    }
}

/// Renders a type id.
pub fn type_name(program: &Program, ty: crate::types::TypeId) -> String {
    match program.types.resolve(ty) {
        Type::Void => "void".into(),
        Type::Int => "int".into(),
        Type::Boolean => "boolean".into(),
        Type::Str => "String".into(),
        Type::Null => "null".into(),
        Type::Class(c) => program.class(c).name.clone(),
        Type::Array(e) => format!("{}[]", type_name(program, e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;

    #[test]
    fn prints_simple_method() {
        let p = frontend::parse_program(
            r#"
            class A {
                field String s;
                method String get() { return this.s; }
            }
            "#,
        )
        .unwrap();
        let a = p.class_by_name("A").unwrap();
        let m = p.method_by_name(a, "get").unwrap();
        let s = method_to_string(&p, m);
        assert!(s.contains("A.get()"), "{s}");
        assert!(s.contains("v0.s"), "{s}");
        assert!(s.contains("return"), "{s}");
    }

    #[test]
    fn prints_program_without_library() {
        let p = frontend::parse_program("class A { }").unwrap();
        let s = program_to_string(&p);
        assert!(s.contains("class A"));
        assert!(!s.contains("HttpServletRequest"), "library classes omitted");
    }

    #[test]
    fn type_names() {
        let mut p = frontend::parse_program("class A { }").unwrap();
        let a = p.class_by_name("A").unwrap();
        let t = p.types.class(a);
        let arr = p.types.array(t);
        assert_eq!(type_name(&p, arr), "A[]");
        let s = p.types.string();
        assert_eq!(type_name(&p, s), "String");
    }
}
