//! Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy's
//! "A Simple, Fast Dominance Algorithm"), the substrate for SSA construction.

use crate::cfg::Cfg;
use crate::inst::BlockId;

/// Immediate-dominator tree plus dominance frontiers for one CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block; `idom[entry] == entry`; unreachable
    /// blocks map to `None`.
    pub idom: Vec<Option<BlockId>>,
    /// Dominance frontier per block.
    pub frontier: Vec<Vec<BlockId>>,
    /// Children in the dominator tree.
    pub children: Vec<Vec<BlockId>>,
}

impl DomTree {
    /// Computes dominators and frontiers for `cfg`.
    pub fn build(cfg: &Cfg) -> DomTree {
        let n = cfg.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return DomTree { idom, frontier: vec![], children: vec![] };
        }
        idom[0] = Some(BlockId(0));

        // Iterate to fixpoint over reverse postorder.
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // not yet processed / unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &cfg.rpo_pos, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        // Dominance frontiers (standard runner algorithm).
        let mut frontier = vec![Vec::new(); n];
        for &b in &cfg.rpo {
            if cfg.preds[b.index()].len() < 2 {
                continue;
            }
            let b_idom = idom[b.index()].expect("reachable join has idom");
            for &p in &cfg.preds[b.index()] {
                if idom[p.index()].is_none() {
                    continue; // unreachable predecessor
                }
                let mut runner = p;
                while runner != b_idom {
                    if !frontier[runner.index()].contains(&b) {
                        frontier[runner.index()].push(b);
                    }
                    runner = idom[runner.index()].expect("reachable pred has idom");
                }
            }
        }

        // Dominator-tree children.
        let mut children = vec![Vec::new(); n];
        for (i, &id) in idom.iter().enumerate() {
            if let Some(d) = id {
                if d.index() != i {
                    children[d.index()].push(BlockId(i as u32));
                }
            }
        }

        DomTree { idom, frontier, children }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_pos: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_pos[a.index()] > rpo_pos[b.index()] {
            a = idom[a.index()].expect("intersect over processed nodes");
        }
        while rpo_pos[b.index()] > rpo_pos[a.index()] {
            b = idom[b.index()].expect("intersect over processed nodes");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Terminator, Var};
    use crate::method::{BasicBlock, Body};

    fn body_from_edges(n: usize, edges: &[(u32, u32)]) -> Body {
        // Encode arbitrary out-degree <= 2 graphs with Goto/If terminators.
        let mut body = Body { num_vars: 1, ..Default::default() };
        for i in 0..n {
            let outs: Vec<u32> =
                edges.iter().filter(|(s, _)| *s == i as u32).map(|(_, t)| *t).collect();
            let term = match outs.len() {
                0 => Terminator::Return(None),
                1 => Terminator::Goto(BlockId(outs[0])),
                2 => Terminator::If {
                    cond: Var(0),
                    then_bb: BlockId(outs[0]),
                    else_bb: BlockId(outs[1]),
                },
                _ => panic!("out-degree > 2 unsupported in this helper"),
            };
            body.blocks.push(BasicBlock { term, ..Default::default() });
        }
        body
    }

    #[test]
    fn diamond_dominators() {
        // 0 -> 1,2 ; 1 -> 3 ; 2 -> 3
        let body = body_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let cfg = Cfg::build(&body);
        let dom = DomTree::build(&cfg);
        assert_eq!(dom.idom[1], Some(BlockId(0)));
        assert_eq!(dom.idom[2], Some(BlockId(0)));
        assert_eq!(dom.idom[3], Some(BlockId(0)), "join dominated by branch head");
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        // Frontier of 1 and 2 is the join block 3.
        assert_eq!(dom.frontier[1], vec![BlockId(3)]);
        assert_eq!(dom.frontier[2], vec![BlockId(3)]);
        assert!(dom.frontier[0].is_empty());
    }

    #[test]
    fn loop_dominators() {
        // 0 -> 1 ; 1 -> 2,3 ; 2 -> 1 (back edge) ; 3 exit
        let body = body_from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 1)]);
        let cfg = Cfg::build(&body);
        let dom = DomTree::build(&cfg);
        assert_eq!(dom.idom[2], Some(BlockId(1)));
        assert_eq!(dom.idom[3], Some(BlockId(1)));
        // Loop header is in its own body's frontier.
        assert!(dom.frontier[2].contains(&BlockId(1)));
        assert!(dom.frontier[1].contains(&BlockId(1)));
    }

    #[test]
    fn nested_ifs() {
        // 0 -> 1,4 ; 1 -> 2,3 ; 2 -> 5; 3 -> 5; 5 -> 6; 4 -> 6
        let body =
            body_from_edges(7, &[(0, 1), (0, 4), (1, 2), (1, 3), (2, 5), (3, 5), (5, 6), (4, 6)]);
        let cfg = Cfg::build(&body);
        let dom = DomTree::build(&cfg);
        assert_eq!(dom.idom[5], Some(BlockId(1)));
        assert_eq!(dom.idom[6], Some(BlockId(0)));
        assert!(dom.dominates(BlockId(1), BlockId(5)));
        assert!(!dom.dominates(BlockId(1), BlockId(6)));
    }

    #[test]
    fn children_partition_blocks() {
        let body = body_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let cfg = Cfg::build(&body);
        let dom = DomTree::build(&cfg);
        let mut all: Vec<BlockId> = dom.children.iter().flatten().copied().collect();
        all.sort();
        assert_eq!(all, vec![BlockId(1), BlockId(2), BlockId(3)]);
    }
}
