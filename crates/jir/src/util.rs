//! Small utilities shared across the workspace: index newtypes, an interner,
//! and a dense bitset used for points-to sets and worklists.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// Declares a `u32`-backed index newtype with the standard trait surface.
///
/// The generated type implements [`Copy`], ordering, hashing, `Debug`
/// (rendered as `prefix(n)`), and conversions to/from `usize`.
#[macro_export]
macro_rules! index_type {
    ($(#[$meta:meta])* $vis:vis struct $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        $vis struct $name(pub u32);

        impl $name {
            /// Creates the index from a raw `usize`.
            ///
            /// # Panics
            /// Panics if `idx` exceeds `u32::MAX`.
            #[inline]
            pub fn new(idx: usize) -> Self {
                debug_assert!(idx <= u32::MAX as usize);
                Self(idx as u32)
            }

            /// Returns the index as a `usize`.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(idx: usize) -> Self {
                Self::new(idx)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

/// A deduplicating interner mapping values of type `T` to dense `u32` ids.
///
/// Used for contexts, selectors, strings, and every other entity whose
/// identity must be cheap to compare and hash.
#[derive(Clone)]
pub struct Interner<T: Eq + Hash + Clone> {
    items: Vec<T>,
    map: HashMap<T, u32>,
}

impl<T: Eq + Hash + Clone> Default for Interner<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Eq + Hash + Clone> Interner<T> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner { items: Vec::new(), map: HashMap::new() }
    }

    /// Interns `value`, returning its dense id. Repeated calls with equal
    /// values return the same id.
    pub fn intern(&mut self, value: T) -> u32 {
        if let Some(&id) = self.map.get(&value) {
            return id;
        }
        let id = self.items.len() as u32;
        self.items.push(value.clone());
        self.map.insert(value, id);
        id
    }

    /// Returns the id for `value` if it has been interned.
    pub fn lookup(&self, value: &T) -> Option<u32> {
        self.map.get(value).copied()
    }

    /// Resolves an id back to its value.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &T {
        &self.items[id as usize]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over `(id, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.items.iter().enumerate().map(|(i, v)| (i as u32, v))
    }
}

impl<T: Eq + Hash + Clone + fmt::Debug> fmt::Debug for Interner<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner").field("len", &self.items.len()).finish()
    }
}

/// A growable dense bitset over `u32` indices.
///
/// Points-to sets and reachability marks use this; it grows on demand and
/// supports fast union with difference reporting (the core operation of
/// difference propagation in the Andersen solver).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty bitset.
    pub fn new() -> Self {
        BitSet { words: Vec::new(), len: 0 }
    }

    /// Creates an empty bitset with capacity for `n` elements.
    pub fn with_capacity(n: usize) -> Self {
        BitSet { words: Vec::with_capacity(n / 64 + 1), len: 0 }
    }

    #[inline]
    fn word_of(idx: u32) -> (usize, u64) {
        ((idx / 64) as usize, 1u64 << (idx % 64))
    }

    /// Inserts `idx`, returning `true` if it was newly added.
    pub fn insert(&mut self, idx: u32) -> bool {
        let (w, m) = Self::word_of(idx);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let newly = self.words[w] & m == 0;
        if newly {
            self.words[w] |= m;
            self.len += 1;
        }
        newly
    }

    /// Removes `idx`, returning `true` if it was present.
    pub fn remove(&mut self, idx: u32) -> bool {
        let (w, m) = Self::word_of(idx);
        if w < self.words.len() && self.words[w] & m != 0 {
            self.words[w] &= !m;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, idx: u32) -> bool {
        let (w, m) = Self::word_of(idx);
        w < self.words.len() && self.words[w] & m != 0
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bits are set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Unions `other` into `self`, returning the elements newly added.
    pub fn union_into(&mut self, other: &BitSet) -> Vec<u32> {
        let mut added = Vec::new();
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, &ow) in other.words.iter().enumerate() {
            let diff = ow & !self.words[w];
            if diff != 0 {
                self.words[w] |= diff;
                let mut d = diff;
                while d != 0 {
                    let bit = d.trailing_zeros();
                    added.push(w as u32 * 64 + bit);
                    d &= d - 1;
                }
            }
        }
        self.len += added.len();
        added
    }

    /// Returns `true` iff `self` and `other` share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(other.words.iter()).any(|(a, b)| a & b != 0)
    }

    /// Returns `true` iff every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(w, &a)| a & !other.words.get(w).copied().unwrap_or(0) == 0)
    }

    /// Iterates over set bits in ascending order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter { set: self, word: 0, bits: self.words.first().copied().unwrap_or(0) }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<u32> for BitSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl Extend<u32> for BitSet {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

/// Iterator over the elements of a [`BitSet`].
#[derive(Debug)]
pub struct BitSetIter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros();
                self.bits &= self.bits - 1;
                return Some(self.word as u32 * 64 + bit);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_dedups() {
        let mut i = Interner::new();
        let a = i.intern("x".to_string());
        let b = i.intern("y".to_string());
        let c = i.intern("x".to_string());
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "x");
        assert_eq!(i.len(), 2);
        assert_eq!(i.lookup(&"y".to_string()), Some(b));
        assert_eq!(i.lookup(&"z".to_string()), None);
    }

    #[test]
    fn bitset_insert_contains() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(100));
        assert!(s.contains(3));
        assert!(s.contains(100));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 100]);
    }

    #[test]
    fn bitset_union_reports_diff() {
        let mut a: BitSet = [1, 2, 3].into_iter().collect();
        let b: BitSet = [2, 3, 64, 65].into_iter().collect();
        let mut added = a.union_into(&b);
        added.sort_unstable();
        assert_eq!(added, vec![64, 65]);
        assert_eq!(a.len(), 5);
        // Second union adds nothing.
        assert!(a.union_into(&b).is_empty());
    }

    #[test]
    fn bitset_intersects_subset() {
        let a: BitSet = [1, 5].into_iter().collect();
        let b: BitSet = [5, 9].into_iter().collect();
        let c: BitSet = [2, 70].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let ab: BitSet = [1, 5, 9].into_iter().collect();
        assert!(a.is_subset(&ab));
        assert!(!ab.is_subset(&a));
    }

    #[test]
    fn bitset_remove() {
        let mut s: BitSet = [7, 8].into_iter().collect();
        assert!(s.remove(7));
        assert!(!s.remove(7));
        assert!(!s.contains(7));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn bitset_debug_nonempty() {
        let s: BitSet = [1].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1}");
        let e = BitSet::new();
        assert_eq!(format!("{e:?}"), "{}");
    }
}
