//! The (deliberately small) type system of the jweb IR: primitives, class
//! references, and arrays, interned in a [`TypeTable`].

use crate::class::ClassId;
use crate::index_type;
use crate::util::Interner;

index_type! {
    /// Interned id of a [`Type`].
    pub struct TypeId, "ty"
}

/// A jweb type.
///
/// `String` is a primitive at the IR level: following TAJ's *string carrier*
/// modeling (§4.2.1 of the paper), string values are handled "as if they were
/// primitive values", so they never receive heap instance keys and flow only
/// through def-use and store/load dependencies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void`, only valid as a return type.
    Void,
    /// 32-bit integers (also used for booleans after lowering comparisons).
    Int,
    /// Booleans.
    Boolean,
    /// Strings, treated as primitive string-carrier values.
    Str,
    /// The type of `null`.
    Null,
    /// A class or interface reference.
    Class(ClassId),
    /// An array with the given element type.
    Array(TypeId),
}

impl Type {
    /// Whether values of this type can point into the heap (receive
    /// points-to sets in the pointer analysis).
    pub fn is_reference(self) -> bool {
        matches!(self, Type::Class(_) | Type::Array(_) | Type::Null)
    }

    /// Returns the class id if this is a class type.
    pub fn as_class(self) -> Option<ClassId> {
        match self {
            Type::Class(c) => Some(c),
            _ => None,
        }
    }
}

/// Interner for [`Type`]s; guarantees `TypeId` equality iff type equality.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    inner: Interner<Type>,
}

impl TypeTable {
    /// Creates a table pre-seeded with the primitive types so their ids are
    /// stable and cheap to obtain.
    pub fn new() -> Self {
        let mut t = TypeTable { inner: Interner::new() };
        // Seed in a fixed order; see the `WellKnown` accessors below.
        t.intern(Type::Void);
        t.intern(Type::Int);
        t.intern(Type::Boolean);
        t.intern(Type::Str);
        t.intern(Type::Null);
        t
    }

    /// Interns a type.
    pub fn intern(&mut self, ty: Type) -> TypeId {
        TypeId(self.inner.intern(ty))
    }

    /// Resolves a type id.
    pub fn resolve(&self, id: TypeId) -> Type {
        *self.inner.resolve(id.0)
    }

    /// The id of `void`.
    pub fn void(&self) -> TypeId {
        TypeId(0)
    }

    /// The id of `int`.
    pub fn int(&self) -> TypeId {
        TypeId(1)
    }

    /// The id of `boolean`.
    pub fn boolean(&self) -> TypeId {
        TypeId(2)
    }

    /// The id of `String`.
    pub fn string(&self) -> TypeId {
        TypeId(3)
    }

    /// The id of the `null` type.
    pub fn null(&self) -> TypeId {
        TypeId(4)
    }

    /// Interns `Class(c)`.
    pub fn class(&mut self, c: ClassId) -> TypeId {
        self.intern(Type::Class(c))
    }

    /// Interns `Array(elem)`.
    pub fn array(&mut self, elem: TypeId) -> TypeId {
        self.intern(Type::Array(elem))
    }

    /// Number of distinct types.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the table holds no types (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_are_preseeded() {
        let t = TypeTable::new();
        assert_eq!(t.resolve(t.void()), Type::Void);
        assert_eq!(t.resolve(t.int()), Type::Int);
        assert_eq!(t.resolve(t.string()), Type::Str);
        assert_eq!(t.resolve(t.null()), Type::Null);
        assert_eq!(t.resolve(t.boolean()), Type::Boolean);
    }

    #[test]
    fn class_and_array_types_are_deduped() {
        let mut t = TypeTable::new();
        let c = ClassId(7);
        let a = t.class(c);
        let b = t.class(c);
        assert_eq!(a, b);
        let arr1 = t.array(a);
        let arr2 = t.array(b);
        assert_eq!(arr1, arr2);
        assert_eq!(t.resolve(arr1), Type::Array(a));
    }

    #[test]
    fn reference_classification() {
        let mut t = TypeTable::new();
        let c = t.class(ClassId(0));
        assert!(t.resolve(c).is_reference());
        assert!(!Type::Int.is_reference());
        assert!(!Type::Str.is_reference(), "strings are primitive string carriers");
        assert_eq!(t.resolve(c).as_class(), Some(ClassId(0)));
    }
}
