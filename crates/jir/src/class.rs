//! Classes, interfaces, fields, and method selectors.

use crate::index_type;
use crate::types::TypeId;

index_type! {
    /// Id of a [`Class`] in a [`crate::program::Program`].
    pub struct ClassId, "C"
}

index_type! {
    /// Id of a [`Field`] in a [`crate::program::Program`].
    pub struct FieldId, "f"
}

index_type! {
    /// Id of an interned [`Selector`] (method name + arity).
    pub struct SelectorId, "sel"
}

/// A method selector: dispatch key for virtual calls.
///
/// jweb does not support overloading on parameter *types*, so a name plus an
/// arity uniquely identifies a method within a class.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Selector {
    /// Method name.
    pub name: String,
    /// Number of declared (non-receiver) parameters.
    pub arity: usize,
}

/// A class or interface declaration.
#[derive(Clone, Debug)]
pub struct Class {
    /// Source-level name, unique within a program.
    pub name: String,
    /// Superclass, `None` only for the root `Object` class and interfaces.
    pub superclass: Option<ClassId>,
    /// Implemented interfaces.
    pub interfaces: Vec<ClassId>,
    /// Declared instance and static fields.
    pub fields: Vec<FieldId>,
    /// Declared methods (ids into the program's method table).
    pub methods: Vec<crate::method::MethodId>,
    /// Whether this is an interface (no instantiation, abstract methods).
    pub is_interface: bool,
    /// Whether this class belongs to *library* code. Drives the LCP
    /// application/library classification (§5) and whitelist exclusion
    /// (§4.2.1).
    pub is_library: bool,
    /// Whether this class is a collection (`HashMap`, `ArrayList`, …).
    /// Collections receive unlimited-depth object sensitivity (§3.1).
    pub is_collection: bool,
}

impl Class {
    /// Creates an application class with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Class {
            name: name.into(),
            superclass: None,
            interfaces: Vec::new(),
            fields: Vec::new(),
            methods: Vec::new(),
            is_interface: false,
            is_library: false,
            is_collection: false,
        }
    }
}

/// A field declaration.
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name (synthetic model fields start with `$`).
    pub name: String,
    /// Declaring class. Synthetic model fields (e.g. `$map$key`) use the
    /// library `Object` class as a nominal owner.
    pub owner: ClassId,
    /// Declared type.
    pub ty: TypeId,
    /// Whether the field is static (a single global location).
    pub is_static: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_equality_is_name_and_arity() {
        let a = Selector { name: "foo".into(), arity: 1 };
        let b = Selector { name: "foo".into(), arity: 1 };
        let c = Selector { name: "foo".into(), arity: 2 };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn class_defaults() {
        let c = Class::new("Widget");
        assert_eq!(c.name, "Widget");
        assert!(!c.is_library);
        assert!(!c.is_interface);
        assert!(c.fields.is_empty());
    }

    #[test]
    fn index_type_roundtrip() {
        let c = ClassId::new(5);
        assert_eq!(c.index(), 5);
        assert_eq!(format!("{c:?}"), "C5");
    }
}
