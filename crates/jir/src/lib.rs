//! # jir — a Java-like IR for taint analysis
//!
//! This crate is the frontend substrate of the `taj-rs` workspace, a Rust
//! reproduction of *TAJ: Effective Taint Analysis of Web Applications*
//! (Tripp, Pistoia, Fink, Sridharan, Weisman — PLDI 2009). It provides:
//!
//! - a register-transfer IR with classes, fields, virtual dispatch, heap
//!   allocation, and exceptions ([`inst`], [`method`], [`program`]);
//! - CFG, dominator, and SSA machinery ([`mod@cfg`], [`dom`], [`ssa`]);
//! - a miniature Java-like source language, **jweb**, with a lexer, parser,
//!   and AST→IR lowering ([`lexer`], [`parser`], [`ast`], [`lower`]);
//! - an intrinsic model library standing in for the Java standard library
//!   and servlet/EE APIs ([`stdlib`]), and the model-expansion pass that
//!   rewrites container/builder intrinsics into plain loads and stores
//!   ([`expand`]), mirroring TAJ's synthetic models (§4.2 of the paper).
//!
//! ## Quick example
//!
//! ```
//! let src = r#"
//!     class Greeter {
//!         method String greet(String who) { return "hi " + who; }
//!     }
//! "#;
//! let mut program = jir::frontend::parse_program(src).expect("parses");
//! jir::ssa::program_to_ssa(&mut program);
//! let greeter = program.class_by_name("Greeter").unwrap();
//! assert!(program.method_by_name(greeter, "greet").is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod cfg;
pub mod class;
pub mod constprop;
pub mod dom;
pub mod expand;
pub mod inst;
pub mod lexer;
pub mod lower;
pub mod method;
pub mod parser;
pub mod pretty;
pub mod program;
pub mod ssa;
pub mod stdlib;
pub mod types;
pub mod util;
pub mod validate;

pub use class::{Class, ClassId, Field, FieldId, Selector, SelectorId};
pub use inst::{BinOp, BlockId, CallTarget, ConstValue, Filter, Inst, Loc, Terminator, Var};
pub use method::{BasicBlock, Body, Intrinsic, Method, MethodId, MethodKind};
pub use program::{Program, ProgramStats};
pub use types::{Type, TypeId, TypeTable};

/// End-to-end frontend entry points: source text → analysis-ready program.
pub mod frontend {
    use crate::program::Program;

    /// Parses jweb source on top of the intrinsic model library, lowers it
    /// to IR, and returns the program (not yet in SSA form).
    ///
    /// # Errors
    /// Returns a [`crate::parser::ParseError`] describing the first syntax
    /// or resolution problem.
    pub fn parse_program(src: &str) -> Result<Program, crate::parser::ParseError> {
        let mut program = crate::stdlib::stdlib_program();
        let ast = crate::parser::parse(src)?;
        crate::lower::lower(&mut program, &ast)?;
        Ok(program)
    }

    /// Full pipeline used by the analyses: parse, lower, expand intrinsic
    /// models into loads/stores, convert to SSA.
    ///
    /// # Errors
    /// Returns a [`crate::parser::ParseError`] on any frontend failure.
    pub fn build_program(src: &str) -> Result<Program, crate::parser::ParseError> {
        let mut program = parse_program(src)?;
        crate::expand::expand_models(&mut program);
        crate::ssa::program_to_ssa(&mut program);
        Ok(program)
    }
}
