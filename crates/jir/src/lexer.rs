//! Hand-written lexer for jweb source.

use std::fmt;

/// A lexical token kind (with payload for literals and identifiers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword-free name.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (unescaped).
    Str(String),
    // Keywords.
    /// `class`
    Class,
    /// `interface`
    Interface,
    /// `library`
    Library,
    /// `extends`
    Extends,
    /// `implements`
    Implements,
    /// `field`
    FieldKw,
    /// `method`
    MethodKw,
    /// `ctor`
    Ctor,
    /// `static`
    Static,
    /// `void`
    Void,
    /// `int`
    IntKw,
    /// `boolean`
    BooleanKw,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `throw`
    Throw,
    /// `try`
    Try,
    /// `catch`
    Catch,
    /// `new`
    New,
    /// `null`
    Null,
    /// `true`
    True,
    /// `false`
    False,
    /// `this`
    This,
    // Punctuation / operators.
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `!`
    Bang,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(n) => write!(f, "integer `{n}`"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Eof => write!(f, "end of input"),
            other => write!(f, "`{other:?}`"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Explanation.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`, appending a trailing [`Tok::Eof`].
///
/// # Errors
/// Returns a [`LexError`] on unterminated strings or unexpected characters.
/// Line comments (`// …`) and block comments (`/* … */`) are skipped.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (tl, tc) = (line, col);
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            msg: "unterminated block comment".into(),
                            line: tl,
                            col: tc,
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            b'"' => {
                bump!();
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            msg: "unterminated string literal".into(),
                            line: tl,
                            col: tc,
                        });
                    }
                    match bytes[i] {
                        b'"' => {
                            bump!();
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            let esc = bytes[i + 1];
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'"' => '"',
                                b'\\' => '\\',
                                other => other as char,
                            });
                            bump!();
                            bump!();
                        }
                        other => {
                            s.push(other as char);
                            bump!();
                        }
                    }
                }
                out.push(Token { tok: Tok::Str(s), line: tl, col: tc });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                let text = &src[start..i];
                let n: i64 = text.parse().map_err(|_| LexError {
                    msg: format!("integer literal `{text}` out of range"),
                    line: tl,
                    col: tc,
                })?;
                out.push(Token { tok: Tok::Int(n), line: tl, col: tc });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'$' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    bump!();
                }
                let word = &src[start..i];
                let tok = match word {
                    "class" => Tok::Class,
                    "interface" => Tok::Interface,
                    "library" => Tok::Library,
                    "extends" => Tok::Extends,
                    "implements" => Tok::Implements,
                    "field" => Tok::FieldKw,
                    "method" => Tok::MethodKw,
                    "ctor" => Tok::Ctor,
                    "static" => Tok::Static,
                    "void" => Tok::Void,
                    "int" => Tok::IntKw,
                    "boolean" => Tok::BooleanKw,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "for" => Tok::For,
                    "return" => Tok::Return,
                    "throw" => Tok::Throw,
                    "try" => Tok::Try,
                    "catch" => Tok::Catch,
                    "new" => Tok::New,
                    "null" => Tok::Null,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "this" => Tok::This,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Token { tok, line: tl, col: tc });
            }
            _ => {
                // Compare raw bytes: slicing `src` here could split a
                // multi-byte UTF-8 character and panic.
                let two = if i + 1 < bytes.len() { Some((bytes[i], bytes[i + 1])) } else { None };
                let tok = match two {
                    Some((b'=', b'=')) => Some(Tok::EqEq),
                    Some((b'!', b'=')) => Some(Tok::NotEq),
                    Some((b'&', b'&')) => Some(Tok::AndAnd),
                    Some((b'|', b'|')) => Some(Tok::OrOr),
                    _ => None,
                };
                if let Some(t) = tok {
                    bump!();
                    bump!();
                    out.push(Token { tok: t, line: tl, col: tc });
                    continue;
                }
                let t = match c {
                    b'{' => Tok::LBrace,
                    b'}' => Tok::RBrace,
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b'[' => Tok::LBracket,
                    b']' => Tok::RBracket,
                    b';' => Tok::Semi,
                    b',' => Tok::Comma,
                    b'.' => Tok::Dot,
                    b'=' => Tok::Assign,
                    b'!' => Tok::Bang,
                    b'<' => Tok::Lt,
                    b'>' => Tok::Gt,
                    b'+' => Tok::Plus,
                    b'-' => Tok::Minus,
                    b'*' => Tok::Star,
                    other => {
                        return Err(LexError {
                            msg: format!("unexpected character `{}`", other as char),
                            line: tl,
                            col: tc,
                        })
                    }
                };
                bump!();
                out.push(Token { tok: t, line: tl, col: tc });
            }
        }
    }
    out.push(Token { tok: Tok::Eof, line, col });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("class Foo extends Bar"),
            vec![
                Tok::Class,
                Tok::Ident("Foo".into()),
                Tok::Extends,
                Tok::Ident("Bar".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#""a\nb\"c""#), vec![Tok::Str("a\nb\"c".into()), Tok::Eof]);
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("a == b != c && d || !e"),
            vec![
                Tok::Ident("a".into()),
                Tok::EqEq,
                Tok::Ident("b".into()),
                Tok::NotEq,
                Tok::Ident("c".into()),
                Tok::AndAnd,
                Tok::Ident("d".into()),
                Tok::OrOr,
                Tok::Bang,
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // comment\n /* block\n comment */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let ts = lex("a\nb").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn dollar_identifiers() {
        assert_eq!(toks("$map$k"), vec![Tok::Ident("$map$k".into()), Tok::Eof]);
    }
}
