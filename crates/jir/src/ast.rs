//! Abstract syntax tree for **jweb**, the miniature Java-like source
//! language the benchmark generator and tests write programs in.
//!
//! jweb is deliberately small but covers everything TAJ's evaluation needs:
//! classes with inheritance and interfaces, instance/static fields and
//! methods, constructors, `if`/`while`/`for`, `try`/`catch`/`throw`, casts,
//! arrays, string concatenation, and calls (virtual, static, constructor).

/// A parsed compilation unit.
#[derive(Debug, Clone, Default)]
pub struct ProgramAst {
    /// Declared classes in source order.
    pub classes: Vec<ClassDecl>,
}

/// A class or interface declaration.
#[derive(Debug, Clone)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// `extends` clause.
    pub superclass: Option<String>,
    /// `implements` clause.
    pub interfaces: Vec<String>,
    /// Declared with the `interface` keyword.
    pub is_interface: bool,
    /// Declared with the `library` modifier; library classes are excluded
    /// from application-side reporting (§5) and may be whitelisted away.
    pub is_library: bool,
    /// Fields in source order.
    pub fields: Vec<FieldDecl>,
    /// Methods (and constructors, named `<init>`) in source order.
    pub methods: Vec<MethodDecl>,
    /// Source line of the declaration.
    pub line: u32,
}

/// A field declaration: `field String name;`.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Declared type.
    pub ty: TypeAst,
    /// `static` modifier.
    pub is_static: bool,
}

/// A method or constructor declaration.
#[derive(Debug, Clone)]
pub struct MethodDecl {
    /// Method name; constructors use the reserved name `<init>`.
    pub name: String,
    /// Parameters as `(type, name)` pairs.
    pub params: Vec<(TypeAst, String)>,
    /// Return type.
    pub ret: TypeAst,
    /// `static` modifier.
    pub is_static: bool,
    /// Body; `None` for abstract/interface methods.
    pub body: Option<Block>,
    /// Source line of the declaration.
    pub line: u32,
}

/// A surface type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeAst {
    /// `void`.
    Void,
    /// `int`.
    Int,
    /// `boolean`.
    Boolean,
    /// `String` (primitive string carrier).
    Str,
    /// A class or interface by name.
    Named(String),
    /// `T[]`.
    Array(Box<TypeAst>),
}

/// A `{ … }` statement list.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `T x = e;` / `T x;`
    VarDecl {
        /// Declared type.
        ty: TypeAst,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `lhs = e;`
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Right-hand side.
        rhs: Expr,
        /// Source line.
        line: u32,
    },
    /// An expression evaluated for effect (usually a call).
    Expr(Expr),
    /// `if (c) { … } else { … }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_blk: Block,
        /// Optional else-branch.
        else_blk: Option<Block>,
    },
    /// `while (c) { … }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `return;` / `return e;`
    Return(Option<Expr>, u32),
    /// `throw e;`
    Throw(Expr, u32),
    /// `try { … } catch (E e) { … }`
    Try {
        /// Protected region.
        body: Block,
        /// Caught exception class name.
        catch_class: String,
        /// Binder for the caught exception.
        catch_name: String,
        /// Handler block.
        handler: Block,
    },
}

/// An assignable place.
#[derive(Debug, Clone)]
pub enum LValue {
    /// A local variable.
    Var(String),
    /// `base.f` — also covers `Class.f` for static fields (disambiguated
    /// during lowering).
    Field {
        /// Base expression.
        base: Expr,
        /// Field name.
        name: String,
    },
    /// `base[i]`.
    Index {
        /// Array expression.
        base: Expr,
        /// Index expression (ignored by the index-insensitive IR).
        index: Expr,
    },
}

/// An expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// `null`.
    Null,
    /// A name: local variable, or class name in static-access position.
    Var(String, u32),
    /// `this`.
    This(u32),
    /// `base.f` (instance or static field read).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
        /// Source line.
        line: u32,
    },
    /// `base[i]`.
    Index {
        /// Array expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// A call: `base.m(args)`, `m(args)` (implicit `this`/own class), or
    /// `Class.m(args)` (static).
    Call {
        /// Receiver/class expression; `None` for unqualified calls.
        base: Option<Box<Expr>>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `new C(args)`.
    New {
        /// Class name.
        class: String,
        /// Constructor arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `new T[n]` or `new T[] { e1, … }`.
    NewArray {
        /// Element type.
        elem: TypeAst,
        /// Optional element initializers.
        init: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `lhs op rhs`.
    Binary {
        /// Operator token.
        op: AstBinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `!e`.
    Not(Box<Expr>),
    /// `(T) e`.
    Cast {
        /// Target type.
        ty: TypeAst,
        /// Operand.
        expr: Box<Expr>,
        /// Source line.
        line: u32,
    },
}

impl Expr {
    /// The source line of this expression, where tracked.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Var(_, l) | Expr::This(l) => *l,
            Expr::Field { line, .. }
            | Expr::Call { line, .. }
            | Expr::New { line, .. }
            | Expr::NewArray { line, .. }
            | Expr::Cast { line, .. } => *line,
            Expr::Binary { lhs, .. } => lhs.line(),
            Expr::Not(e) | Expr::Index { base: e, .. } => e.line(),
            _ => 0,
        }
    }
}

/// Surface binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    /// `+` (integer add or string concat, decided by lowering).
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `==`.
    EqEq,
    /// `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
}
