//! Model expansion: rewrites container/builder intrinsic calls into plain
//! loads and stores over synthetic fields, so downstream analyses see
//! ordinary heap traffic.
//!
//! This is TAJ's constant-key dictionary modeling (§4.2.1): `m.put("k", v)`
//! with a statically-constant key becomes a store to the synthetic field
//! `$map$k` of the map object, and `m.get("k")` a load of `$map$k` (plus
//! the unknown-key summary field `$map$*`). Reads with non-constant keys
//! conservatively load every key field. String builders store into
//! `$content`; collections into `$elems`.

use std::collections::BTreeSet;

use crate::class::FieldId;
use crate::constprop::DefMap;
use crate::inst::{CallTarget, Inst, Var};
use crate::method::{Body, Intrinsic, MethodKind};
use crate::program::Program;
use crate::types::TypeId;

/// Field names used by the expansion.
pub mod fields {
    /// Collection element summary field.
    pub const ELEMS: &str = "$elems";
    /// String-builder content field.
    pub const CONTENT: &str = "$content";
    /// Prefix for constant map keys: `$map$<key>`.
    pub const MAP_PREFIX: &str = "$map$";
    /// Summary field for non-constant map keys.
    pub const MAP_UNKNOWN: &str = "$map$*";
}

/// Runs model expansion over every body in `program`. Idempotent.
pub fn expand_models(program: &mut Program) {
    // Pass 1: collect the global set of constant map keys (so non-constant
    // reads can conservatively cover them all).
    let mut keys: BTreeSet<String> = BTreeSet::new();
    for mid in 0..program.methods.len() {
        let m = &program.methods[mid];
        let Some(body) = m.body() else { continue };
        let dm = DefMap::build(body);
        for block in &body.blocks {
            for inst in &block.insts {
                if let Inst::Call { target, args, .. } = inst {
                    if resolve_intrinsic(program, body, target, inst) == Some(Intrinsic::MapPut) {
                        if let Some(k) = args.first().and_then(|&k| dm.constant_string(k)) {
                            keys.insert(k.to_owned());
                        }
                    }
                }
            }
        }
    }

    // Pre-create synthetic fields (needs &mut Program).
    let object_ty = {
        let obj = program.class_by_name("Object").expect("Object exists");
        program.types.class(obj)
    };
    let str_ty = program.types.string();
    let elems = program.synthetic_field(fields::ELEMS, object_ty);
    let content = program.synthetic_field(fields::CONTENT, str_ty);
    let map_unknown = program.synthetic_field(fields::MAP_UNKNOWN, object_ty);
    let mut key_fields: Vec<(String, FieldId)> = Vec::new();
    for k in &keys {
        let f = program.synthetic_field(&format!("{}{k}", fields::MAP_PREFIX), object_ty);
        key_fields.push((k.clone(), f));
    }

    // Pass 2: rewrite bodies.
    for mid in 0..program.methods.len() {
        if program.methods[mid].body().is_none() {
            continue;
        }
        let mut body =
            std::mem::take(program.methods[mid].body_mut().expect("checked body presence"));
        rewrite_body(
            program,
            &mut body,
            &Fields { elems, content, map_unknown, keys: &key_fields, object_ty },
        );
        *program.methods[mid].body_mut().expect("checked body presence") = body;
    }
}

struct Fields<'a> {
    elems: FieldId,
    content: FieldId,
    map_unknown: FieldId,
    keys: &'a [(String, FieldId)],
    object_ty: TypeId,
}

impl Fields<'_> {
    fn key_field(&self, key: &str) -> Option<FieldId> {
        self.keys.iter().find(|(k, _)| k == key).map(|&(_, f)| f)
    }
}

/// Resolves which intrinsic (if any) a call statically targets, using the
/// receiver's declared type for virtual calls.
fn resolve_intrinsic(
    program: &Program,
    body: &Body,
    target: &CallTarget,
    inst: &Inst,
) -> Option<Intrinsic> {
    let mid = match target {
        CallTarget::Static(m) | CallTarget::Special(m) => Some(*m),
        CallTarget::Virtual(sel) => {
            let Inst::Call { recv: Some(r), .. } = inst else { return None };
            let rty = body.var_types.get(r.index())?;
            let class = program.types.resolve(*rty).as_class()?;
            program.resolve_virtual(class, *sel)
        }
    }?;
    match &program.method(mid).kind {
        MethodKind::Intrinsic(i) => Some(*i),
        _ => None,
    }
}

fn rewrite_body(program: &Program, body: &mut Body, fields: &Fields<'_>) {
    let nblocks = body.blocks.len();
    for b in 0..nblocks {
        let insts = std::mem::take(&mut body.blocks[b].insts);
        let mut out: Vec<Inst> = Vec::with_capacity(insts.len());
        // DefMap must see the whole body; rebuild lazily per block using a
        // snapshot taken before this block was emptied.
        for inst in insts {
            let expanded = match &inst {
                Inst::Call { target, .. } => {
                    // Cheap pre-filter: only calls can expand.
                    let intr = {
                        // Rebuild a body view including already-rewritten
                        // blocks plus the pending instruction list.
                        resolve_intrinsic_with(program, body, target, &inst, &out)
                    };
                    let _ = target;
                    intr.and_then(|i| expand_call(body, fields, &inst, i, &out))
                }
                _ => None,
            };
            match expanded {
                Some(new_insts) => out.extend(new_insts),
                None => out.push(inst),
            }
        }
        body.blocks[b].insts = out;
    }
}

/// Variant of [`resolve_intrinsic`] that only needs receiver types, which
/// live in `body.var_types` and are unaffected by the in-flight rewrite.
fn resolve_intrinsic_with(
    program: &Program,
    body: &Body,
    target: &CallTarget,
    inst: &Inst,
    _pending: &[Inst],
) -> Option<Intrinsic> {
    resolve_intrinsic(program, body, target, inst)
}

fn expand_call(
    body: &mut Body,
    fields: &Fields<'_>,
    inst: &Inst,
    intr: Intrinsic,
    emitted: &[Inst],
) -> Option<Vec<Inst>> {
    let Inst::Call { dst, recv, args, .. } = inst else { return None };
    let recv = *recv;
    let fresh = |body: &mut Body, ty: TypeId| -> Var {
        let v = body.fresh_var();
        body.var_types.push(ty);
        v
    };
    match intr {
        Intrinsic::MapPut => {
            let base = recv?;
            let key = *args.first()?;
            let value = *args.get(1)?;
            let field = constant_key(body, emitted, key)
                .and_then(|k| fields.key_field(&k))
                .unwrap_or(fields.map_unknown);
            Some(vec![Inst::Store { base, field, src: value }])
        }
        Intrinsic::MapGet => {
            let base = recv?;
            let key = *args.first()?;
            let Some(dst) = *dst else {
                return Some(vec![]); // value discarded: nothing to model
            };
            let mut loads: Vec<FieldId> = match constant_key(body, emitted, key) {
                Some(k) => match fields.key_field(&k) {
                    Some(f) => vec![f, fields.map_unknown],
                    None => vec![fields.map_unknown],
                },
                // Unknown key: read every key field plus the summary.
                None => fields
                    .keys
                    .iter()
                    .map(|&(_, f)| f)
                    .chain(std::iter::once(fields.map_unknown))
                    .collect(),
            };
            loads.dedup();
            let mut insts = Vec::with_capacity(loads.len() + 1);
            let mut tmps = Vec::with_capacity(loads.len());
            for f in loads {
                let t = fresh(body, fields.object_ty);
                insts.push(Inst::Load { dst: t, base, field: f });
                tmps.push(t);
            }
            insts.push(Inst::Select { dst, srcs: tmps });
            Some(insts)
        }
        Intrinsic::CollAdd => {
            let base = recv?;
            let value = *args.first()?;
            Some(vec![Inst::Store { base, field: fields.elems, src: value }])
        }
        Intrinsic::CollGet => {
            let base = recv?;
            let dst = (*dst)?;
            Some(vec![Inst::Load { dst, base, field: fields.elems }])
        }
        Intrinsic::IterAlias => {
            let base = recv?;
            let dst = (*dst)?;
            Some(vec![Inst::Assign { dst, src: base, filter: None }])
        }
        Intrinsic::BuilderAppend => {
            let base = recv?;
            let value = *args.first()?;
            let mut insts = vec![Inst::Store { base, field: fields.content, src: value }];
            if let Some(d) = *dst {
                insts.push(Inst::Assign { dst: d, src: base, filter: None });
            }
            Some(insts)
        }
        Intrinsic::BuilderToString => {
            let base = recv?;
            let dst = (*dst)?;
            Some(vec![Inst::Load { dst, base, field: fields.content }])
        }
        Intrinsic::ReturnReceiver => {
            let base = recv?;
            let dst = (*dst)?;
            Some(vec![Inst::Assign { dst, src: base, filter: None }])
        }
        _ => None,
    }
}

/// Resolves the key register to a constant string, looking at both the
/// already-rewritten prefix of the current block and the untouched rest of
/// the body.
fn constant_key(body: &Body, emitted: &[Inst], key: Var) -> Option<String> {
    // Fast path: scan the emitted prefix (where the key literal usually
    // sits, immediately before the call).
    for inst in emitted.iter().rev() {
        match inst {
            Inst::Const { dst, value: crate::inst::ConstValue::Str(s) } if *dst == key => {
                return Some(s.clone())
            }
            _ => {
                if inst.def() == Some(key) {
                    return None;
                }
            }
        }
    }
    crate::constprop::constant_string(body, key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;

    fn expanded(src: &str) -> Program {
        let mut p = frontend::parse_program(src).expect("parses");
        expand_models(&mut p);
        p
    }

    fn body_insts<'p>(p: &'p Program, class: &str, method: &str) -> Vec<&'p Inst> {
        let c = p.class_by_name(class).unwrap();
        let m = p.method_by_name(c, method).unwrap();
        p.method(m).body().unwrap().blocks.iter().flat_map(|b| &b.insts).collect()
    }

    #[test]
    fn const_key_put_becomes_keyed_store() {
        let p = expanded(
            r#"
            class C {
                method void f(HashMap m, Object v) { m.put("user", v); }
            }
            "#,
        );
        let f = p.find_synthetic_field("$map$user").expect("key field created");
        let insts = body_insts(&p, "C", "f");
        assert!(
            insts.iter().any(|i| matches!(i, Inst::Store { field, .. } if *field == f)),
            "expected store to $map$user, got {insts:?}"
        );
        assert!(!insts.iter().any(|i| i.is_call()), "call should be gone");
    }

    #[test]
    fn const_key_get_reads_key_and_summary() {
        let p = expanded(
            r#"
            class C {
                method Object f(HashMap m, Object v) {
                    m.put("a", v);
                    return m.get("a");
                }
            }
            "#,
        );
        let fa = p.find_synthetic_field("$map$a").unwrap();
        let fu = p.find_synthetic_field("$map$*").unwrap();
        let insts = body_insts(&p, "C", "f");
        let loaded: Vec<FieldId> = insts
            .iter()
            .filter_map(|i| match i {
                Inst::Load { field, .. } => Some(*field),
                _ => None,
            })
            .collect();
        assert!(loaded.contains(&fa));
        assert!(loaded.contains(&fu));
        assert!(insts.iter().any(|i| matches!(i, Inst::Select { .. })));
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let p = expanded(
            r#"
            class C {
                method Object f(HttpSession s, Object o1) {
                    s.setAttribute("a", o1);
                    return s.getAttribute("b");
                }
            }
            "#,
        );
        let fa = p.find_synthetic_field("$map$a").unwrap();
        let insts = body_insts(&p, "C", "f");
        let loaded: Vec<FieldId> = insts
            .iter()
            .filter_map(|i| match i {
                Inst::Load { field, .. } => Some(*field),
                _ => None,
            })
            .collect();
        assert!(!loaded.contains(&fa), "get(\"b\") must not read $map$a");
    }

    #[test]
    fn nonconst_get_reads_all_keys() {
        let p = expanded(
            r#"
            class C {
                method Object f(HashMap m, Object v, String k) {
                    m.put("x", v);
                    return m.get(k);
                }
            }
            "#,
        );
        let fx = p.find_synthetic_field("$map$x").unwrap();
        let insts = body_insts(&p, "C", "f");
        let loaded: Vec<FieldId> = insts
            .iter()
            .filter_map(|i| match i {
                Inst::Load { field, .. } => Some(*field),
                _ => None,
            })
            .collect();
        assert!(loaded.contains(&fx), "unknown-key get must cover $map$x");
    }

    #[test]
    fn builder_append_expands() {
        let p = expanded(
            r#"
            class C {
                method String f(String s) {
                    StringBuilder sb = new StringBuilder();
                    sb.append(s);
                    return sb.toString();
                }
            }
            "#,
        );
        let content = p.find_synthetic_field("$content").unwrap();
        let insts = body_insts(&p, "C", "f");
        assert!(insts.iter().any(|i| matches!(i, Inst::Store { field, .. } if *field == content)));
        assert!(insts.iter().any(|i| matches!(i, Inst::Load { field, .. } if *field == content)));
    }

    #[test]
    fn collection_add_get_expand() {
        let p = expanded(
            r#"
            class C {
                method Object f(ArrayList l, Object v) {
                    l.add(v);
                    return l.get(0);
                }
            }
            "#,
        );
        let elems = p.find_synthetic_field("$elems").unwrap();
        let insts = body_insts(&p, "C", "f");
        assert!(insts.iter().any(|i| matches!(i, Inst::Store { field, .. } if *field == elems)));
        assert!(insts.iter().any(|i| matches!(i, Inst::Load { field, .. } if *field == elems)));
    }

    #[test]
    fn non_intrinsic_calls_survive() {
        let p = expanded(
            r#"
            class C {
                method void f(HttpServletRequest r) { r.getParameter("x"); }
            }
            "#,
        );
        let insts = body_insts(&p, "C", "f");
        assert!(insts.iter().any(|i| i.is_call()), "source call must remain a call");
    }

    #[test]
    fn expansion_is_idempotent() {
        let src = r#"
            class C {
                method Object f(HashMap m, Object v) { m.put("k", v); return m.get("k"); }
            }
        "#;
        let mut p = frontend::parse_program(src).unwrap();
        expand_models(&mut p);
        let before: usize =
            p.iter_methods().filter_map(|(_, m)| m.body()).map(|b| b.num_insts()).sum();
        expand_models(&mut p);
        let after: usize =
            p.iter_methods().filter_map(|(_, m)| m.body()).map(|b| b.num_insts()).sum();
        assert_eq!(before, after);
    }
}
