//! The intrinsic model library: TAJ's "synthetic models" (§4.2).
//!
//! TAJ never analyzes the real Java standard library or the Java EE
//! container; it substitutes concise models that capture taint-relevant
//! behaviour. This module plays the same role: it defines the library
//! surface (servlet API, collections, string builders, reflection, JDBC,
//! threads, Struts/EJB hooks) in jweb source, then patches selected
//! body-less methods with [`Intrinsic`] semantics.

use crate::method::{Intrinsic, MethodKind};
use crate::program::Program;

/// jweb source of the model library. Body-less methods are patched to
/// intrinsics by [`stdlib_program`]; methods with bodies are analyzed like
/// application code (but live in `library` classes).
pub const STDLIB_SRC: &str = r#"
library class Object {
    method String toString();
    method boolean equals(Object other);
    method int hashCode();
}

library class Throwable {
    field String msg;
    ctor () { }
    ctor (String m) { this.msg = m; }
    method String getMessage();
    method void printStackTrace();
    method String toString();
}
library class Exception extends Throwable {
    ctor () { }
    ctor (String m) { this.msg = m; }
}
library class RuntimeException extends Exception {
    ctor () { }
    ctor (String m) { this.msg = m; }
}
library class IOException extends Exception {
    ctor () { }
    ctor (String m) { this.msg = m; }
}

library class StringBuilder {
    ctor () { }
    method StringBuilder append(String s);
    method String toString();
}
library class StringBuffer {
    ctor () { }
    method StringBuffer append(String s);
    method String toString();
}

library interface Map {
    method void put(String key, Object value);
    method Object get(String key);
}
library class HashMap implements Map {
    ctor () { }
    method void put(String key, Object value);
    method Object get(String key);
}
library class Hashtable implements Map {
    ctor () { }
    method void put(String key, Object value);
    method Object get(String key);
}
library interface Iterator {
    method boolean hasNext();
    method Object next();
}
library interface List {
    method void add(Object value);
    method Object get(int index);
    method Iterator iterator();
    method int size();
}
library class ArrayList implements List {
    ctor () { }
    method void add(Object value);
    method Object get(int index);
    method Iterator iterator();
    method Object next();
    method boolean hasNext();
    method int size();
}
library class Vector implements List {
    ctor () { }
    method void add(Object value);
    method Object get(int index);
    method Iterator iterator();
    method Object next();
    method boolean hasNext();
    method int size();
}

library class HttpSession {
    ctor () { }
    method void setAttribute(String key, Object value);
    method Object getAttribute(String key);
}
library class Cookie {
    ctor () { }
    method String getName();
    method String getValue();
}
library class HttpServletRequest {
    field HttpSession session;
    ctor () { this.session = new HttpSession(); }
    method String getParameter(String name);
    method String getHeader(String name);
    method String getQueryString();
    method Cookie[] getCookies();
    method HttpSession getSession() { return this.session; }
}
library class PrintWriter {
    method void println(Object value);
    method void print(Object value);
    method void write(String value);
}
library class HttpServletResponse {
    ctor () { }
    method PrintWriter getWriter();
    method void sendRedirect(String url);
    method void addHeader(String name, String value);
}
library class HttpServlet {
    ctor () { }
    method void doGet(HttpServletRequest req, HttpServletResponse resp) { }
    method void doPost(HttpServletRequest req, HttpServletResponse resp) { }
    method void service(HttpServletRequest req, HttpServletResponse resp) {
        this.doGet(req, resp);
        this.doPost(req, resp);
    }
}

library class URLEncoder {
    static method String encode(String s);
}
library class Encoder {
    static method String encodeForHTML(String s);
    static method String encodeForSQL(String s);
    static method String encodeForOS(String s);
    static method String canonicalize(String s);
}

library class Statement {
    method ResultSet executeQuery(String sql);
    method int executeUpdate(String sql);
}
library class ResultSet {
    method String getString(String column);
    method boolean next();
}
library class Connection {
    method Statement createStatement();
}
library class DriverManager {
    static method Connection getConnection(String url);
}

library class Runtime {
    static method Runtime getRuntime();
    method Process exec(String command);
}
library class Process {
    ctor () { }
}
library class File {
    field String path;
    ctor (String path) { this.path = path; }
}
library class FileInputStream {
    field String path;
    ctor (String path) { this.path = path; }
    method String read();
}
library class FileWriter {
    field String path;
    ctor (String path) { this.path = path; }
    method void write(String data);
}

library class Class {
    static method Class forName(String name);
    method Method[] getMethods();
    method Method getMethod(String name);
    method Object newInstance();
}
library class Method {
    method String getName();
    method Object invoke(Object receiver, Object[] args);
}

library interface Runnable {
    method void run();
}
library class Thread implements Runnable {
    field Runnable target;
    ctor () { }
    ctor (Runnable r) { this.target = r; }
    method void start();
    method void run() {
        Runnable t = this.target;
        t.run();
    }
}

library class ByteBuffer {
    field String data;
    ctor () { }
    method String asString() { return this.data; }
}
library class RandomAccessFile {
    field String path;
    ctor (String path) { this.path = path; }
    method void readFully(ByteBuffer buffer);
}

library class Integer {
    static method int parseInt(String s);
    static method String asText(int value);
}

library class Date {
    static method String getDate();
}
library class System {
    static method String getProperty(String name);
}

library class ActionForm {
    ctor () { }
}
library class ActionMapping {
    ctor () { }
}
library class Action {
    ctor () { }
    method void execute(ActionMapping mapping, ActionForm form,
                        HttpServletRequest req, HttpServletResponse resp) { }
}
library class Struts {
    static method String taintedInput();
}

library class InitialContext {
    ctor () { }
    method Object lookup(String name);
}
library class PortableRemoteObject {
    static method Object narrow(Object ref, Class target);
}
library interface EJBHome {
}
library interface EJBObject {
}
"#;

/// Builds a program containing exactly the model library, with intrinsic
/// semantics patched in and collection/factory markers set.
///
/// # Panics
/// Panics if the embedded library source fails to parse (a bug, covered by
/// tests).
pub fn stdlib_program() -> Program {
    let mut p = Program::new();
    let ast = crate::parser::parse(STDLIB_SRC).expect("stdlib source parses");
    crate::lower::lower(&mut p, &ast).expect("stdlib source lowers");

    // Collections get unlimited-depth object sensitivity (§3.1).
    for name in ["HashMap", "Hashtable", "ArrayList", "Vector", "HttpSession"] {
        let c = p.class_by_name(name).expect("collection class exists");
        p.class_mut(c).is_collection = true;
    }

    // Intrinsic semantics for body-less methods.
    let patches: &[(&str, &str, usize, Intrinsic)] = &[
        ("Object", "toString", 0, Intrinsic::Propagate),
        ("Object", "equals", 1, Intrinsic::Fresh),
        ("Object", "hashCode", 0, Intrinsic::Fresh),
        ("Throwable", "getMessage", 0, Intrinsic::GetMessage),
        ("Throwable", "printStackTrace", 0, Intrinsic::Nop),
        ("Throwable", "toString", 0, Intrinsic::Propagate),
        ("StringBuilder", "append", 1, Intrinsic::BuilderAppend),
        ("StringBuilder", "toString", 0, Intrinsic::BuilderToString),
        ("StringBuffer", "append", 1, Intrinsic::BuilderAppend),
        ("StringBuffer", "toString", 0, Intrinsic::BuilderToString),
        ("HashMap", "put", 2, Intrinsic::MapPut),
        ("HashMap", "get", 1, Intrinsic::MapGet),
        ("Hashtable", "put", 2, Intrinsic::MapPut),
        ("Hashtable", "get", 1, Intrinsic::MapGet),
        ("ArrayList", "add", 1, Intrinsic::CollAdd),
        ("ArrayList", "get", 1, Intrinsic::CollGet),
        ("ArrayList", "iterator", 0, Intrinsic::IterAlias),
        ("ArrayList", "next", 0, Intrinsic::CollGet),
        ("ArrayList", "hasNext", 0, Intrinsic::Fresh),
        ("ArrayList", "size", 0, Intrinsic::Fresh),
        ("Vector", "add", 1, Intrinsic::CollAdd),
        ("Vector", "get", 1, Intrinsic::CollGet),
        ("Vector", "iterator", 0, Intrinsic::IterAlias),
        ("Vector", "next", 0, Intrinsic::CollGet),
        ("Vector", "hasNext", 0, Intrinsic::Fresh),
        ("Vector", "size", 0, Intrinsic::Fresh),
        ("HttpSession", "setAttribute", 2, Intrinsic::MapPut),
        ("HttpSession", "getAttribute", 1, Intrinsic::MapGet),
        ("Cookie", "getName", 0, Intrinsic::Fresh),
        ("Cookie", "getValue", 0, Intrinsic::Fresh),
        ("HttpServletRequest", "getParameter", 1, Intrinsic::Fresh),
        ("HttpServletRequest", "getHeader", 1, Intrinsic::Fresh),
        ("HttpServletRequest", "getQueryString", 0, Intrinsic::Fresh),
        ("PrintWriter", "println", 1, Intrinsic::Nop),
        ("PrintWriter", "print", 1, Intrinsic::Nop),
        ("PrintWriter", "write", 1, Intrinsic::Nop),
        ("HttpServletResponse", "sendRedirect", 1, Intrinsic::Nop),
        ("HttpServletResponse", "addHeader", 2, Intrinsic::Nop),
        ("URLEncoder", "encode", 1, Intrinsic::Propagate),
        ("Encoder", "encodeForHTML", 1, Intrinsic::Propagate),
        ("Encoder", "encodeForSQL", 1, Intrinsic::Propagate),
        ("Encoder", "encodeForOS", 1, Intrinsic::Propagate),
        ("Encoder", "canonicalize", 1, Intrinsic::Propagate),
        ("Statement", "executeUpdate", 1, Intrinsic::Fresh),
        ("ResultSet", "getString", 1, Intrinsic::Fresh),
        ("ResultSet", "next", 0, Intrinsic::Fresh),
        ("FileInputStream", "read", 0, Intrinsic::Fresh),
        ("FileWriter", "write", 1, Intrinsic::Nop),
        ("Class", "forName", 1, Intrinsic::ClassForName),
        ("Class", "getMethods", 0, Intrinsic::GetMethods),
        ("Class", "getMethod", 1, Intrinsic::GetMethod),
        ("Class", "newInstance", 0, Intrinsic::ClassNewInstance),
        ("Method", "getName", 0, Intrinsic::MethodGetName),
        ("Method", "invoke", 2, Intrinsic::MethodInvoke),
        ("Thread", "start", 0, Intrinsic::ThreadStart),
        ("RandomAccessFile", "readFully", 1, Intrinsic::Nop),
        ("Integer", "parseInt", 1, Intrinsic::Fresh),
        ("Integer", "asText", 1, Intrinsic::Fresh),
        ("Date", "getDate", 0, Intrinsic::Fresh),
        ("System", "getProperty", 1, Intrinsic::Fresh),
        ("Struts", "taintedInput", 0, Intrinsic::Fresh),
        ("InitialContext", "lookup", 1, Intrinsic::Fresh),
        ("PortableRemoteObject", "narrow", 2, Intrinsic::Propagate),
    ];
    for &(class, method, arity, intr) in patches {
        patch_intrinsic(&mut p, class, method, arity, intr);
    }

    // Allocation-returning intrinsics need their class id.
    let writer = p.class_by_name("PrintWriter").expect("PrintWriter");
    patch_intrinsic(&mut p, "HttpServletResponse", "getWriter", 0, Intrinsic::FreshObject(writer));
    let result_set = p.class_by_name("ResultSet").expect("ResultSet");
    patch_intrinsic(&mut p, "Statement", "executeQuery", 1, Intrinsic::FreshObject(result_set));
    let statement = p.class_by_name("Statement").expect("Statement");
    patch_intrinsic(&mut p, "Connection", "createStatement", 0, Intrinsic::FreshObject(statement));
    let connection = p.class_by_name("Connection").expect("Connection");
    patch_intrinsic(
        &mut p,
        "DriverManager",
        "getConnection",
        1,
        Intrinsic::FreshObject(connection),
    );
    let runtime = p.class_by_name("Runtime").expect("Runtime");
    patch_intrinsic(&mut p, "Runtime", "getRuntime", 0, Intrinsic::FreshObject(runtime));
    let process = p.class_by_name("Process").expect("Process");
    patch_intrinsic(&mut p, "Runtime", "exec", 1, Intrinsic::FreshObject(process));
    patch_intrinsic(&mut p, "HttpServletRequest", "getCookies", 0, Intrinsic::Fresh);

    // Library factory methods get one level of call-string context (§3.1).
    for (class, method) in [
        ("HttpServletResponse", "getWriter"),
        ("Connection", "createStatement"),
        ("DriverManager", "getConnection"),
        ("Runtime", "getRuntime"),
        ("Statement", "executeQuery"),
    ] {
        let c = p.class_by_name(class).expect("factory class exists");
        let m = p.method_by_name(c, method).expect("factory method exists");
        p.method_mut(m).is_factory = true;
    }

    p
}

fn patch_intrinsic(p: &mut Program, class: &str, method: &str, arity: usize, intr: Intrinsic) {
    let c = p.class_by_name(class).unwrap_or_else(|| panic!("stdlib class `{class}`"));
    let m = p
        .class(c)
        .methods
        .iter()
        .copied()
        .find(|&m| p.method(m).name == method && p.method(m).params.len() == arity)
        .unwrap_or_else(|| panic!("stdlib method `{class}.{method}/{arity}`"));
    p.method_mut(m).kind = MethodKind::Intrinsic(intr);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Intrinsic;

    #[test]
    fn stdlib_builds() {
        let p = stdlib_program();
        assert!(p.class_by_name("Object").is_some());
        assert!(p.class_by_name("HttpServletRequest").is_some());
        assert!(p.class_by_name("Method").is_some());
    }

    #[test]
    fn object_is_class_zero() {
        let p = stdlib_program();
        // `Program::synthetic_field` assumes class 0 is the root object.
        assert_eq!(p.class_by_name("Object").unwrap().index(), 0);
    }

    #[test]
    fn collections_marked() {
        let p = stdlib_program();
        let hm = p.class_by_name("HashMap").unwrap();
        assert!(p.class(hm).is_collection);
        let sb = p.class_by_name("StringBuilder").unwrap();
        assert!(
            !p.class(sb).is_collection,
            "builders are modeled via $content, not as collections"
        );
    }

    #[test]
    fn intrinsics_patched() {
        let p = stdlib_program();
        let req = p.class_by_name("HttpServletRequest").unwrap();
        let gp = p.method_by_name(req, "getParameter").unwrap();
        assert_eq!(p.method(gp).intrinsic(), Some(Intrinsic::Fresh));
        let map = p.class_by_name("HashMap").unwrap();
        let put = p.method_by_name(map, "put").unwrap();
        assert_eq!(p.method(put).intrinsic(), Some(Intrinsic::MapPut));
    }

    #[test]
    fn get_session_has_real_body() {
        let p = stdlib_program();
        let req = p.class_by_name("HttpServletRequest").unwrap();
        let gs = p.method_by_name(req, "getSession").unwrap();
        assert!(p.method(gs).body().is_some(), "getSession reads a real field");
    }

    #[test]
    fn factories_marked() {
        let p = stdlib_program();
        let resp = p.class_by_name("HttpServletResponse").unwrap();
        let gw = p.method_by_name(resp, "getWriter").unwrap();
        assert!(p.method(gw).is_factory);
        assert!(matches!(p.method(gw).intrinsic(), Some(Intrinsic::FreshObject(_))));
    }

    #[test]
    fn hierarchy_sane() {
        let p = stdlib_program();
        let exc = p.class_by_name("Exception").unwrap();
        let thr = p.class_by_name("Throwable").unwrap();
        let obj = p.class_by_name("Object").unwrap();
        assert!(p.is_subtype(exc, thr));
        assert!(p.is_subtype(exc, obj));
        let thread = p.class_by_name("Thread").unwrap();
        let runnable = p.class_by_name("Runnable").unwrap();
        assert!(p.is_subtype(thread, runnable));
    }

    #[test]
    fn all_library_classes_flagged() {
        let p = stdlib_program();
        for (_, c) in p.iter_classes() {
            assert!(c.is_library, "stdlib class `{}` must be library", c.name);
        }
    }
}
