//! Lightweight constant resolution over registers: given a register, find
//! the string (or class) constant it must hold, if any.
//!
//! This powers constant-key dictionary modeling (§4.2.1) and reflection
//! resolution (§4.2.3). It is deliberately conservative: a register
//! resolves only if it has exactly one definition whose value chain
//! bottoms out in a literal.

use std::collections::HashMap;

use crate::inst::{ConstValue, Inst, Var};
use crate::method::Body;

/// Map from register to its defining instruction index, when unique.
#[derive(Debug)]
pub struct DefMap<'a> {
    defs: HashMap<Var, &'a Inst>,
    multi: Vec<bool>,
}

impl<'a> DefMap<'a> {
    /// Builds the definition map for `body` (works pre- and post-SSA; a
    /// register with several defs resolves to nothing).
    pub fn build(body: &'a Body) -> Self {
        let mut defs: HashMap<Var, &'a Inst> = HashMap::new();
        let mut multi = vec![false; body.num_vars as usize];
        for block in &body.blocks {
            for inst in &block.insts {
                if let Some(d) = inst.def() {
                    if defs.insert(d, inst).is_some() {
                        multi[d.index()] = true;
                    }
                }
            }
        }
        DefMap { defs, multi }
    }

    /// The unique defining instruction of `v`, if any.
    pub fn def(&self, v: Var) -> Option<&'a Inst> {
        if *self.multi.get(v.index()).unwrap_or(&true) {
            None
        } else {
            self.defs.get(&v).copied()
        }
    }

    /// Resolves `v` to a constant value by chasing unique copies.
    pub fn constant(&self, v: Var) -> Option<&'a ConstValue> {
        let mut cur = v;
        for _ in 0..64 {
            // depth bound guards against copy cycles
            match self.def(cur)? {
                Inst::Const { value, .. } => return Some(value),
                Inst::Assign { src, filter: None, .. } => cur = *src,
                _ => return None,
            }
        }
        None
    }

    /// Resolves `v` to a constant string.
    pub fn constant_string(&self, v: Var) -> Option<&'a str> {
        match self.constant(v)? {
            ConstValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Convenience: resolve a register to a constant string in one shot.
pub fn constant_string(body: &Body, v: Var) -> Option<String> {
    DefMap::build(body).constant_string(v).map(str::to_owned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Terminator;
    use crate::method::BasicBlock;

    fn body_with(insts: Vec<Inst>, num_vars: u32) -> Body {
        Body {
            blocks: vec![BasicBlock { insts, term: Terminator::Return(None), handler: None }],
            num_vars,
            var_types: vec![],
            is_ssa: false,
        }
    }

    #[test]
    fn resolves_direct_literal() {
        let b =
            body_with(vec![Inst::Const { dst: Var(0), value: ConstValue::Str("key".into()) }], 1);
        assert_eq!(constant_string(&b, Var(0)).as_deref(), Some("key"));
    }

    #[test]
    fn resolves_through_copies() {
        let b = body_with(
            vec![
                Inst::Const { dst: Var(0), value: ConstValue::Str("key".into()) },
                Inst::Assign { dst: Var(1), src: Var(0), filter: None },
                Inst::Assign { dst: Var(2), src: Var(1), filter: None },
            ],
            3,
        );
        assert_eq!(constant_string(&b, Var(2)).as_deref(), Some("key"));
    }

    #[test]
    fn multiple_defs_do_not_resolve() {
        let b = body_with(
            vec![
                Inst::Const { dst: Var(0), value: ConstValue::Str("a".into()) },
                Inst::Const { dst: Var(0), value: ConstValue::Str("b".into()) },
            ],
            1,
        );
        assert_eq!(constant_string(&b, Var(0)), None);
    }

    #[test]
    fn filtered_copies_do_not_resolve() {
        let b = body_with(
            vec![
                Inst::Const { dst: Var(0), value: ConstValue::Str("a".into()) },
                Inst::Assign {
                    dst: Var(1),
                    src: Var(0),
                    filter: Some(crate::inst::Filter::MethodNameEquals("m".into())),
                },
            ],
            2,
        );
        assert_eq!(constant_string(&b, Var(1)), None);
    }

    #[test]
    fn non_string_constants() {
        let b = body_with(vec![Inst::Const { dst: Var(0), value: ConstValue::Int(4) }], 1);
        let dm = DefMap::build(&b);
        assert_eq!(dm.constant(Var(0)), Some(&ConstValue::Int(4)));
        assert_eq!(dm.constant_string(Var(0)), None);
    }

    #[test]
    fn copy_cycle_terminates() {
        let b = body_with(
            vec![
                Inst::Assign { dst: Var(0), src: Var(1), filter: None },
                Inst::Assign { dst: Var(1), src: Var(0), filter: None },
            ],
            2,
        );
        assert_eq!(constant_string(&b, Var(0)), None);
    }
}
