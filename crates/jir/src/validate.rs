//! IR well-formedness validation: used by tests and debug builds to catch
//! malformed programs after lowering, model expansion, synthesis passes,
//! and SSA construction.

use std::collections::HashSet;
use std::fmt;

use crate::cfg::Cfg;
use crate::inst::{Inst, Terminator, Var};
use crate::method::MethodKind;
use crate::program::Program;

/// A single validation problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Offending method's name (`class.method`).
    pub method: String,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.method, self.message)
    }
}

/// Validates every body in `program`; returns all problems found.
pub fn validate(program: &Program) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    for (mid, m) in program.iter_methods() {
        let MethodKind::Body(body) = &m.kind else { continue };
        let name = format!("{}.{}", program.class(m.owner).name, m.name);
        let push = |errors: &mut Vec<ValidationError>, msg: String| {
            errors.push(ValidationError { method: name.clone(), message: msg });
        };

        if body.blocks.is_empty() {
            push(&mut errors, "empty body".into());
            continue;
        }
        let nblocks = body.blocks.len() as u32;
        let nvars = body.num_vars;
        let check_var = |errors: &mut Vec<ValidationError>, v: Var, what: &str| {
            if v.0 >= nvars {
                errors.push(ValidationError {
                    method: name.clone(),
                    message: format!("{what} register {v:?} out of range (num_vars={nvars})"),
                });
            }
        };

        let mut uses = Vec::new();
        let mut defs_seen: HashSet<Var> = HashSet::new();
        for (bid, block) in body.iter_blocks() {
            // Handler must be a valid block.
            if let Some(h) = block.handler {
                if h.0 >= nblocks {
                    push(&mut errors, format!("{bid:?}: handler {h:?} out of range"));
                }
            }
            let mut past_phis = false;
            for (i, inst) in block.insts.iter().enumerate() {
                if matches!(inst, Inst::Phi { .. }) {
                    if past_phis && body.is_ssa {
                        push(&mut errors, format!("{bid:?}[{i}]: φ after non-φ"));
                    }
                } else {
                    past_phis = true;
                }
                if let Some(d) = inst.def() {
                    check_var(&mut errors, d, "defined");
                    if body.is_ssa && !defs_seen.insert(d) {
                        push(&mut errors, format!("{bid:?}[{i}]: SSA register {d:?} redefined"));
                    }
                }
                uses.clear();
                inst.uses(&mut uses);
                for &u in &uses {
                    check_var(&mut errors, u, "used");
                }
                // φ operand blocks must exist.
                if let Inst::Phi { srcs, .. } = inst {
                    for (p, _) in srcs {
                        if p.0 >= nblocks {
                            push(&mut errors, format!("{bid:?}[{i}]: φ pred {p:?} out of range"));
                        }
                    }
                }
            }
            match &block.term {
                Terminator::Goto(t) => {
                    if t.0 >= nblocks {
                        push(&mut errors, format!("{bid:?}: goto {t:?} out of range"));
                    }
                }
                Terminator::If { cond, then_bb, else_bb } => {
                    check_var(&mut errors, *cond, "branch condition");
                    for t in [then_bb, else_bb] {
                        if t.0 >= nblocks {
                            push(&mut errors, format!("{bid:?}: branch target {t:?} out of range"));
                        }
                    }
                }
                Terminator::Return(Some(v)) | Terminator::Throw(v) => {
                    check_var(&mut errors, *v, "terminator operand");
                }
                Terminator::Return(None) | Terminator::Unreachable => {}
            }
        }

        // Every reachable block must end in a real terminator. (Skip when
        // structural errors were already found: the CFG builder indexes
        // block targets directly.)
        if errors.iter().any(|e| e.method == name) {
            continue;
        }
        let cfg = Cfg::build(body);
        for (bid, block) in body.iter_blocks() {
            if cfg.is_reachable(bid) && matches!(block.term, Terminator::Unreachable) {
                push(&mut errors, format!("{bid:?}: reachable block has no terminator"));
            }
        }
        // var_types must cover the registers it claims to describe.
        if body.var_types.len() > body.num_vars as usize {
            push(
                &mut errors,
                format!(
                    "var_types has {} entries for {} registers",
                    body.var_types.len(),
                    body.num_vars
                ),
            );
        }
        let _ = mid;
    }
    errors
}

/// Panics with a readable message if `program` fails validation.
///
/// # Panics
/// On the first validation error (all are printed).
pub fn assert_valid(program: &Program) {
    let errors = validate(program);
    assert!(
        errors.is_empty(),
        "IR validation failed:\n{}",
        errors.iter().map(|e| format!("  {e}")).collect::<Vec<_>>().join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BlockId, ConstValue};
    use crate::method::{BasicBlock, Body, Method};

    #[test]
    fn frontend_output_is_valid() {
        let p = crate::frontend::parse_program(
            r#"
            class C extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    String v = req.getParameter("q");
                    try { this.g(v); } catch (Exception e) { resp.getWriter().println(e); }
                }
                method void g(String s) {
                    HashMap m = new HashMap();
                    m.put("k", s);
                }
            }
            "#,
        )
        .unwrap();
        assert_valid(&p);
    }

    #[test]
    fn full_pipeline_output_is_valid() {
        let p = crate::frontend::build_program(
            r#"
            class C {
                method int f(int n) {
                    int acc = 0;
                    while (n > 0) { acc = acc + n; n = n - 1; }
                    return acc;
                }
            }
            "#,
        )
        .unwrap();
        assert_valid(&p);
    }

    #[test]
    fn detects_out_of_range_goto() {
        let mut p = Program::new();
        let obj = p.add_class(crate::class::Class::new("Object"));
        let mut body = Body::default();
        body.blocks.push(BasicBlock { term: Terminator::Goto(BlockId(9)), ..Default::default() });
        p.add_method(Method {
            name: "bad".into(),
            owner: obj,
            params: vec![],
            ret: p.types.void(),
            is_static: true,
            kind: MethodKind::Body(body),
            is_factory: false,
        });
        let errors = validate(&p);
        assert!(errors.iter().any(|e| e.message.contains("out of range")), "{errors:?}");
    }

    #[test]
    fn detects_ssa_redefinition() {
        let mut p = Program::new();
        let obj = p.add_class(crate::class::Class::new("Object"));
        let mut body = Body { num_vars: 1, is_ssa: true, ..Default::default() };
        body.blocks.push(BasicBlock {
            insts: vec![
                Inst::Const { dst: Var(0), value: ConstValue::Int(1) },
                Inst::Const { dst: Var(0), value: ConstValue::Int(2) },
            ],
            term: Terminator::Return(None),
            ..Default::default()
        });
        p.add_method(Method {
            name: "bad".into(),
            owner: obj,
            params: vec![],
            ret: p.types.void(),
            is_static: true,
            kind: MethodKind::Body(body),
            is_factory: false,
        });
        let errors = validate(&p);
        assert!(errors.iter().any(|e| e.message.contains("redefined")), "{errors:?}");
    }

    #[test]
    fn detects_out_of_range_register() {
        let mut p = Program::new();
        let obj = p.add_class(crate::class::Class::new("Object"));
        let mut body = Body { num_vars: 1, ..Default::default() };
        body.blocks.push(BasicBlock {
            insts: vec![Inst::Assign { dst: Var(0), src: Var(5), filter: None }],
            term: Terminator::Return(None),
            ..Default::default()
        });
        p.add_method(Method {
            name: "bad".into(),
            owner: obj,
            params: vec![],
            ret: p.types.void(),
            is_static: true,
            kind: MethodKind::Body(body),
            is_factory: false,
        });
        let errors = validate(&p);
        assert!(errors.iter().any(|e| e.message.contains("out of range")), "{errors:?}");
    }
}
