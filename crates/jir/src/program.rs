//! The [`Program`]: the whole-program container every analysis consumes.

use std::collections::HashMap;

use crate::class::{Class, ClassId, Field, FieldId, Selector, SelectorId};
use crate::method::{Method, MethodId, MethodKind};
use crate::types::{Type, TypeId, TypeTable};
use crate::util::Interner;

/// A whole program: classes, fields, methods, plus interners for types and
/// selectors, and the designated entrypoints.
#[derive(Debug, Default, Clone)]
pub struct Program {
    /// All classes.
    pub classes: Vec<Class>,
    /// All fields.
    pub fields: Vec<Field>,
    /// All methods.
    pub methods: Vec<Method>,
    /// Type interner.
    pub types: TypeTable,
    selectors: Interner<Selector>,
    class_by_name: HashMap<String, ClassId>,
    /// Methods where analysis starts (synthesized servlet/Struts
    /// entrypoints plus any `main`).
    pub entrypoints: Vec<MethodId>,
    /// Cache of synthetic model fields (`$map$k`, `$elems`, `$content`, …)
    /// created by model expansion, keyed by name.
    synthetic_fields: HashMap<String, FieldId>,
}

impl Program {
    /// Creates an empty program with a seeded type table.
    pub fn new() -> Self {
        Program { types: TypeTable::new(), ..Default::default() }
    }

    // ----- classes -----

    /// Adds a class, returning its id.
    ///
    /// # Panics
    /// Panics if a class with the same name already exists.
    pub fn add_class(&mut self, class: Class) -> ClassId {
        assert!(!self.class_by_name.contains_key(&class.name), "duplicate class `{}`", class.name);
        let id = ClassId::new(self.classes.len());
        self.class_by_name.insert(class.name.clone(), id);
        self.classes.push(class);
        id
    }

    /// Access a class.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Mutable access to a class.
    pub fn class_mut(&mut self, id: ClassId) -> &mut Class {
        &mut self.classes[id.index()]
    }

    /// Looks a class up by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// Iterates over `(ClassId, &Class)`.
    pub fn iter_classes(&self) -> impl Iterator<Item = (ClassId, &Class)> {
        self.classes.iter().enumerate().map(|(i, c)| (ClassId::new(i), c))
    }

    // ----- fields -----

    /// Adds a field to its owner class, returning its id.
    pub fn add_field(&mut self, field: Field) -> FieldId {
        let id = FieldId::new(self.fields.len());
        let owner = field.owner;
        self.fields.push(field);
        self.classes[owner.index()].fields.push(id);
        id
    }

    /// Access a field.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }

    /// Finds a field by name on `class` or any superclass.
    pub fn field_by_name(&self, class: ClassId, name: &str) -> Option<FieldId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            for &f in &self.class(c).fields {
                if self.field(f).name == name {
                    return Some(f);
                }
            }
            cur = self.class(c).superclass;
        }
        None
    }

    /// Returns (creating on first use) a synthetic model field with the
    /// given name, owned by the root object class. Model expansion uses
    /// these for container contents, builder contents, and map keys.
    pub fn synthetic_field(&mut self, name: &str, ty: TypeId) -> FieldId {
        if let Some(&f) = self.synthetic_fields.get(name) {
            return f;
        }
        let owner = ClassId::new(0); // root object class by convention
        let f = self.add_field(Field { name: name.to_string(), owner, ty, is_static: false });
        self.synthetic_fields.insert(name.to_string(), f);
        f
    }

    /// Looks up an existing synthetic field without creating it.
    pub fn find_synthetic_field(&self, name: &str) -> Option<FieldId> {
        self.synthetic_fields.get(name).copied()
    }

    /// All synthetic map-key fields created so far (name starts with
    /// `$map$`), used to expand non-constant-key `get` conservatively.
    pub fn map_key_fields(&self) -> Vec<FieldId> {
        self.synthetic_fields
            .iter()
            .filter(|(n, _)| n.starts_with("$map$"))
            .map(|(_, &f)| f)
            .collect()
    }

    // ----- methods -----

    /// Adds a method to its owner class, returning its id.
    pub fn add_method(&mut self, method: Method) -> MethodId {
        let id = MethodId::new(self.methods.len());
        let owner = method.owner;
        self.methods.push(method);
        self.classes[owner.index()].methods.push(id);
        id
    }

    /// Access a method.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Mutable access to a method.
    pub fn method_mut(&mut self, id: MethodId) -> &mut Method {
        &mut self.methods[id.index()]
    }

    /// Iterates over `(MethodId, &Method)`.
    pub fn iter_methods(&self) -> impl Iterator<Item = (MethodId, &Method)> {
        self.methods.iter().enumerate().map(|(i, m)| (MethodId::new(i), m))
    }

    /// Interns a selector.
    pub fn selector(&mut self, name: &str, arity: usize) -> SelectorId {
        SelectorId(self.selectors.intern(Selector { name: name.to_string(), arity }))
    }

    /// Looks up an interned selector.
    pub fn find_selector(&self, name: &str, arity: usize) -> Option<SelectorId> {
        self.selectors.lookup(&Selector { name: name.to_string(), arity }).map(SelectorId)
    }

    /// Resolves a selector id.
    pub fn resolve_selector(&self, id: SelectorId) -> &Selector {
        self.selectors.resolve(id.0)
    }

    /// Finds the method matching `selector` declared on `class` itself
    /// (no superclass search).
    pub fn declared_method(&self, class: ClassId, selector: SelectorId) -> Option<MethodId> {
        let sel = self.resolve_selector(selector);
        self.class(class).methods.iter().copied().find(|&m| {
            let meth = self.method(m);
            meth.name == sel.name && meth.params.len() == sel.arity
        })
    }

    /// Resolves virtual dispatch: walks from `class` up the superclass chain
    /// for a concrete method matching `selector`.
    pub fn resolve_virtual(&self, class: ClassId, selector: SelectorId) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(m) = self.declared_method(c, selector) {
                if !matches!(self.method(m).kind, MethodKind::Abstract) {
                    return Some(m);
                }
            }
            cur = self.class(c).superclass;
        }
        None
    }

    /// Finds a method by class and name (first match over arities), mostly
    /// for tests and rule specifications.
    pub fn method_by_name(&self, class: ClassId, name: &str) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(m) =
                self.class(c).methods.iter().copied().find(|&m| self.method(m).name == name)
            {
                return Some(m);
            }
            cur = self.class(c).superclass;
        }
        None
    }

    // ----- hierarchy -----

    /// Whether `sub` is `sup` or a transitive subclass/implementor of it.
    pub fn is_subtype(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        let c = self.class(sub);
        if let Some(s) = c.superclass {
            if self.is_subtype(s, sup) {
                return true;
            }
        }
        c.interfaces.iter().any(|&i| self.is_subtype(i, sup))
    }

    /// All concrete (non-interface) classes that are subtypes of `class`,
    /// including itself if concrete.
    pub fn concrete_subtypes(&self, class: ClassId) -> Vec<ClassId> {
        self.iter_classes()
            .filter(|(id, c)| !c.is_interface && self.is_subtype(*id, class))
            .map(|(id, _)| id)
            .collect()
    }

    /// Whether a value of runtime class `sub` passes a cast to type `ty`.
    pub fn passes_cast(&self, sub: ClassId, ty: TypeId) -> bool {
        match self.types.resolve(ty) {
            Type::Class(sup) => self.is_subtype(sub, sup),
            _ => true,
        }
    }

    // ----- statistics -----

    /// Counts of (application, total) classes and methods — the raw material
    /// of Table 2.
    pub fn stats(&self) -> ProgramStats {
        let mut s = ProgramStats::default();
        for (_, c) in self.iter_classes() {
            s.total_classes += 1;
            if !c.is_library {
                s.app_classes += 1;
            }
        }
        for (id, m) in self.iter_methods() {
            s.total_methods += 1;
            if !self.class(m.owner).is_library {
                s.app_methods += 1;
            }
            if let Some(b) = self.method(id).body() {
                s.total_insts += b.num_insts();
                if !self.class(m.owner).is_library {
                    s.app_insts += b.num_insts();
                }
            }
        }
        s
    }
}

/// Program size statistics (Table 2 raw material).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProgramStats {
    /// Application (non-library) class count.
    pub app_classes: usize,
    /// Total class count including the model library.
    pub total_classes: usize,
    /// Application method count.
    pub app_methods: usize,
    /// Total method count.
    pub total_methods: usize,
    /// Application IR instruction count.
    pub app_insts: usize,
    /// Total IR instruction count.
    pub total_insts: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::MethodKind;

    fn prog_with_hierarchy() -> (Program, ClassId, ClassId, ClassId) {
        let mut p = Program::new();
        let obj = p.add_class(Class::new("Object"));
        let mut animal = Class::new("Animal");
        animal.superclass = Some(obj);
        let animal = p.add_class(animal);
        let mut dog = Class::new("Dog");
        dog.superclass = Some(animal);
        let dog = p.add_class(dog);
        (p, obj, animal, dog)
    }

    #[test]
    fn subtype_chain() {
        let (p, obj, animal, dog) = prog_with_hierarchy();
        assert!(p.is_subtype(dog, obj));
        assert!(p.is_subtype(dog, animal));
        assert!(p.is_subtype(dog, dog));
        assert!(!p.is_subtype(animal, dog));
    }

    #[test]
    fn interface_subtyping() {
        let mut p = Program::new();
        let obj = p.add_class(Class::new("Object"));
        let mut iface = Class::new("Runnable");
        iface.is_interface = true;
        let iface = p.add_class(iface);
        let mut worker = Class::new("Worker");
        worker.superclass = Some(obj);
        worker.interfaces.push(iface);
        let worker = p.add_class(worker);
        assert!(p.is_subtype(worker, iface));
        assert_eq!(p.concrete_subtypes(iface), vec![worker]);
    }

    #[test]
    fn virtual_resolution_walks_superclasses() {
        let (mut p, _obj, animal, dog) = prog_with_hierarchy();
        let void = p.types.void();
        let speak = p.add_method(Method {
            name: "speak".into(),
            owner: animal,
            params: vec![],
            ret: void,
            is_static: false,
            kind: MethodKind::Intrinsic(crate::method::Intrinsic::Nop),
            is_factory: false,
        });
        let sel = p.selector("speak", 0);
        assert_eq!(p.resolve_virtual(dog, sel), Some(speak));
        assert_eq!(p.resolve_virtual(animal, sel), Some(speak));
    }

    #[test]
    fn override_shadows_super() {
        let (mut p, _obj, animal, dog) = prog_with_hierarchy();
        let void = p.types.void();
        let mk = |owner| Method {
            name: "speak".into(),
            owner,
            params: vec![],
            ret: void,
            is_static: false,
            kind: MethodKind::Intrinsic(crate::method::Intrinsic::Nop),
            is_factory: false,
        };
        let _base = p.add_method(mk(animal));
        let over = p.add_method(mk(dog));
        let sel = p.selector("speak", 0);
        assert_eq!(p.resolve_virtual(dog, sel), Some(over));
    }

    #[test]
    fn synthetic_fields_are_cached() {
        let mut p = Program::new();
        p.add_class(Class::new("Object"));
        let str_ty = p.types.string();
        let a = p.synthetic_field("$map$user", str_ty);
        let b = p.synthetic_field("$map$user", str_ty);
        assert_eq!(a, b);
        assert_eq!(p.map_key_fields(), vec![a]);
        assert_eq!(p.find_synthetic_field("$map$user"), Some(a));
        assert_eq!(p.find_synthetic_field("$nope"), None);
    }

    #[test]
    fn field_lookup_walks_superclasses() {
        let (mut p, obj, _animal, dog) = prog_with_hierarchy();
        let str_ty = p.types.string();
        let f =
            p.add_field(Field { name: "name".into(), owner: obj, ty: str_ty, is_static: false });
        assert_eq!(p.field_by_name(dog, "name"), Some(f));
        assert_eq!(p.field_by_name(dog, "missing"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate class")]
    fn duplicate_class_panics() {
        let mut p = Program::new();
        p.add_class(Class::new("X"));
        p.add_class(Class::new("X"));
    }
}
