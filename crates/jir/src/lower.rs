//! AST → IR lowering: names resolved, expressions flattened to registers,
//! control flow structured into basic blocks, casts and the reflective
//! method-name-narrowing idiom turned into [`Filter`]ed copies (§4.2.3).

use std::collections::HashMap;

use crate::ast::{self, AstBinOp, Block, Expr, LValue, ProgramAst, Stmt, TypeAst};
use crate::class::{Class, ClassId, Field, FieldId};
use crate::inst::{BinOp, BlockId, CallTarget, ConstValue, Filter, Inst, Terminator, Var};
use crate::method::{BasicBlock, Body, Method, MethodId, MethodKind};
use crate::parser::ParseError;
use crate::program::Program;
use crate::types::{Type, TypeId};

/// Lowers `ast` into `program` (which usually already contains the
/// intrinsic model library).
///
/// # Errors
/// Returns a [`ParseError`] on unresolved names, arity mismatches, or
/// malformed constructs.
pub fn lower(program: &mut Program, ast: &ProgramAst) -> Result<(), ParseError> {
    // Pass 1: declare classes.
    let mut declared: Vec<ClassId> = Vec::with_capacity(ast.classes.len());
    for decl in &ast.classes {
        if program.class_by_name(&decl.name).is_some() {
            return Err(ParseError::msg(format!("class `{}` already defined", decl.name)));
        }
        let mut class = Class::new(decl.name.clone());
        class.is_interface = decl.is_interface;
        class.is_library = decl.is_library;
        declared.push(program.add_class(class));
    }
    // Pass 2: resolve supertypes, declare fields and method signatures.
    let object = program
        .class_by_name("Object")
        .ok_or_else(|| ParseError::msg("model library must define `Object`"))?;
    let mut method_ids: Vec<Vec<MethodId>> = Vec::with_capacity(ast.classes.len());
    for (decl, &cid) in ast.classes.iter().zip(&declared) {
        let superclass = match &decl.superclass {
            Some(name) => Some(resolve_class(program, name, decl.line)?),
            None if decl.is_interface => None,
            None if cid == object => None, // the root has no superclass
            None => Some(object),
        };
        program.class_mut(cid).superclass = superclass;
        let mut ifaces = Vec::new();
        for i in &decl.interfaces {
            ifaces.push(resolve_class(program, i, decl.line)?);
        }
        program.class_mut(cid).interfaces = ifaces;
        for f in &decl.fields {
            let ty = resolve_type(program, &f.ty, decl.line)?;
            program.add_field(Field {
                name: f.name.clone(),
                owner: cid,
                ty,
                is_static: f.is_static,
            });
        }
        let mut mids = Vec::new();
        for m in &decl.methods {
            let params = m
                .params
                .iter()
                .map(|(t, _)| resolve_type(program, t, m.line))
                .collect::<Result<Vec<_>, _>>()?;
            let ret = resolve_type(program, &m.ret, m.line)?;
            let kind = if m.body.is_some() {
                MethodKind::Body(Body::default()) // replaced in pass 3
            } else {
                MethodKind::Abstract
            };
            mids.push(program.add_method(Method {
                name: m.name.clone(),
                owner: cid,
                params,
                ret,
                is_static: m.is_static,
                kind,
                is_factory: false,
            }));
        }
        method_ids.push(mids);
    }
    // Pass 3: lower bodies.
    for ((decl, &cid), mids) in ast.classes.iter().zip(&declared).zip(&method_ids) {
        for (m, &mid) in decl.methods.iter().zip(mids) {
            if let Some(block) = &m.body {
                let body = BodyLowerer::new(program, cid, mid, m)?.lower_body(block)?;
                *program.method_mut(mid).body_mut().expect("declared with body") = body;
            }
        }
    }
    Ok(())
}

fn resolve_class(program: &Program, name: &str, line: u32) -> Result<ClassId, ParseError> {
    program.class_by_name(name).ok_or(ParseError {
        msg: format!("unknown class `{name}`"),
        line,
        col: 0,
    })
}

fn resolve_type(program: &mut Program, ty: &TypeAst, line: u32) -> Result<TypeId, ParseError> {
    Ok(match ty {
        TypeAst::Void => program.types.void(),
        TypeAst::Int => program.types.int(),
        TypeAst::Boolean => program.types.boolean(),
        TypeAst::Str => program.types.string(),
        TypeAst::Named(n) => {
            let c = resolve_class(program, n, line)?;
            program.types.class(c)
        }
        TypeAst::Array(elem) => {
            let e = resolve_type(program, elem, line)?;
            program.types.array(e)
        }
    })
}

/// Per-body lowering state.
struct BodyLowerer<'a> {
    program: &'a mut Program,
    class: ClassId,
    body: Body,
    cur: BlockId,
    scopes: Vec<HashMap<String, (Var, TypeId)>>,
    handlers: Vec<BlockId>,
    /// Active reflective narrowing facts: `(local name, method name)` from
    /// enclosing `if (x.getName().equals("m"))` conditions.
    narrows: Vec<(String, String)>,
    is_static: bool,
}

impl<'a> BodyLowerer<'a> {
    fn new(
        program: &'a mut Program,
        class: ClassId,
        mid: MethodId,
        decl: &ast::MethodDecl,
    ) -> Result<Self, ParseError> {
        let mut body = Body::default();
        let is_static = decl.is_static;
        let mut scope = HashMap::new();
        if !is_static {
            let this_ty = program.types.class(class);
            let v = body.fresh_var();
            body.var_types.push(this_ty);
            debug_assert_eq!(v, Var(0));
        }
        for (i, (t, name)) in decl.params.iter().enumerate() {
            let ty = resolve_type(program, t, decl.line)?;
            let v = body.fresh_var();
            body.var_types.push(ty);
            debug_assert_eq!(v.index(), i + usize::from(!is_static));
            scope.insert(name.clone(), (v, ty));
        }
        let _ = mid;
        let mut lowerer = BodyLowerer {
            program,
            class,
            body,
            cur: BlockId(0),
            scopes: vec![scope],
            handlers: Vec::new(),
            narrows: Vec::new(),
            is_static,
        };
        lowerer.body.blocks.push(BasicBlock::default());
        Ok(lowerer)
    }

    fn lower_body(mut self, block: &Block) -> Result<Body, ParseError> {
        self.lower_block(block)?;
        // Fall-through return for void methods / unfinished blocks.
        if matches!(self.body.blocks[self.cur.index()].term, Terminator::Unreachable) {
            self.body.blocks[self.cur.index()].term = Terminator::Return(None);
        }
        Ok(self.body)
    }

    // ---- block/terminator plumbing ----

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.body.blocks.len() as u32);
        self.body
            .blocks
            .push(BasicBlock { handler: self.handlers.last().copied(), ..Default::default() });
        id
    }

    fn emit(&mut self, inst: Inst) {
        self.body.blocks[self.cur.index()].insts.push(inst);
    }

    fn terminate(&mut self, term: Terminator) {
        let b = &mut self.body.blocks[self.cur.index()];
        if matches!(b.term, Terminator::Unreachable) {
            b.term = term;
        }
    }

    fn fresh(&mut self, ty: TypeId) -> Var {
        let v = self.body.fresh_var();
        self.body.var_types.push(ty);
        v
    }

    fn lookup(&self, name: &str) -> Option<(Var, TypeId)> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn declare(&mut self, name: &str, v: Var, ty: TypeId) {
        self.scopes.last_mut().expect("scope stack nonempty").insert(name.to_string(), (v, ty));
    }

    // ---- statements ----

    fn lower_block(&mut self, block: &Block) -> Result<(), ParseError> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.lower_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), ParseError> {
        match stmt {
            Stmt::VarDecl { ty, name, init, line } => {
                let tyid = resolve_type(self.program, ty, *line)?;
                let v = self.fresh(tyid);
                if let Some(e) = init {
                    let (src, _) = self.lower_expr(e)?;
                    let filter = self.narrow_filter_for(e);
                    self.emit(Inst::Assign { dst: v, src, filter });
                } else {
                    self.emit(Inst::Const { dst: v, value: default_const(self.program, tyid) });
                }
                self.declare(name, v, tyid);
            }
            Stmt::Assign { lhs, rhs, line } => match lhs {
                LValue::Var(name) => {
                    let (dst, _ty) = self.lookup(name).ok_or(ParseError {
                        msg: format!("unknown variable `{name}`"),
                        line: *line,
                        col: 0,
                    })?;
                    let (src, _) = self.lower_expr(rhs)?;
                    let filter = self.narrow_filter_for(rhs);
                    self.emit(Inst::Assign { dst, src, filter });
                }
                LValue::Field { base, name } => {
                    let (src, _) = self.lower_expr(rhs)?;
                    match self.static_class_of(base) {
                        Some(cid) => {
                            let f = self.resolve_field(cid, name, *line)?;
                            self.emit(Inst::StaticStore { field: f, src });
                        }
                        None => {
                            let (b, bty) = self.lower_expr(base)?;
                            let f = self.field_on(bty, name, *line)?;
                            self.emit(Inst::Store { base: b, field: f, src });
                        }
                    }
                }
                LValue::Index { base, index } => {
                    let (b, _) = self.lower_expr(base)?;
                    let (idx, _) = self.lower_expr(index)?;
                    let (src, _) = self.lower_expr(rhs)?;
                    self.emit(Inst::ArrayStore { base: b, index: Some(idx), src });
                }
            },
            Stmt::Expr(e) => {
                self.lower_expr(e)?;
            }
            Stmt::If { cond, then_blk, else_blk } => {
                let (c, _) = self.lower_expr(cond)?;
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.terminate(Terminator::If { cond: c, then_bb, else_bb });
                // Reflective narrowing applies in the then-branch only.
                let narrow = narrow_pattern(cond);
                self.cur = then_bb;
                if let Some(n) = &narrow {
                    self.narrows.push(n.clone());
                }
                self.lower_block(then_blk)?;
                if narrow.is_some() {
                    self.narrows.pop();
                }
                self.terminate(Terminator::Goto(join));
                self.cur = else_bb;
                if let Some(eb) = else_blk {
                    self.lower_block(eb)?;
                }
                self.terminate(Terminator::Goto(join));
                self.cur = join;
            }
            Stmt::While { cond, body } => {
                let header = self.new_block();
                self.terminate(Terminator::Goto(header));
                self.cur = header;
                let (c, _) = self.lower_expr(cond)?;
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(Terminator::If { cond: c, then_bb: body_bb, else_bb: exit });
                self.cur = body_bb;
                self.lower_block(body)?;
                self.terminate(Terminator::Goto(header));
                self.cur = exit;
            }
            Stmt::Return(value, _line) => {
                let v = match value {
                    Some(e) => Some(self.lower_expr(e)?.0),
                    None => None,
                };
                self.terminate(Terminator::Return(v));
                self.cur = self.new_block(); // dead continuation
            }
            Stmt::Throw(e, _line) => {
                let (v, _) = self.lower_expr(e)?;
                self.terminate(Terminator::Throw(v));
                self.cur = self.new_block();
            }
            Stmt::Try { body, catch_class, catch_name, handler } => {
                let exc_class = resolve_class(self.program, catch_class, 0)?;
                let exc_ty = self.program.types.class(exc_class);
                let handler_bb = self.new_block(); // handler itself uses outer handler
                                                   // Protected region.
                self.handlers.push(handler_bb);
                let protected = self.new_block();
                self.terminate(Terminator::Goto(protected));
                self.cur = protected;
                self.lower_block(body)?;
                self.handlers.pop();
                let join = self.new_block();
                self.terminate(Terminator::Goto(join));
                // Handler.
                self.cur = handler_bb;
                let evar = self.fresh(exc_ty);
                self.emit(Inst::CatchBind { dst: evar, class: exc_class });
                self.scopes.push(HashMap::new());
                self.declare(catch_name, evar, exc_ty);
                for s in &handler.stmts {
                    self.lower_stmt(s)?;
                }
                self.scopes.pop();
                self.terminate(Terminator::Goto(join));
                self.cur = join;
            }
        }
        Ok(())
    }

    // ---- expressions ----

    fn lower_expr(&mut self, e: &Expr) -> Result<(Var, TypeId), ParseError> {
        match e {
            Expr::Int(n) => {
                let ty = self.program.types.int();
                let v = self.fresh(ty);
                self.emit(Inst::Const { dst: v, value: ConstValue::Int(*n) });
                Ok((v, ty))
            }
            Expr::Bool(b) => {
                let ty = self.program.types.boolean();
                let v = self.fresh(ty);
                self.emit(Inst::Const { dst: v, value: ConstValue::Bool(*b) });
                Ok((v, ty))
            }
            Expr::Str(s) => {
                let ty = self.program.types.string();
                let v = self.fresh(ty);
                self.emit(Inst::Const { dst: v, value: ConstValue::Str(s.clone()) });
                Ok((v, ty))
            }
            Expr::Null => {
                let ty = self.program.types.null();
                let v = self.fresh(ty);
                self.emit(Inst::Const { dst: v, value: ConstValue::Null });
                Ok((v, ty))
            }
            Expr::This(line) => {
                if self.is_static {
                    return Err(ParseError {
                        msg: "`this` in static method".into(),
                        line: *line,
                        col: 0,
                    });
                }
                Ok((Var(0), self.program.types.class(self.class)))
            }
            Expr::Var(name, line) => self.lookup(name).ok_or(ParseError {
                msg: format!("unknown variable `{name}`"),
                line: *line,
                col: 0,
            }),
            Expr::Field { base, name, line } => {
                // `arr.length` → opaque int.
                if name == "length" {
                    let (b, bty) = self.lower_expr(base)?;
                    if matches!(self.program.types.resolve(bty), Type::Array(_)) {
                        let ty = self.program.types.int();
                        let v = self.fresh(ty);
                        let _ = b;
                        self.emit(Inst::Const { dst: v, value: ConstValue::Int(0) });
                        return Ok((v, ty));
                    }
                }
                match self.static_class_of(base) {
                    Some(cid) => {
                        let f = self.resolve_field(cid, name, *line)?;
                        let ty = self.program.field(f).ty;
                        let v = self.fresh(ty);
                        self.emit(Inst::StaticLoad { dst: v, field: f });
                        Ok((v, ty))
                    }
                    None => {
                        let (b, bty) = self.lower_expr(base)?;
                        let f = self.field_on(bty, name, *line)?;
                        let ty = self.program.field(f).ty;
                        let v = self.fresh(ty);
                        self.emit(Inst::Load { dst: v, base: b, field: f });
                        Ok((v, ty))
                    }
                }
            }
            Expr::Index { base, index } => {
                let (b, bty) = self.lower_expr(base)?;
                let (idx, _) = self.lower_expr(index)?;
                let elem_ty = match self.program.types.resolve(bty) {
                    Type::Array(e) => e,
                    _ => self.object_type(),
                };
                let v = self.fresh(elem_ty);
                self.emit(Inst::ArrayLoad { dst: v, base: b, index: Some(idx) });
                Ok((v, elem_ty))
            }
            Expr::Call { base, name, args, line } => self.lower_call(base, name, args, *line),
            Expr::New { class, args, line } => {
                if class == "String" {
                    // `new String(x)` is a copy of the string-carrier value.
                    if let Some(a0) = args.first() {
                        let (src, _) = self.lower_expr(a0)?;
                        let ty = self.program.types.string();
                        let v = self.fresh(ty);
                        self.emit(Inst::Assign { dst: v, src, filter: None });
                        return Ok((v, ty));
                    }
                    let ty = self.program.types.string();
                    let v = self.fresh(ty);
                    self.emit(Inst::Const { dst: v, value: ConstValue::Str(String::new()) });
                    return Ok((v, ty));
                }
                let cid = resolve_class(self.program, class, *line)?;
                let ty = self.program.types.class(cid);
                let v = self.fresh(ty);
                self.emit(Inst::New { dst: v, class: cid });
                // Find a constructor with matching arity in the chain.
                let mut lowered = Vec::with_capacity(args.len());
                for a in args {
                    lowered.push(self.lower_expr(a)?.0);
                }
                if let Some(init) = self.find_ctor(cid, args.len()) {
                    self.emit(Inst::Call {
                        dst: None,
                        target: CallTarget::Special(init),
                        recv: Some(v),
                        args: lowered,
                    });
                } else if !args.is_empty() {
                    return Err(ParseError {
                        msg: format!("no {}-ary constructor on `{class}`", args.len()),
                        line: *line,
                        col: 0,
                    });
                }
                Ok((v, ty))
            }
            Expr::NewArray { elem, init, line } => {
                let elem_ty = resolve_type(self.program, elem, *line)?;
                let arr_ty = self.program.types.array(elem_ty);
                let v = self.fresh(arr_ty);
                self.emit(Inst::NewArray { dst: v, elem: elem_ty });
                for (pos, e) in init.iter().enumerate() {
                    let (src, _) = self.lower_expr(e)?;
                    let ity = self.program.types.int();
                    let iv = self.fresh(ity);
                    self.emit(Inst::Const { dst: iv, value: ConstValue::Int(pos as i64) });
                    self.emit(Inst::ArrayStore { base: v, index: Some(iv), src });
                }
                Ok((v, arr_ty))
            }
            Expr::Binary { op, lhs, rhs } => {
                let (l, lt) = self.lower_expr(lhs)?;
                let (r, rt) = self.lower_expr(rhs)?;
                let str_ty = self.program.types.string();
                let (irop, ty) = match op {
                    AstBinOp::Plus if lt == str_ty || rt == str_ty => (BinOp::Concat, str_ty),
                    AstBinOp::Plus => (BinOp::Add, self.program.types.int()),
                    AstBinOp::Minus => (BinOp::Sub, self.program.types.int()),
                    AstBinOp::Star => (BinOp::Mul, self.program.types.int()),
                    AstBinOp::EqEq => (BinOp::Eq, self.program.types.boolean()),
                    AstBinOp::NotEq => (BinOp::Ne, self.program.types.boolean()),
                    AstBinOp::Lt => (BinOp::Lt, self.program.types.boolean()),
                    AstBinOp::Gt => (BinOp::Gt, self.program.types.boolean()),
                    AstBinOp::AndAnd => (BinOp::And, self.program.types.boolean()),
                    AstBinOp::OrOr => (BinOp::Or, self.program.types.boolean()),
                };
                let v = self.fresh(ty);
                self.emit(Inst::Binary { dst: v, op: irop, lhs: l, rhs: r });
                Ok((v, ty))
            }
            Expr::Not(inner) => {
                let (x, _) = self.lower_expr(inner)?;
                let bty = self.program.types.boolean();
                let f = self.fresh(bty);
                self.emit(Inst::Const { dst: f, value: ConstValue::Bool(false) });
                let v = self.fresh(bty);
                self.emit(Inst::Binary { dst: v, op: BinOp::Eq, lhs: x, rhs: f });
                Ok((v, bty))
            }
            Expr::Cast { ty, expr, line } => {
                let (src, _) = self.lower_expr(expr)?;
                let tyid = resolve_type(self.program, ty, *line)?;
                let v = self.fresh(tyid);
                let filter = match self.program.types.resolve(tyid) {
                    Type::Class(c) => Some(Filter::InstanceOf(c)),
                    _ => None,
                };
                self.emit(Inst::Assign { dst: v, src, filter });
                Ok((v, tyid))
            }
        }
    }

    fn lower_call(
        &mut self,
        base: &Option<Box<Expr>>,
        name: &str,
        args: &[Expr],
        line: u32,
    ) -> Result<(Var, TypeId), ParseError> {
        // Static call through a class name?
        if let Some(b) = base {
            if let Some(cid) = self.static_class_of(b) {
                let mid = self
                    .program
                    .method_by_name(cid, name)
                    .filter(|&m| self.program.method(m).params.len() == args.len())
                    .ok_or(ParseError {
                        msg: format!(
                            "no static method `{}.{name}/{}`",
                            self.program.class(cid).name,
                            args.len()
                        ),
                        line,
                        col: 0,
                    })?;
                if !self.program.method(mid).is_static {
                    return Err(ParseError {
                        msg: format!("`{name}` is not static"),
                        line,
                        col: 0,
                    });
                }
                let mut lowered = Vec::with_capacity(args.len());
                for a in args {
                    lowered.push(self.lower_expr(a)?.0);
                }
                let ret = self.program.method(mid).ret;
                let dst = self.call_dst(ret);
                self.emit(Inst::Call {
                    dst,
                    target: CallTarget::Static(mid),
                    recv: None,
                    args: lowered,
                });
                return Ok((dst.unwrap_or(Var(0)), ret));
            }
        }
        // Receiver expression (explicit base or implicit `this`).
        let (recv, recv_ty) = match base {
            Some(b) => self.lower_expr(b)?,
            None => {
                // Unqualified: method on the current class (static or not).
                if let Some(mid) = self
                    .program
                    .method_by_name(self.class, name)
                    .filter(|&m| self.program.method(m).params.len() == args.len())
                {
                    if self.program.method(mid).is_static {
                        let mut lowered = Vec::with_capacity(args.len());
                        for a in args {
                            lowered.push(self.lower_expr(a)?.0);
                        }
                        let ret = self.program.method(mid).ret;
                        let dst = self.call_dst(ret);
                        self.emit(Inst::Call {
                            dst,
                            target: CallTarget::Static(mid),
                            recv: None,
                            args: lowered,
                        });
                        return Ok((dst.unwrap_or(Var(0)), ret));
                    }
                }
                if self.is_static {
                    return Err(ParseError {
                        msg: format!("unqualified call `{name}` in static method"),
                        line,
                        col: 0,
                    });
                }
                (Var(0), self.program.types.class(self.class))
            }
        };
        let mut lowered = Vec::with_capacity(args.len());
        for a in args {
            lowered.push(self.lower_expr(a)?.0);
        }
        let sel = self.program.selector(name, args.len());
        // Determine a return type from the static receiver type when
        // possible, else from any program method with this selector.
        let ret = self
            .program
            .types
            .resolve(recv_ty)
            .as_class()
            .and_then(|c| self.program.method_by_name(c, name))
            .filter(|&m| self.program.method(m).params.len() == args.len())
            .map(|m| self.program.method(m).ret)
            .or_else(|| {
                self.program
                    .iter_methods()
                    .find(|(_, m)| m.name == name && m.params.len() == args.len())
                    .map(|(_, m)| m.ret)
            })
            .unwrap_or_else(|| self.object_type());
        let dst = self.call_dst(ret);
        self.emit(Inst::Call {
            dst,
            target: CallTarget::Virtual(sel),
            recv: Some(recv),
            args: lowered,
        });
        Ok((dst.unwrap_or(Var(0)), ret))
    }

    fn call_dst(&mut self, ret: TypeId) -> Option<Var> {
        if ret == self.program.types.void() {
            None
        } else {
            Some(self.fresh(ret))
        }
    }

    // ---- helpers ----

    /// If `e` is a bare identifier naming a class (and not shadowed by a
    /// local), returns that class: static-access position.
    fn static_class_of(&self, e: &Expr) -> Option<ClassId> {
        match e {
            Expr::Var(name, _) if self.lookup(name).is_none() => self.program.class_by_name(name),
            _ => None,
        }
    }

    fn resolve_field(&self, class: ClassId, name: &str, line: u32) -> Result<FieldId, ParseError> {
        self.program.field_by_name(class, name).ok_or(ParseError {
            msg: format!("no field `{name}` on `{}`", self.program.class(class).name),
            line,
            col: 0,
        })
    }

    fn field_on(&self, base_ty: TypeId, name: &str, line: u32) -> Result<FieldId, ParseError> {
        match self.program.types.resolve(base_ty) {
            Type::Class(c) => self.resolve_field(c, name, line),
            other => Err(ParseError {
                msg: format!("field access `{name}` on non-class type {other:?}"),
                line,
                col: 0,
            }),
        }
    }

    fn find_ctor(&self, class: ClassId, arity: usize) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(m) = self.program.class(c).methods.iter().copied().find(|&m| {
                let meth = self.program.method(m);
                meth.name == "<init>" && meth.params.len() == arity
            }) {
                return Some(m);
            }
            cur = self.program.class(c).superclass;
        }
        None
    }

    fn object_type(&mut self) -> TypeId {
        let obj = self.program.class_by_name("Object").expect("Object exists");
        self.program.types.class(obj)
    }

    /// If `e` is a bare read of a variable with an active reflective
    /// narrowing fact, produce the corresponding filter.
    fn narrow_filter_for(&self, e: &Expr) -> Option<Filter> {
        if let Expr::Var(name, _) = e {
            for (var, mname) in self.narrows.iter().rev() {
                if var == name {
                    return Some(Filter::MethodNameEquals(mname.clone()));
                }
            }
        }
        None
    }
}

fn default_const(program: &Program, ty: TypeId) -> ConstValue {
    match program.types.resolve(ty) {
        Type::Int => ConstValue::Int(0),
        Type::Boolean => ConstValue::Bool(false),
        Type::Str => ConstValue::Str(String::new()),
        _ => ConstValue::Null,
    }
}

/// Recognizes the reflective narrowing idiom in an `if` condition:
/// `x.getName().equals("m")` or `x.getName() == "m"`, returning
/// `(local name, method name)`.
fn narrow_pattern(cond: &Expr) -> Option<(String, String)> {
    fn get_name_recv(e: &Expr) -> Option<String> {
        if let Expr::Call { base: Some(b), name, args, .. } = e {
            if name == "getName" && args.is_empty() {
                if let Expr::Var(v, _) = &**b {
                    return Some(v.clone());
                }
            }
        }
        None
    }
    match cond {
        Expr::Call { base: Some(b), name, args, .. } if name == "equals" && args.len() == 1 => {
            let v = get_name_recv(b)?;
            if let Expr::Str(s) = &args[0] {
                return Some((v, s.clone()));
            }
            None
        }
        Expr::Binary { op: AstBinOp::EqEq, lhs, rhs } => {
            let v = get_name_recv(lhs)?;
            if let Expr::Str(s) = &**rhs {
                return Some((v, s.clone()));
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower_src(src: &str) -> Program {
        let mut p = crate::stdlib::stdlib_program();
        let ast = parse(src).unwrap();
        lower(&mut p, &ast).unwrap();
        p
    }

    #[test]
    fn lowers_simple_method() {
        let p = lower_src(
            r#"
            class A {
                field String s;
                method String get() { return this.s; }
            }
            "#,
        );
        let a = p.class_by_name("A").unwrap();
        let m = p.method_by_name(a, "get").unwrap();
        let body = p.method(m).body().unwrap();
        assert!(matches!(body.blocks[0].insts[0], Inst::Load { .. }));
        assert!(matches!(body.blocks[0].term, Terminator::Return(Some(_))));
    }

    #[test]
    fn constructor_call_lowered_as_special() {
        let p = lower_src(
            r#"
            class Box {
                field String v;
                ctor (String v) { this.v = v; }
            }
            class Use {
                method Box mk(String s) { return new Box(s); }
            }
            "#,
        );
        let u = p.class_by_name("Use").unwrap();
        let m = p.method_by_name(u, "mk").unwrap();
        let body = p.method(m).body().unwrap();
        let has_special = body
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Call { target: CallTarget::Special(_), .. }));
        assert!(has_special, "constructor should lower to a Special call");
    }

    #[test]
    fn cast_produces_instanceof_filter() {
        let p = lower_src(
            r#"
            class Widget { }
            class C {
                method Widget f(Object o) { return (Widget) o; }
            }
            "#,
        );
        let c = p.class_by_name("C").unwrap();
        let m = p.method_by_name(c, "f").unwrap();
        let body = p.method(m).body().unwrap();
        let widget = p.class_by_name("Widget").unwrap();
        let found = body.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(i, Inst::Assign { filter: Some(Filter::InstanceOf(w)), .. } if *w == widget)
        });
        assert!(found, "cast should carry an InstanceOf filter");
    }

    #[test]
    fn reflective_narrowing_filter_attached() {
        let p = lower_src(
            r#"
            class C {
                method void pick(Method m) {
                    Method chosen = null;
                    if (m.getName().equals("id")) { chosen = m; }
                }
            }
            "#,
        );
        let c = p.class_by_name("C").unwrap();
        let m = p.method_by_name(c, "pick").unwrap();
        let body = p.method(m).body().unwrap();
        let found = body.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::Assign { filter: Some(Filter::MethodNameEquals(n)), .. } if n == "id"
            )
        });
        assert!(found, "narrowing filter expected, body: {body:#?}");
    }

    #[test]
    fn try_catch_sets_handler_and_catchbind() {
        let p = lower_src(
            r#"
            class C {
                method void f() {
                    try { this.g(); } catch (Exception e) { this.h(e); }
                }
                method void g() { }
                method void h(Exception e) { }
            }
            "#,
        );
        let c = p.class_by_name("C").unwrap();
        let m = p.method_by_name(c, "f").unwrap();
        let body = p.method(m).body().unwrap();
        let has_bind =
            body.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(i, Inst::CatchBind { .. }));
        assert!(has_bind);
        let protected_has_handler =
            body.blocks.iter().any(|b| b.handler.is_some() && b.insts.iter().any(Inst::is_call));
        assert!(protected_has_handler, "protected call should sit in a handled block");
    }

    #[test]
    fn string_concat_lowered() {
        let p = lower_src(
            r#"
            class C { method String f(String a, int b) { return a + b; } }
            "#,
        );
        let c = p.class_by_name("C").unwrap();
        let m = p.method_by_name(c, "f").unwrap();
        let body = p.method(m).body().unwrap();
        let concat = body
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Binary { op: BinOp::Concat, .. }));
        assert!(concat);
    }

    #[test]
    fn static_call_via_class_name() {
        let p = lower_src(
            r#"
            class Util {
                static method String id(String s) { return s; }
            }
            class C { method String f(String s) { return Util.id(s); } }
            "#,
        );
        let c = p.class_by_name("C").unwrap();
        let m = p.method_by_name(c, "f").unwrap();
        let body = p.method(m).body().unwrap();
        let is_static = body
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Call { target: CallTarget::Static(_), .. }));
        assert!(is_static);
    }

    #[test]
    fn unknown_variable_is_error() {
        let mut p = crate::stdlib::stdlib_program();
        let ast = parse("class C { method void f() { x = 1; } }").unwrap();
        let err = lower(&mut p, &ast).unwrap_err();
        assert!(err.msg.contains("unknown variable"), "{err}");
    }

    #[test]
    fn while_produces_loop_cfg() {
        let p = lower_src(
            r#"
            class C {
                method int f(int n) {
                    int x = 0;
                    while (n > 0) { x = x + 1; n = n - 1; }
                    return x;
                }
            }
            "#,
        );
        let c = p.class_by_name("C").unwrap();
        let m = p.method_by_name(c, "f").unwrap();
        let body = p.method(m).body().unwrap();
        let cfg = crate::cfg::Cfg::build(body);
        // Some block must have a back edge to an earlier block.
        let has_back_edge = cfg.rpo.iter().any(|&b| {
            cfg.succs[b.index()].iter().any(|s| cfg.rpo_pos[s.index()] <= cfg.rpo_pos[b.index()])
        });
        assert!(has_back_edge, "loop should create a back edge");
    }
}
