//! Frontend fuzzing: the lexer and parser must never panic, whatever the
//! input; valid programs must survive the full pipeline with valid IR.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: lexing/parsing may fail, but never panic.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = jir::parser::parse(&input);
    }

    /// Token soup built from language fragments: same requirement, but the
    /// inputs get much deeper into the parser.
    #[test]
    fn parser_survives_token_soup(
        pieces in proptest::collection::vec(
            prop_oneof![
                Just("class"), Just("interface"), Just("method"), Just("field"),
                Just("ctor"), Just("static"), Just("if"), Just("else"),
                Just("while"), Just("for"), Just("return"), Just("throw"),
                Just("try"), Just("catch"), Just("new"), Just("this"),
                Just("X"), Just("y"), Just("String"), Just("int"),
                Just("("), Just(")"), Just("{"), Just("}"), Just("["), Just("]"),
                Just(";"), Just(","), Just("."), Just("="), Just("=="),
                Just("+"), Just("\"s\""), Just("42"), Just("null"),
            ],
            0..60,
        )
    ) {
        let input = pieces.join(" ");
        let _ = jir::parser::parse(&input);
    }

    /// Structured random programs: always parse, lower, expand, and convert
    /// to valid SSA.
    #[test]
    fn generated_programs_build_valid_ir(
        nclasses in 1usize..4,
        nmethods in 1usize..4,
        use_loop in any::<bool>(),
        use_try in any::<bool>(),
    ) {
        let mut src = String::new();
        for c in 0..nclasses {
            src.push_str(&format!("class C{c} {{\n"));
            src.push_str("    field String data;\n    ctor () { }\n");
            for m in 0..nmethods {
                src.push_str(&format!("    method String m{m}(String s, int n) {{\n"));
                if use_loop {
                    src.push_str(
                        "        while (n > 0) { s = s + \"x\"; n = n - 1; }\n",
                    );
                }
                if use_try {
                    src.push_str(
                        "        try { this.data = s; } catch (Exception e) { s = \"err\"; }\n",
                    );
                }
                if m + 1 < nmethods {
                    src.push_str(&format!("        return this.m{}(s, n);\n", m + 1));
                } else {
                    src.push_str("        return s;\n");
                }
                src.push_str("    }\n");
            }
            src.push_str("}\n");
        }
        let program = jir::frontend::build_program(&src)
            .unwrap_or_else(|e| panic!("generated program must build: {e}\n{src}"));
        let errors = jir::validate::validate(&program);
        prop_assert!(errors.is_empty(), "invalid IR: {errors:?}");
    }
}
