//! Property tests for the SSA/dominator substrate: random well-formed
//! CFGs with random straight-line code must convert to valid SSA.

use proptest::prelude::*;

use jir::cfg::Cfg;
use jir::dom::DomTree;
use jir::inst::{BinOp, BlockId, ConstValue, Inst, Terminator, Var};
use jir::method::{BasicBlock, Body};
use jir::ssa::{def_sites, to_ssa};

/// A compact description of a random body: per-block instruction choices
/// and a terminator selector.
#[derive(Clone, Debug)]
struct BodySpec {
    nblocks: usize,
    nvars: u32,
    /// (block, dst, op) triples: dst = var op var (operands derived).
    code: Vec<(usize, u32, bool)>,
    /// terminator selector per block: (kind, t1, t2)
    terms: Vec<(u8, usize, usize)>,
}

fn body_spec() -> impl Strategy<Value = BodySpec> {
    (2usize..10, 2u32..8).prop_flat_map(|(nblocks, nvars)| {
        let code = proptest::collection::vec((0..nblocks, 0..nvars, any::<bool>()), 0..24);
        let terms = proptest::collection::vec((0u8..3, 0..nblocks, 0..nblocks), nblocks);
        (Just(nblocks), Just(nvars), code, terms)
            .prop_map(|(nblocks, nvars, code, terms)| BodySpec { nblocks, nvars, code, terms })
    })
}

fn build_body(spec: &BodySpec) -> Body {
    let mut body = Body { num_vars: spec.nvars, ..Default::default() };
    body.var_types = vec![jir::TypeTable::new().int(); spec.nvars as usize];
    for b in 0..spec.nblocks {
        let mut insts = Vec::new();
        // Every block defines var 0 first so uses are never undefined on
        // at least one path.
        if b == 0 {
            for v in 0..spec.nvars {
                insts.push(Inst::Const { dst: Var(v), value: ConstValue::Int(0) });
            }
        }
        for &(cb, dst, flavor) in &spec.code {
            if cb == b {
                let lhs = Var(dst);
                let rhs = Var((dst + 1) % spec.nvars);
                if flavor {
                    insts.push(Inst::Binary { dst: Var(dst), op: BinOp::Add, lhs, rhs });
                } else {
                    insts.push(Inst::Assign { dst: Var(dst), src: rhs, filter: None });
                }
            }
        }
        let (kind, t1, t2) = spec.terms[b];
        let term = match kind {
            0 => Terminator::Return(Some(Var(0))),
            1 => Terminator::Goto(BlockId(t1 as u32)),
            _ => Terminator::If {
                cond: Var(0),
                then_bb: BlockId(t1 as u32),
                else_bb: BlockId(t2 as u32),
            },
        };
        body.blocks.push(BasicBlock { insts, term, handler: None });
    }
    body
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After SSA conversion, every register has at most one definition.
    #[test]
    fn ssa_defs_are_unique(spec in body_spec()) {
        let mut body = build_body(&spec);
        to_ssa(&mut body, 0);
        let mut seen = std::collections::HashSet::new();
        for (_, block) in body.iter_blocks() {
            for inst in &block.insts {
                if let Some(d) = inst.def() {
                    prop_assert!(seen.insert(d), "double definition of {d:?}");
                }
            }
        }
    }

    /// φ operand lists exactly mirror the block's predecessor list.
    #[test]
    fn phi_operands_match_predecessors(spec in body_spec()) {
        let mut body = build_body(&spec);
        to_ssa(&mut body, 0);
        let cfg = Cfg::build(&body);
        for (bid, block) in body.iter_blocks() {
            for inst in &block.insts {
                if let Inst::Phi { srcs, .. } = inst {
                    prop_assert_eq!(
                        srcs.len(),
                        cfg.preds[bid.index()].len(),
                        "phi arity mismatch in {:?}", bid
                    );
                    for (p, _) in srcs {
                        prop_assert!(cfg.preds[bid.index()].contains(p));
                    }
                }
            }
        }
    }

    /// Every (non-φ) use of a register is dominated by its definition.
    #[test]
    fn uses_dominated_by_defs(spec in body_spec()) {
        let mut body = build_body(&spec);
        to_ssa(&mut body, 0);
        let cfg = Cfg::build(&body);
        let dom = DomTree::build(&cfg);
        let defs = def_sites(&body);
        let mut uses = Vec::new();
        for (bid, block) in body.iter_blocks() {
            if !cfg.is_reachable(bid) {
                continue;
            }
            for (i, inst) in block.insts.iter().enumerate() {
                if matches!(inst, Inst::Phi { .. }) {
                    continue; // φ uses are at predecessor exits
                }
                uses.clear();
                inst.uses(&mut uses);
                for &u in &uses {
                    if let Some(dl) = defs[u.index()] {
                        if dl.block == bid {
                            prop_assert!(
                                (dl.idx as usize) < i,
                                "use before def within {bid:?}"
                            );
                        } else {
                            prop_assert!(
                                dom.dominates(dl.block, bid),
                                "def of {u:?} in {:?} does not dominate use in {bid:?}",
                                dl.block
                            );
                        }
                    }
                }
            }
        }
    }

    /// Dominator sanity: entry dominates every reachable block; idom is a
    /// strict dominator.
    #[test]
    fn dominator_invariants(spec in body_spec()) {
        let body = build_body(&spec);
        let cfg = Cfg::build(&body);
        let dom = DomTree::build(&cfg);
        for (bid, _) in body.iter_blocks() {
            if !cfg.is_reachable(bid) {
                continue;
            }
            prop_assert!(dom.dominates(BlockId(0), bid));
            if bid != BlockId(0) {
                let idom = dom.idom[bid.index()].expect("reachable block has idom");
                prop_assert!(dom.dominates(idom, bid));
                prop_assert!(idom != bid);
            }
        }
    }

    /// SSA conversion is idempotent on the instruction count (running the
    /// renaming again must not add φs or registers).
    #[test]
    fn ssa_structure_is_stable(spec in body_spec()) {
        let mut body = build_body(&spec);
        to_ssa(&mut body, 0);
        let insts_after: usize = body.num_insts();
        let vars_after = body.num_vars;
        prop_assert!(body.is_ssa);
        // A second conversion is a no-op because `is_ssa` bodies are
        // skipped by `program_to_ssa`; converting manually must still
        // yield a valid SSA form with unique defs.
        let mut again = body.clone();
        again.is_ssa = false;
        to_ssa(&mut again, 0);
        let mut seen = std::collections::HashSet::new();
        for (_, block) in again.iter_blocks() {
            for inst in &block.insts {
                if let Some(d) = inst.def() {
                    prop_assert!(seen.insert(d));
                }
            }
        }
        let _ = (insts_after, vars_after);
    }
}
