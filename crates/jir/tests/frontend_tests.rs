//! Frontend integration tests: parser corner cases, lowering shapes, and
//! golden checks against the jweb language reference (docs/jweb.md).

use jir::frontend::{build_program, parse_program};
use jir::inst::{BinOp, Inst, Terminator};

fn body_of<'p>(p: &'p jir::Program, class: &str, method: &str) -> &'p jir::Body {
    let c = p.class_by_name(class).unwrap();
    let m = p.method_by_name(c, method).unwrap();
    p.method(m).body().unwrap()
}

#[test]
fn comments_everywhere() {
    let p = parse_program(
        r#"
        // leading
        class C { /* inline */ method void f() { // trailing
            int x = 1; /* mid */ x = x + 1;
        } }
        "#,
    );
    assert!(p.is_ok(), "{:?}", p.err());
}

#[test]
fn string_escapes_roundtrip() {
    let p = parse_program(r#"class C { method String f() { return "a\"b\\c\nd\te"; } }"#).unwrap();
    let body = body_of(&p, "C", "f");
    let found = body.blocks.iter().flat_map(|b| &b.insts).any(|i| {
        matches!(i, Inst::Const { value: jir::ConstValue::Str(s), .. }
            if s == "a\"b\\c\nd\te")
    });
    assert!(found);
}

#[test]
fn empty_class_and_interface() {
    let p = parse_program("class A { } interface I { }").unwrap();
    assert!(p.class_by_name("A").is_some());
    let i = p.class_by_name("I").unwrap();
    assert!(p.class(i).is_interface);
}

#[test]
fn multiple_constructors_by_arity() {
    let p = parse_program(
        r#"
        class Pair {
            field String a;
            field String b;
            ctor () { }
            ctor (String a) { this.a = a; }
            ctor (String a, String b) { this.a = a; this.b = b; }
        }
        class Use {
            method Pair f() { return new Pair("x", "y"); }
            method Pair g() { return new Pair(); }
        }
        "#,
    );
    assert!(p.is_ok(), "{:?}", p.err());
}

#[test]
fn nested_blocks_scope_variables() {
    // Inner declarations shadow nothing but go out of scope.
    let err = parse_program(
        r#"
        class C {
            method void f(boolean c) {
                if (c) { int x = 1; }
                x = 2;
            }
        }
        "#,
    )
    .unwrap_err();
    assert!(err.msg.contains("unknown variable"), "{err}");
}

#[test]
fn while_with_complex_condition() {
    let p = parse_program(
        r#"
        class C {
            method int f(int a, int b) {
                int n = 0;
                while (a > 0 && b > 0 || n == 0) {
                    n = n + 1;
                    a = a - 1;
                    b = b - 1;
                }
                return n;
            }
        }
        "#,
    )
    .unwrap();
    let body = body_of(&p, "C", "f");
    let ops: Vec<BinOp> = body
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter_map(|i| match i {
            Inst::Binary { op, .. } => Some(*op),
            _ => None,
        })
        .collect();
    assert!(ops.contains(&BinOp::And));
    assert!(ops.contains(&BinOp::Or));
    assert!(ops.contains(&BinOp::Gt));
}

#[test]
fn not_operator_lowering() {
    let p = parse_program(r#"class C { method boolean f(boolean b) { return !b; } }"#).unwrap();
    let body = body_of(&p, "C", "f");
    // `!b` lowers to `b == false`.
    let eq_count = body
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| matches!(i, Inst::Binary { op: BinOp::Eq, .. }))
        .count();
    assert_eq!(eq_count, 1);
}

#[test]
fn chained_field_and_array_access() {
    let p = parse_program(
        r#"
        class Inner { field String[] items; ctor () { } }
        class Outer { field Inner inner; ctor () { } }
        class C {
            method String f(Outer o) {
                return o.inner.items[0];
            }
        }
        "#,
    )
    .unwrap();
    let body = body_of(&p, "C", "f");
    let loads = body
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| matches!(i, Inst::Load { .. }))
        .count();
    let aloads = body
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| matches!(i, Inst::ArrayLoad { .. }))
        .count();
    assert_eq!(loads, 2, "o.inner then .items");
    assert_eq!(aloads, 1, "[0]");
}

#[test]
fn return_in_all_branches() {
    let p = parse_program(
        r#"
        class C {
            method int f(boolean c) {
                if (c) { return 1; } else { return 2; }
            }
        }
        "#,
    )
    .unwrap();
    let body = body_of(&p, "C", "f");
    let returns =
        body.blocks.iter().filter(|b| matches!(b.term, Terminator::Return(Some(_)))).count();
    assert_eq!(returns, 2);
}

#[test]
fn void_method_fallthrough_return() {
    let p = parse_program("class C { method void f() { int x = 1; } }").unwrap();
    let body = body_of(&p, "C", "f");
    assert!(matches!(body.blocks[0].term, Terminator::Return(None)));
}

#[test]
fn full_pipeline_builds_ssa() {
    let p = build_program(
        r#"
        class C {
            method int f(int n) {
                int acc = 0;
                while (n > 0) { acc = acc + n; n = n - 1; }
                return acc;
            }
        }
        "#,
    )
    .unwrap();
    let body = body_of(&p, "C", "f");
    assert!(body.is_ssa);
    let phis =
        body.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i, Inst::Phi { .. })).count();
    assert!(phis >= 2, "acc and n need φs at the loop header, got {phis}");
}

#[test]
fn error_messages_are_positioned() {
    for (src, needle) in [
        ("class C { method void f() { int x = ; } }", "expected expression"),
        ("class C { method void f( { } }", "expected type"),
        ("class C extends Missing { }", "unknown class"),
        ("class C { method void f() { x = 2; } }", "unknown variable"),
    ] {
        let err = parse_program(src).unwrap_err();
        assert!(
            err.to_string().to_lowercase().contains(&needle.to_lowercase()),
            "source `{src}`: expected `{needle}` in `{err}`"
        );
    }
}

#[test]
fn duplicate_class_rejected() {
    let err = parse_program("class A { } class A { }").unwrap_err();
    assert!(err.msg.contains("already defined"), "{err}");
}

#[test]
fn cannot_redefine_library_class() {
    let err = parse_program("class HashMap { }").unwrap_err();
    assert!(err.msg.contains("already defined"), "{err}");
}

#[test]
fn pretty_printer_covers_all_instructions() {
    let p = build_program(
        r#"
        class Box { field Object v; ctor (Object v) { this.v = v; } }
        class C extends HttpServlet {
            static field String tag;
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String s = req.getParameter("q");
                C.tag = s;
                String t = C.tag;
                Box b = new Box(s);
                Object o = b.v;
                Object[] arr = new Object[] { o };
                Object first = arr[0];
                HashMap m = new HashMap();
                m.put("k", first);
                Object got = m.get("k");
                try { this.boom(); } catch (Exception e) { resp.getWriter().println(e); }
                resp.getWriter().println(s + "!");
            }
            method void boom() { throw new RuntimeException("x"); }
        }
        "#,
    )
    .unwrap();
    let c = p.class_by_name("C").unwrap();
    let m = p.method_by_name(c, "doGet").unwrap();
    let text = jir::pretty::method_to_string(&p, m);
    for needle in ["= const", "new Box", "select(", "catch", "C.tag", "[*]"] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}
