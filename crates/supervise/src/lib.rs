//! Cooperative supervision for long-running analyses.
//!
//! A [`Supervisor`] is a cheap, cloneable handle bundling a cancellation
//! token, an optional wall-clock deadline, and optional step/memory
//! meters — all pure `std` atomics, no extra threads. Analysis fixpoint
//! loops call [`Supervisor::check`] at their loop heads; the call is a
//! relaxed atomic load plus a counter bump, with the (slightly more
//! expensive) `Instant::now()` deadline probe sampled once every
//! [`DEADLINE_SAMPLE`] steps. When a check trips, the loop unwinds
//! *cooperatively*: it stops taking new work, keeps whatever partial
//! results it has already produced, and reports the
//! [`InterruptReason`] upward so the driver can degrade instead of fail
//! (TAJ §6: "degrade precision, don't fail").
//!
//! The `taj_failpoints` feature adds a deterministic fault-injection
//! registry (see [`failpoints`]): named sites — every `check()` call is
//! one — can be programmed to trip a budget, cancel, panic, or delay
//! after a fixed number of hits, letting tests exercise every
//! degradation edge without tuning magic budget numbers. Default builds
//! compile the registry out entirely.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many `check()` calls pass between wall-clock deadline probes.
/// Small enough that "cancel within one check interval" is well under a
/// millisecond of analysis work; large enough that `Instant::now()`
/// stays off the hot path.
pub const DEADLINE_SAMPLE: u64 = 64;

/// Why a supervised loop stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InterruptReason {
    /// Explicit cancellation (e.g. a daemon client timed out or hung up).
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
    /// The step meter exceeded its budget.
    StepBudget,
    /// The memory meter exceeded its budget.
    MemBudget,
}

impl InterruptReason {
    /// Budget-class interrupts are *deterministic* resource exhaustion:
    /// the degradation ladder may retry a cheaper algorithm. Deadline and
    /// cancellation are time-dependent: the driver delivers whatever
    /// partial results exist and stops.
    pub fn is_budget(self) -> bool {
        matches!(self, InterruptReason::StepBudget | InterruptReason::MemBudget)
    }

    /// Stable string form used in reports and counters.
    pub fn as_str(self) -> &'static str {
        match self {
            InterruptReason::Cancelled => "cancelled",
            InterruptReason::Deadline => "deadline",
            InterruptReason::StepBudget => "step_budget",
            InterruptReason::MemBudget => "mem_budget",
        }
    }
}

/// Shared supervision handle. Cloning is cheap (two `Arc` bumps); clones
/// observe the same cancellation token and meters, so cancelling any
/// clone stops every loop holding one.
#[derive(Clone, Debug)]
pub struct Supervisor {
    cancel: Arc<AtomicBool>,
    steps: Arc<AtomicU64>,
    mem: Arc<AtomicU64>,
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    max_mem: Option<u64>,
}

impl Default for Supervisor {
    fn default() -> Supervisor {
        Supervisor::new()
    }
}

impl Supervisor {
    /// An unbounded supervisor: never trips unless [`cancel`ed](Self::cancel)
    /// (or a failpoint fires). This is the default threaded through every
    /// analysis entry point, so unsupervised callers pay only the atomic
    /// loads.
    pub fn new() -> Supervisor {
        Supervisor {
            cancel: Arc::new(AtomicBool::new(false)),
            steps: Arc::new(AtomicU64::new(0)),
            mem: Arc::new(AtomicU64::new(0)),
            deadline: None,
            max_steps: None,
            max_mem: None,
        }
    }

    /// Returns a copy with an absolute wall-clock deadline.
    pub fn with_deadline_at(mut self, at: Instant) -> Supervisor {
        self.deadline = Some(at);
        self
    }

    /// Returns a copy whose deadline is `budget` from now.
    pub fn with_deadline(self, budget: Duration) -> Supervisor {
        self.with_deadline_at(Instant::now() + budget)
    }

    /// Returns a copy with a step-meter budget (total `check()` calls).
    pub fn with_max_steps(mut self, max: u64) -> Supervisor {
        self.max_steps = Some(max);
        self
    }

    /// Returns a copy with a memory-meter budget (units are the
    /// caller's — the meter only compares charges against the cap).
    pub fn with_max_mem(mut self, max: u64) -> Supervisor {
        self.max_mem = Some(max);
        self
    }

    /// Flips the shared cancellation token. Every loop holding a clone
    /// observes it at its next `check()`.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether the shared cancellation token is set.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Total `check()` calls across all clones.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Adds to the shared memory meter (no check; the next `check()`
    /// observes it).
    pub fn charge_mem(&self, units: u64) {
        self.mem.fetch_add(units, Ordering::Relaxed);
    }

    /// Current value of the shared memory meter (caller-defined units),
    /// across all clones. Tracing snapshots this next to [`steps`](Self::steps).
    pub fn mem(&self) -> u64 {
        self.mem.load(Ordering::Relaxed)
    }

    /// Whether the wall-clock deadline (if any) has already passed.
    pub fn deadline_expired(&self) -> bool {
        matches!(self.deadline, Some(at) if Instant::now() >= at)
    }

    /// A supervisor for *delivering* partial results after an interrupt:
    /// shares the cancellation token (an explicit cancel still stops
    /// everything) but drops the deadline and meters, so the cheap
    /// finishing work — e.g. running phase 2 over a deadline-truncated
    /// phase 1 — is not immediately re-interrupted.
    pub fn finishing(&self) -> Supervisor {
        Supervisor {
            cancel: Arc::clone(&self.cancel),
            steps: Arc::new(AtomicU64::new(0)),
            mem: Arc::new(AtomicU64::new(0)),
            deadline: None,
            max_steps: None,
            max_mem: None,
        }
    }

    /// A handle for retrying at a cheaper degradation rung: same
    /// cancellation token and deadline, but fresh step/memory meters —
    /// the budget that tripped was the *rung's* budget, and the cheaper
    /// algorithm deserves a clean allowance under the same wall clock.
    pub fn fresh_meters(&self) -> Supervisor {
        Supervisor {
            cancel: Arc::clone(&self.cancel),
            steps: Arc::new(AtomicU64::new(0)),
            mem: Arc::new(AtomicU64::new(0)),
            deadline: self.deadline,
            max_steps: self.max_steps,
            max_mem: self.max_mem,
        }
    }

    /// The cooperative check, called at fixpoint-loop heads. `site` names
    /// the call site for fault injection (and costs nothing in default
    /// builds).
    ///
    /// # Errors
    /// The [`InterruptReason`] that tripped; the caller should stop
    /// taking new work and return its partial result.
    #[inline]
    pub fn check(&self, site: &str) -> Result<(), InterruptReason> {
        #[cfg(feature = "taj_failpoints")]
        if let Some(reason) = failpoints::eval(site) {
            if reason == InterruptReason::Cancelled {
                self.cancel();
            }
            return Err(reason);
        }
        #[cfg(not(feature = "taj_failpoints"))]
        let _ = site;

        if self.cancel.load(Ordering::Relaxed) {
            return Err(InterruptReason::Cancelled);
        }
        let n = self.steps.fetch_add(1, Ordering::Relaxed);
        if let Some(max) = self.max_steps {
            if n >= max {
                return Err(InterruptReason::StepBudget);
            }
        }
        if let Some(max) = self.max_mem {
            if self.mem.load(Ordering::Relaxed) > max {
                return Err(InterruptReason::MemBudget);
            }
        }
        if self.deadline.is_some() && n.is_multiple_of(DEADLINE_SAMPLE) && self.deadline_expired() {
            return Err(InterruptReason::Deadline);
        }
        Ok(())
    }
}

/// Whether this build was compiled with the `taj_failpoints` feature.
/// CI asserts this is `false` for default builds.
pub const fn failpoints_enabled() -> bool {
    cfg!(feature = "taj_failpoints")
}

/// Failpoint hook for non-loop sites (service I/O boundaries). In
/// default builds this inlines to `None`.
#[inline]
pub fn fail_hook(site: &str) -> Option<InterruptReason> {
    #[cfg(feature = "taj_failpoints")]
    {
        failpoints::eval(site)
    }
    #[cfg(not(feature = "taj_failpoints"))]
    {
        let _ = site;
        None
    }
}

/// Deterministic fault injection, compiled only under `taj_failpoints`.
///
/// Sites are named strings; every [`Supervisor::check`] call is a site,
/// plus the explicit [`fail_hook`] sites at service I/O boundaries. A
/// configured site fires its action on every hit after the first
/// `after` hits — counting hits, not time, is what makes the injected
/// faults deterministic.
#[cfg(feature = "taj_failpoints")]
pub mod failpoints {
    use super::InterruptReason;
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// What a tripped failpoint does.
    #[derive(Clone, Debug)]
    pub enum FailAction {
        /// Report [`InterruptReason::Cancelled`] (and set the checking
        /// supervisor's cancellation token).
        Cancel,
        /// Report [`InterruptReason::Deadline`] without waiting for one.
        Deadline,
        /// Report [`InterruptReason::StepBudget`].
        StepBudget,
        /// Report [`InterruptReason::MemBudget`].
        MemBudget,
        /// Panic with the given message (exercises `catch_unwind` paths).
        Panic(String),
        /// Sleep this many milliseconds, then continue normally.
        Delay(u64),
    }

    struct Point {
        action: FailAction,
        after: u64,
        hits: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Point>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Point>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock(m: &Mutex<HashMap<String, Point>>) -> MutexGuard<'_, HashMap<String, Point>> {
        // A panicking failpoint (that is the point of `Panic`) poisons
        // the registry mutex; the map itself is always consistent.
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Programs `site` to fire `action` on every hit.
    pub fn configure(site: &str, action: FailAction) {
        configure_after(site, action, 0);
    }

    /// Programs `site` to pass through its first `after` hits, then fire
    /// `action` on every later hit.
    pub fn configure_after(site: &str, action: FailAction, after: u64) {
        lock(registry()).insert(site.to_string(), Point { action, after, hits: 0 });
    }

    /// Removes the program for `site`, if any.
    pub fn remove(site: &str) {
        lock(registry()).remove(site);
    }

    /// Removes every programmed failpoint.
    pub fn clear() {
        lock(registry()).clear();
    }

    /// How many times `site` has been evaluated since it was programmed.
    pub fn hits(site: &str) -> u64 {
        lock(registry()).get(site).map_or(0, |p| p.hits)
    }

    /// Evaluates `site`: counts the hit and returns the interrupt to
    /// inject, if its action fires. Called by [`super::Supervisor::check`]
    /// and [`super::fail_hook`].
    pub fn eval(site: &str) -> Option<InterruptReason> {
        let action = {
            let mut map = lock(registry());
            let point = map.get_mut(site)?;
            point.hits += 1;
            if point.hits <= point.after {
                return None;
            }
            point.action.clone()
            // registry lock dropped here: panicking/sleeping while
            // holding it would wedge every other site.
        };
        match action {
            FailAction::Cancel => Some(InterruptReason::Cancelled),
            FailAction::Deadline => Some(InterruptReason::Deadline),
            FailAction::StepBudget => Some(InterruptReason::StepBudget),
            FailAction::MemBudget => Some(InterruptReason::MemBudget),
            FailAction::Panic(msg) => panic!("failpoint `{site}`: {msg}"),
            FailAction::Delay(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                None
            }
        }
    }

    /// RAII guard serializing failpoint tests: the registry is global, so
    /// concurrent tests would trip each other's programs. `setup()` takes
    /// a process-wide lock and clears the registry; drop clears it again.
    pub struct FailScenario {
        _guard: MutexGuard<'static, ()>,
    }

    impl FailScenario {
        /// Acquires the scenario lock and starts from an empty registry.
        pub fn setup() -> FailScenario {
            static SCENARIO: Mutex<()> = Mutex::new(());
            let guard = SCENARIO.lock().unwrap_or_else(|e| e.into_inner());
            clear();
            FailScenario { _guard: guard }
        }
    }

    impl Drop for FailScenario {
        fn drop(&mut self) {
            clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_supervisor_never_trips() {
        let sup = Supervisor::new();
        for _ in 0..10_000 {
            assert_eq!(sup.check("test.loop"), Ok(()));
        }
    }

    #[test]
    fn cancel_is_observed_by_clones() {
        let sup = Supervisor::new();
        let clone = sup.clone();
        assert_eq!(clone.check("test.loop"), Ok(()));
        sup.cancel();
        assert_eq!(clone.check("test.loop"), Err(InterruptReason::Cancelled));
        assert!(sup.is_cancelled() && clone.is_cancelled());
    }

    #[test]
    fn step_budget_trips_deterministically() {
        let sup = Supervisor::new().with_max_steps(10);
        let mut ok = 0u64;
        let reason = loop {
            match sup.check("test.loop") {
                Ok(()) => ok += 1,
                Err(r) => break r,
            }
        };
        assert_eq!(reason, InterruptReason::StepBudget);
        assert_eq!(ok, 10);
    }

    #[test]
    fn mem_budget_trips_after_charge() {
        let sup = Supervisor::new().with_max_mem(100);
        assert_eq!(sup.check("test.loop"), Ok(()));
        sup.charge_mem(101);
        assert_eq!(sup.check("test.loop"), Err(InterruptReason::MemBudget));
    }

    #[test]
    fn expired_deadline_trips_within_sample_interval() {
        let sup = Supervisor::new().with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        let mut checks = 0u64;
        let reason = loop {
            match sup.check("test.loop") {
                Ok(()) => checks += 1,
                Err(r) => break r,
            }
        };
        assert_eq!(reason, InterruptReason::Deadline);
        assert!(checks <= DEADLINE_SAMPLE, "tripped after {checks} checks");
    }

    #[test]
    fn finishing_drops_deadline_but_keeps_cancel() {
        let sup = Supervisor::new().with_deadline(Duration::from_millis(0)).with_max_steps(1);
        std::thread::sleep(Duration::from_millis(1));
        let fin = sup.finishing();
        for _ in 0..1_000 {
            assert_eq!(fin.check("test.loop"), Ok(()));
        }
        sup.cancel();
        assert_eq!(fin.check("test.loop"), Err(InterruptReason::Cancelled));
    }

    #[test]
    fn budget_classification() {
        assert!(InterruptReason::StepBudget.is_budget());
        assert!(InterruptReason::MemBudget.is_budget());
        assert!(!InterruptReason::Deadline.is_budget());
        assert!(!InterruptReason::Cancelled.is_budget());
    }

    #[cfg(not(feature = "taj_failpoints"))]
    #[test]
    fn failpoints_disabled_by_default() {
        assert!(!failpoints_enabled());
        assert!(fail_hook("any.site").is_none());
    }

    #[cfg(feature = "taj_failpoints")]
    mod failpoint_tests {
        use super::super::failpoints::{self, FailAction, FailScenario};
        use super::super::{InterruptReason, Supervisor};

        #[test]
        fn trips_after_configured_hits() {
            let _scenario = FailScenario::setup();
            failpoints::configure_after("fp.site", FailAction::StepBudget, 3);
            let sup = Supervisor::new();
            assert_eq!(sup.check("fp.site"), Ok(()));
            assert_eq!(sup.check("fp.site"), Ok(()));
            assert_eq!(sup.check("fp.site"), Ok(()));
            assert_eq!(sup.check("fp.site"), Err(InterruptReason::StepBudget));
            assert_eq!(failpoints::hits("fp.site"), 4);
            // Other sites are unaffected.
            assert_eq!(sup.check("fp.other"), Ok(()));
        }

        #[test]
        fn cancel_action_sets_the_token() {
            let _scenario = FailScenario::setup();
            failpoints::configure("fp.cancel", FailAction::Cancel);
            let sup = Supervisor::new();
            assert_eq!(sup.check("fp.cancel"), Err(InterruptReason::Cancelled));
            assert!(sup.is_cancelled(), "failpoint cancel propagates to the token");
        }

        #[test]
        fn scenario_drop_clears_registry() {
            {
                let _scenario = FailScenario::setup();
                failpoints::configure("fp.leak", FailAction::Deadline);
            }
            let _scenario = FailScenario::setup();
            assert_eq!(Supervisor::new().check("fp.leak"), Ok(()));
        }
    }
}
