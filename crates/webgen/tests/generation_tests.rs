//! Generation robustness: all 22 Table 2 presets must produce programs
//! that parse, lower, expand, convert to SSA, and validate.

use taj_webgen::{generate, presets, Scale};

#[test]
fn all_presets_build_valid_programs_quick_scale() {
    for preset in presets() {
        let bench = generate(&preset.spec(Scale::quick()));
        let program = jir::frontend::build_program(&bench.source)
            .unwrap_or_else(|e| panic!("{}: {e}", preset.name));
        let errors = jir::validate::validate(&program);
        assert!(errors.is_empty(), "{}: invalid IR: {errors:?}", preset.name);
        assert!(
            !bench.truth.vulnerable.is_empty(),
            "{}: no vulnerable patterns seeded",
            preset.name
        );
    }
}

#[test]
fn standard_scale_sizes_track_paper_order() {
    // Relative benchmark sizes must preserve the paper's ordering for the
    // extremes.
    let sizes: Vec<(String, usize)> = presets()
        .into_iter()
        .map(|p| {
            let b = generate(&p.spec(Scale::standard()));
            (p.name.to_string(), b.stats.methods)
        })
        .collect();
    let get = |n: &str| sizes.iter().find(|(name, _)| name == n).unwrap().1;
    assert!(get("GridSphere") > get("Webgoat"));
    assert!(get("Webgoat") > get("BlueBlog"));
    assert!(get("ST") > get("I"));
    let (largest, _) = sizes.iter().max_by_key(|(_, m)| *m).unwrap();
    assert!(
        largest == "GridSphere" || largest == "ST",
        "paper's giants stay the giants, got {largest}"
    );
}

#[test]
fn ejb_descriptors_resolve_against_generated_code() {
    for preset in presets().into_iter().take(6) {
        let bench = generate(&preset.spec(Scale::quick()));
        let program = jir::frontend::parse_program(&bench.source).unwrap();
        for entry in &bench.descriptor.entries {
            assert!(
                program.class_by_name(&entry.bean_class).is_some(),
                "{}: descriptor bean `{}` missing",
                preset.name,
                entry.bean_class
            );
            assert!(
                program.class_by_name(&entry.home_interface).is_some(),
                "{}: descriptor home `{}` missing",
                preset.name,
                entry.home_interface
            );
        }
    }
}
