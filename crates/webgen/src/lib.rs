//! # taj-webgen — synthetic web-application benchmarks for taj-rs
//!
//! The paper evaluates TAJ on 22 industrial Java EE applications we cannot
//! obtain (several are anonymized IBM customer codes). This crate builds
//! the closest synthetic equivalent: a deterministic generator emitting
//! jweb web applications whose *relative* sizes track Table 2, seeded with
//! a pattern library whose per-configuration behaviour (true positives,
//! false positives, false negatives) is engineered to exercise exactly the
//! phenomena the paper's evaluation reports — see [`patterns`] for the map
//! from pattern to expected outcome, [`table2`] for the 22 presets, and
//! [`micro`] for the SecuriBench-Micro-style regression suite.

#![warn(missing_docs)]

pub mod edits;
pub mod generate;
pub mod interp;
pub mod micro;
pub mod patterns;
pub mod securibench;
pub mod table2;

pub use edits::{apply_edit, edit_chain, EditKind, EDIT_KINDS};
pub use generate::{generate, standard_mix, BenchmarkSpec, GenStats, GeneratedBenchmark};
pub use interp::{run_program, DynHit, InterpConfig};
pub use micro::{micro_suite, motivating, MicroTest};
pub use patterns::Pattern;
pub use securibench::{cases as securibench_cases, SecuriCase};
pub use table2::{presets, BenchmarkPreset, Scale};
