//! A SecuriBench-Micro-style case suite, adapted to jweb.
//!
//! Stanford SecuriBench Micro (the paper's reference \[34\], which inspired
//! its motivating example) organizes small test servlets into categories:
//! aliasing, arrays, basic, collections, data structures, factories,
//! inter-procedural, predicates, reflection, sanitizers, session, and
//! strong updates. This module reproduces that structure with exact
//! expectations for the hybrid analysis: which cases carry a real flow,
//! and which are *expected false alarms* for a flow-insensitive-heap,
//! path-insensitive analysis (the same alarms the original suite expects
//! from tools of TAJ's class).

use taj_core::{GroundTruth, IssueType};

/// One SecuriBench-style case.
#[derive(Clone, Debug)]
pub struct SecuriCase {
    /// Case name, e.g. `Basic1`.
    pub name: &'static str,
    /// Category, e.g. `basic`.
    pub category: &'static str,
    /// jweb source.
    pub source: String,
    /// Real vulnerabilities and benign-but-suspicious entries.
    pub truth: GroundTruth,
    /// `(sink class, issue)` pairs a sound but path/flow-insensitive
    /// analysis is *expected* to report although they are benign.
    pub expected_false_alarms: Vec<(String, IssueType)>,
}

fn servlet(name: &str, body: &str, extra: &str) -> String {
    format!(
        r#"
{extra}
class {name} extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
{body}
    }}
}}
"#
    )
}

struct CaseBuilder {
    cases: Vec<SecuriCase>,
}

impl CaseBuilder {
    fn add(
        &mut self,
        name: &'static str,
        category: &'static str,
        body: &str,
        extra: &str,
        vulnerable: usize,
        false_alarm: bool,
    ) {
        let source = servlet(name, body, extra);
        let mut truth = GroundTruth::default();
        if vulnerable > 0 {
            truth.add_vulnerable(name, IssueType::Xss);
        } else {
            truth.add_benign(name, IssueType::Xss);
        }
        let expected_false_alarms =
            if false_alarm { vec![(name.to_string(), IssueType::Xss)] } else { vec![] };
        self.cases.push(SecuriCase { name, category, source, truth, expected_false_alarms });
    }
}

/// Builds the full suite.
pub fn cases() -> Vec<SecuriCase> {
    let mut b = CaseBuilder { cases: Vec::new() };

    // ---- basic ----
    b.add(
        "Basic1",
        "basic",
        r#"        String s = req.getParameter("name");
        resp.getWriter().println(s);"#,
        "",
        1,
        false,
    );
    b.add(
        "Basic2",
        "basic",
        r#"        String s1 = req.getParameter("name");
        String s2 = s1;
        String s3 = s2;
        resp.getWriter().println(s3);"#,
        "",
        1,
        false,
    );
    b.add(
        "Basic3",
        "basic",
        r#"        String s = req.getParameter("name");
        resp.getWriter().println("<b>" + s + "</b>");"#,
        "",
        1,
        false,
    );
    b.add(
        "Basic4",
        "basic",
        r#"        String a = req.getParameter("a");
        String b = req.getParameter("b");
        PrintWriter w = resp.getWriter();
        w.println(a);
        w.println(b);"#,
        "",
        1,
        false,
    );
    b.add(
        "Basic5",
        "basic",
        r#"        String s = req.getParameter("name");
        String out = "default";
        if (s != "special") { out = s; }
        resp.getWriter().println(out);"#,
        "",
        1,
        false,
    );
    b.add(
        "Basic6",
        "basic",
        r#"        String s = req.getParameter("name");
        String acc = "";
        int i = 0;
        while (i < 3) { acc = acc + s; i = i + 1; }
        resp.getWriter().println(acc);"#,
        "",
        1,
        false,
    );
    b.add(
        "Basic7",
        "basic",
        r#"        String s = req.getParameter("name");
        resp.getWriter().println("static content");"#,
        "",
        0,
        false,
    );
    b.add(
        "Basic8",
        "basic",
        r#"        String s = req.getParameter("name");
        resp.getWriter().println(URLEncoder.encode(s));"#,
        "",
        0,
        false,
    );
    b.add(
        "Basic9",
        "basic",
        r#"        StringBuilder sb = new StringBuilder();
        sb.append(req.getParameter("name"));
        resp.getWriter().println(sb.toString());"#,
        "",
        1,
        false,
    );
    b.add(
        "Basic10",
        "basic",
        r#"        Basic10Holder.value = req.getParameter("name");
        String out = Basic10Holder.value;
        resp.getWriter().println(out);"#,
        "class Basic10Holder { static field String value; }",
        1,
        false,
    );

    // ---- aliasing ----
    b.add(
        "Aliasing1",
        "aliasing",
        r#"        Aliasing1Box b1 = new Aliasing1Box();
        Aliasing1Box b2 = b1;
        b1.v = req.getParameter("name");
        resp.getWriter().println(b2.v);"#,
        "class Aliasing1Box { field String v; ctor () { } }",
        1,
        false,
    );
    b.add(
        "Aliasing2",
        "aliasing",
        r#"        Aliasing2Box b1 = new Aliasing2Box();
        Aliasing2Box b2 = b1;
        b2.v = req.getParameter("name");
        resp.getWriter().println(b1.v);"#,
        "class Aliasing2Box { field String v; ctor () { } }",
        1,
        false,
    );
    b.add(
        "Aliasing3",
        "aliasing",
        r#"        Aliasing3Box dirty = new Aliasing3Box();
        Aliasing3Box clean = new Aliasing3Box();
        dirty.v = req.getParameter("name");
        resp.getWriter().println(clean.v);"#,
        "class Aliasing3Box { field String v; ctor () { } }",
        0,
        false,
    );

    // ---- arrays ----
    b.add(
        "Arrays1",
        "arrays",
        r#"        String[] a = new String[2];
        a[0] = req.getParameter("name");
        resp.getWriter().println(a[0]);"#,
        "",
        1,
        false,
    );
    b.add(
        "Arrays2",
        "arrays",
        r#"        String[] dirty = new String[2];
        String[] clean = new String[2];
        dirty[0] = req.getParameter("name");
        clean[0] = "static";
        resp.getWriter().println(clean[0]);"#,
        "",
        0,
        false,
    );
    b.add(
        "Arrays3",
        "arrays",
        // Index-insensitive modeling: slot 1 is clean at runtime, but the
        // analysis merges array contents — an expected false alarm.
        r#"        String[] a = new String[2];
        a[0] = req.getParameter("name");
        a[1] = "static";
        resp.getWriter().println(a[1]);"#,
        "",
        0,
        true,
    );

    // ---- collections ----
    b.add(
        "Collections1",
        "collections",
        r#"        ArrayList l = new ArrayList();
        l.add(req.getParameter("name"));
        resp.getWriter().println(l.get(0));"#,
        "",
        1,
        false,
    );
    b.add(
        "Collections2",
        "collections",
        r#"        HashMap m = new HashMap();
        m.put("key", req.getParameter("name"));
        resp.getWriter().println(m.get("key"));"#,
        "",
        1,
        false,
    );
    b.add(
        "Collections3",
        "collections",
        r#"        HashMap m = new HashMap();
        m.put("dirty", req.getParameter("name"));
        m.put("clean", "static");
        resp.getWriter().println(m.get("clean"));"#,
        "",
        0,
        false,
    );
    b.add(
        "Collections4",
        "collections",
        // Non-constant keys defeat the constant-key disambiguation: an
        // expected false alarm (conservative $map$* summary).
        r#"        HashMap m = new HashMap();
        String k = req.getHeader("which");
        m.put(k, req.getParameter("name"));
        resp.getWriter().println(m.get("fixed"));"#,
        "",
        0,
        true,
    );
    b.add(
        "Collections5",
        "collections",
        r#"        ArrayList l = new ArrayList();
        l.add(req.getParameter("name"));
        Iterator it = l.iterator();
        Object v = it.next();
        resp.getWriter().println(v);"#,
        "",
        1,
        false,
    );

    // ---- datastructures ----
    b.add(
        "Datastructures1",
        "datastructures",
        r#"        Datastructures1Box b = new Datastructures1Box();
        b.v = req.getParameter("name");
        resp.getWriter().println(b.v);"#,
        "class Datastructures1Box { field String v; ctor () { } }",
        1,
        false,
    );
    b.add(
        "Datastructures2",
        "datastructures",
        r#"        Datastructures2In inner = new Datastructures2In(req.getParameter("name"));
        Datastructures2Out outer = new Datastructures2Out(inner);
        resp.getWriter().println(outer);"#,
        r#"class Datastructures2In { field String s; ctor (String s) { this.s = s; } }
class Datastructures2Out { field Datastructures2In c; ctor (Datastructures2In c) { this.c = c; } }"#,
        1,
        false,
    );
    b.add(
        "Datastructures3",
        "datastructures",
        // Field sensitivity: taint in `dirty`, read of sibling `clean`.
        r#"        Datastructures3Box b = new Datastructures3Box();
        b.dirty = req.getParameter("name");
        b.clean = "static";
        resp.getWriter().println(b.clean);"#,
        "class Datastructures3Box { field String dirty; field String clean; ctor () { } }",
        0,
        false,
    );

    // ---- factories ----
    b.add(
        "Factories1",
        "factories",
        r#"        Factories1Box b = Factories1F.make();
        b.v = req.getParameter("name");
        resp.getWriter().println(b.v);"#,
        r#"class Factories1Box { field String v; ctor () { } }
class Factories1F { static method Factories1Box make() { return new Factories1Box(); } }"#,
        1,
        false,
    );
    b.add(
        "Factories2",
        "factories",
        // One allocation site serves both boxes: the site-based heap
        // abstraction merges them — expected false alarm.
        r#"        Factories2Box dirty = Factories2F.make();
        Factories2Box clean = Factories2F.make();
        dirty.v = req.getParameter("name");
        resp.getWriter().println(clean.v);"#,
        r#"class Factories2Box { field String v; ctor () { } }
class Factories2F { static method Factories2Box make() { return new Factories2Box(); } }"#,
        0,
        true,
    );

    // ---- inter-procedural ----
    b.add(
        "Inter1",
        "inter",
        r#"        String s = req.getParameter("name");
        this.render(resp, s);
    }
    method void render(HttpServletResponse resp, String s) {
        resp.getWriter().println(s);"#,
        "",
        1,
        false,
    );
    b.add(
        "Inter2",
        "inter",
        r#"        String s = this.fetch(req);
        resp.getWriter().println(s);
    }
    method String fetch(HttpServletRequest req) {
        return req.getParameter("name");"#,
        "",
        1,
        false,
    );
    b.add(
        "Inter3",
        "inter",
        r#"        String s = req.getParameter("name");
        String t = this.hop1(s);
        resp.getWriter().println(t);
    }
    method String hop1(String s) { return this.hop2(s); }
    method String hop2(String s) { return s;"#,
        "",
        1,
        false,
    );
    b.add(
        "Inter4",
        "inter",
        // The callee sanitizes: no flow.
        r#"        String s = req.getParameter("name");
        String t = this.scrub(s);
        resp.getWriter().println(t);
    }
    method String scrub(String s) { return URLEncoder.encode(s);"#,
        "",
        0,
        false,
    );

    // ---- predicates ----
    b.add(
        "Pred1",
        "pred",
        // The guard is always false at runtime; a path-insensitive
        // analysis reports the flow anyway — expected false alarm.
        r#"        String s = req.getParameter("name");
        String out = "static";
        boolean never = false;
        if (never) { out = s; }
        resp.getWriter().println(out);"#,
        "",
        0,
        true,
    );
    b.add(
        "Pred2",
        "pred",
        r#"        String s = req.getParameter("name");
        boolean always = true;
        String out = "static";
        if (always) { out = s; }
        resp.getWriter().println(out);"#,
        "",
        1,
        false,
    );

    // ---- reflection ----
    b.add(
        "Refl1",
        "refl",
        r#"        String s = req.getParameter("name");
        Class k = Class.forName("Refl1Target");
        Method m = k.getMethod("id");
        Refl1Target t = new Refl1Target();
        Object r = m.invoke(t, new Object[] { s });
        resp.getWriter().println(r);"#,
        "class Refl1Target { method String id(String x) { return x; } }",
        1,
        false,
    );
    b.add(
        "Refl2",
        "refl",
        r#"        Class k = Class.forName("Refl2Target");
        Object o = k.newInstance();
        Refl2Target t = (Refl2Target) o;
        String r = t.id(req.getParameter("name"));
        resp.getWriter().println(r);"#,
        "class Refl2Target { ctor () { } method String id(String x) { return x; } }",
        1,
        false,
    );

    // ---- sanitizers ----
    b.add(
        "Sanitizers1",
        "sanitizers",
        r#"        String s = req.getParameter("name");
        resp.getWriter().println(Encoder.encodeForHTML(s));"#,
        "",
        0,
        false,
    );
    b.add(
        "Sanitizers2",
        "sanitizers",
        // Sanitize, then concatenate raw data back in: still vulnerable.
        r#"        String s = req.getParameter("name");
        String half = Encoder.encodeForHTML(s) + s;
        resp.getWriter().println(half);"#,
        "",
        1,
        false,
    );

    // ---- session ----
    b.add(
        "Session1",
        "session",
        r#"        HttpSession session = req.getSession();
        session.setAttribute("user", req.getParameter("name"));
        Object v = session.getAttribute("user");
        resp.getWriter().println(v);"#,
        "",
        1,
        false,
    );
    b.add(
        "Session2",
        "session",
        r#"        HttpSession session = req.getSession();
        session.setAttribute("dirty", req.getParameter("name"));
        session.setAttribute("clean", "static");
        Object v = session.getAttribute("clean");
        resp.getWriter().println(v);"#,
        "",
        0,
        false,
    );

    // ---- strong updates ----
    b.add(
        "StrongUpdates1",
        "strong_updates",
        // The tainted value is overwritten before the read; the
        // flow-insensitive heap cannot see the ordering — expected false
        // alarm (this is the precision CS pays all that memory for).
        r#"        StrongUpdates1Box b = new StrongUpdates1Box();
        b.v = req.getParameter("name");
        b.v = "static";
        resp.getWriter().println(b.v);"#,
        "class StrongUpdates1Box { field String v; ctor () { } }",
        0,
        true,
    );
    b.add(
        "StrongUpdates2",
        "strong_updates",
        // Local (register) strong update: SSA gives this for free.
        r#"        String s = req.getParameter("name");
        s = "static";
        resp.getWriter().println(s);"#,
        "",
        0,
        false,
    );

    b.cases
}

/// Categories present in the suite.
pub fn categories() -> Vec<&'static str> {
    let mut cats: Vec<&'static str> = cases().iter().map(|c| c.category).collect();
    cats.dedup();
    cats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_parse() {
        for c in cases() {
            assert!(
                jir::frontend::parse_program(&c.source).is_ok(),
                "{} fails to parse:\n{}",
                c.name,
                c.source
            );
        }
    }

    #[test]
    fn suite_structure() {
        let all = cases();
        assert!(all.len() >= 30, "suite has {} cases", all.len());
        assert!(categories().len() >= 10);
        let mut names: Vec<&str> = all.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "names unique");
    }

    #[test]
    fn truth_recorded_for_every_case() {
        for c in cases() {
            assert!(
                !c.truth.vulnerable.is_empty() || !c.truth.benign.is_empty(),
                "{} has no ground truth",
                c.name
            );
        }
    }
}
