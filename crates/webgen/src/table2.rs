//! The 22 benchmark presets of Table 2, scaled ~10× down.
//!
//! Sizes (application method counts) and seeded-issue volumes are scaled
//! from Table 2 / Table 3 of the paper so that *relative* benchmark
//! difficulty is preserved: GridSphere and ST are the giants, I and
//! BlueBlog the midgets, and the multithreaded trio (BlueBlog, I, SBM)
//! carries exactly the cross-thread flows behind the paper's CS false
//! negatives (2, 1, and 2 respectively).

use crate::generate::{standard_mix, BenchmarkSpec};

/// One Table 2 row: paper-reported statistics plus our scaled parameters.
#[derive(Clone, Debug)]
pub struct BenchmarkPreset {
    /// Benchmark name (anonymized ones keep their paper letters).
    pub name: &'static str,
    /// Paper: application class count.
    pub paper_classes: usize,
    /// Paper: application method count.
    pub paper_methods: usize,
    /// Paper: total (app + libraries) method count.
    pub paper_total_methods: usize,
    /// Paper: Table 3 issue count for the unbounded hybrid run.
    pub paper_hybrid_issues: usize,
    /// Cross-thread flows to seed (the paper's CS false-negative counts).
    pub threads: usize,
    /// Whether to include bound-sensitive patterns (deep nesting, long
    /// chains) — the Webgoat-style behaviours of §7.2.
    pub hard: bool,
    /// Part of the 9 manually-classified benchmarks of Figure 4.
    pub in_figure4: bool,
}

/// All 22 presets in Table 2 order.
pub fn presets() -> Vec<BenchmarkPreset> {
    // (name, classes, app methods, total methods, hybrid issues, threads, hard, fig4)
    type Row = (&'static str, usize, usize, usize, usize, usize, bool, bool);
    let rows: [Row; 22] = [
        ("A", 43, 2057, 150339, 54, 0, false, true),
        ("B", 246, 9252, 328941, 25, 0, false, true),
        ("Blojsom", 254, 7216, 354114, 238, 0, false, false),
        ("BlueBlog", 38, 1044, 269056, 19, 2, false, true),
        ("Dlog", 268, 12957, 284808, 21, 0, false, false),
        ("Friki", 35, 1133, 116480, 60, 0, false, true),
        ("GestCV", 124, 5139, 473574, 21, 0, false, true),
        ("Ginp", 73, 2941, 277680, 67, 0, false, false),
        ("GridSphere", 676, 32134, 385609, 803, 0, false, false),
        ("I", 25, 996, 149278, 3, 1, false, true),
        ("JSPWiki", 429, 13087, 335828, 68, 0, false, false),
        ("Lutece", 467, 12398, 237137, 3, 0, false, false),
        ("MVNForum", 608, 19722, 315527, 260, 0, false, false),
        ("PersonalBlog", 38, 1644, 157794, 454, 0, false, false),
        ("Roller", 251, 9786, 246390, 650, 0, false, false),
        ("S", 100, 10965, 393204, 395, 0, false, true),
        ("SBM", 143, 6506, 283069, 154, 2, false, true),
        ("SnipSnap", 571, 17960, 455410, 91, 0, false, false),
        ("SPLC", 69, 3526, 229417, 40, 0, false, false),
        ("ST", 594, 31309, 822362, 731, 0, false, false),
        ("VQWiki", 185, 6164, 152341, 888, 0, false, false),
        ("Webgoat", 192, 14309, 254726, 48, 0, true, true),
    ];
    rows.iter()
        .map(|&(name, c, m, tm, issues, threads, hard, fig4)| BenchmarkPreset {
            name,
            paper_classes: c,
            paper_methods: m,
            paper_total_methods: tm,
            paper_hybrid_issues: issues,
            threads,
            hard,
            in_figure4: fig4,
        })
        .collect()
}

/// The scale factors applied to paper sizes.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Divide paper method counts by this for filler sizing.
    pub method_divisor: usize,
    /// Divide paper issue counts by this for pattern seeding.
    pub issue_divisor: usize,
}

impl Scale {
    /// The default ~10× reduction used by the benchmark harnesses.
    pub fn standard() -> Scale {
        Scale { method_divisor: 10, issue_divisor: 6 }
    }

    /// A further-reduced scale for quick runs and CI.
    pub fn quick() -> Scale {
        Scale { method_divisor: 60, issue_divisor: 12 }
    }
}

impl BenchmarkPreset {
    /// Builds the generator spec for this preset under `scale`.
    pub fn spec(&self, scale: Scale) -> BenchmarkSpec {
        let seeded_issues = (self.paper_hybrid_issues / scale.issue_divisor).max(2);
        let filler_methods = self.paper_methods / scale.method_divisor;
        let methods_per_class = 8;
        BenchmarkSpec {
            name: self.name.to_string(),
            pattern_counts: standard_mix(seeded_issues, self.threads, self.hard),
            filler_classes: (filler_methods / methods_per_class).max(1),
            methods_per_class,
            seed: 0x7A9_u64.wrapping_add(fxhash(self.name)),
        }
    }
}

fn fxhash(s: &str) -> u64 {
    // Tiny deterministic string hash (FNV-1a) for stable per-name seeds.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_two_presets() {
        let p = presets();
        assert_eq!(p.len(), 22);
        assert_eq!(p.iter().filter(|b| b.in_figure4).count(), 9, "Figure 4 classifies 9");
        let threads: usize = p.iter().map(|b| b.threads).sum();
        assert_eq!(threads, 5, "2 + 1 + 2 cross-thread flows (BlueBlog, I, SBM)");
    }

    #[test]
    fn specs_scale_with_paper_sizes() {
        let p = presets();
        let scale = Scale::standard();
        let grid = p.iter().find(|b| b.name == "GridSphere").unwrap().spec(scale);
        let small = p.iter().find(|b| b.name == "I").unwrap().spec(scale);
        assert!(grid.filler_classes > small.filler_classes * 5);
    }

    #[test]
    fn quick_scale_is_smaller() {
        let p = presets();
        let grid = p.iter().find(|b| b.name == "GridSphere").unwrap();
        assert!(
            grid.spec(Scale::quick()).filler_classes < grid.spec(Scale::standard()).filler_classes
        );
    }
}
