//! A concrete, taint-tracking interpreter for jweb programs.
//!
//! This is the dynamic oracle of the test suite: it executes a program's
//! entrypoints with concrete values (tainting everything a source
//! returns), records every sink invocation that receives tainted data,
//! and the property tests assert that the *sound* static configurations
//! (hybrid unbounded, CI) report a superset of the dynamically observed
//! flows.
//!
//! The interpreter runs on the *unexpanded* IR (container intrinsics are
//! executed with real maps/lists), loops and calls are bounded by a
//! global step budget, and exceptions unwind to the innermost handler.
//!
//! Threads execute **interleaved-serially**: each spawned runnable's
//! `run()` body executes once synchronously at `start()` (the
//! spawn-before-read interleaving) and once more after the entrypoint
//! returns (the read-before-spawn interleaving). Together the two passes
//! observe every cross-thread flow that a single serial schedule would
//! miss, which is what lets the dynamic oracle confirm the inter-thread
//! flows of the multithreaded presets.

use std::collections::HashMap;

use jir::inst::{BinOp, CallTarget, ConstValue, Filter, Inst, Terminator};
use jir::method::Intrinsic;
use jir::{BlockId, ClassId, FieldId, MethodId, Program};

/// A dynamically observed tainted sink invocation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DynHit {
    /// The sink method's name.
    pub sink_method: String,
    /// The class containing the calling statement.
    pub caller_class: String,
}

/// Interpreter limits.
#[derive(Clone, Copy, Debug)]
pub struct InterpConfig {
    /// Total instruction budget across the run.
    pub max_steps: usize,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig { max_steps: 200_000, max_depth: 128 }
    }
}

/// A runtime value.
#[derive(Clone, Debug)]
enum Value {
    Null,
    Int(i64),
    Bool(bool),
    Str {
        text: String,
        taint: bool,
    },
    Ref(usize),
    ClassV(ClassId),
    /// Reflective method handle; the class is retained for Debug output
    /// even though dispatch only needs the method id.
    MethodV(#[allow(dead_code)] ClassId, MethodId),
}

impl Value {
    fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(n) => *n != 0,
            Value::Null => false,
            _ => true,
        }
    }
}

/// A heap object (also used for arrays, maps, lists, builders).
#[derive(Debug, Default)]
struct Object {
    class: Option<ClassId>,
    fields: HashMap<FieldId, Value>,
    /// Dictionary contents for map intrinsics.
    map: HashMap<String, Value>,
    /// Array / list elements.
    elems: Vec<Value>,
    /// Builder buffer.
    buffer: String,
    buffer_taint: bool,
}

/// Thrown-exception signal.
struct Thrown(Value);

enum Flow {
    Normal(Value),
    Thrown(Thrown),
}

/// Runs every entrypoint of `program` and collects tainted sink hits.
pub fn run_program(program: &Program, config: InterpConfig) -> Vec<DynHit> {
    let mut interp = Interp {
        program,
        config,
        heap: Vec::new(),
        statics: HashMap::new(),
        steps: 0,
        hits: Vec::new(),
        sinks: sink_methods(program),
        sources: source_methods(program),
        sanitizers: sanitizer_methods(program),
        pending_runnables: Vec::new(),
    };
    for &entry in &program.entrypoints {
        // Fresh heap per entrypoint: entries are independent requests.
        let _ = interp.call_method(entry, None, &[], 0);
        // Second serial pass: re-run every thread spawned by this entry
        // against the post-entry heap, so writes the entry performed
        // *after* `start()` are visible to the spawned body (and vice
        // versa via the first, synchronous pass). Threads spawned by
        // spawned threads join the same queue; the pass is bounded by
        // the global step budget.
        let mut reruns = 0usize;
        while let Some((recv, run)) = interp.pending_runnables.pop() {
            reruns += 1;
            if reruns > 1_000 {
                break; // runaway spawn loop; the step budget also guards
            }
            let _ = interp.call_method(run, Some(recv), &[], 0);
        }
    }
    let mut hits = interp.hits;
    hits.dedup();
    hits
}

fn method_set(program: &Program, pairs: &[(&str, &str)]) -> Vec<MethodId> {
    pairs
        .iter()
        .filter_map(|(c, m)| {
            program.class_by_name(c).and_then(|cid| program.method_by_name(cid, m))
        })
        .collect()
}

fn sink_methods(program: &Program) -> Vec<MethodId> {
    method_set(
        program,
        &[
            ("PrintWriter", "println"),
            ("PrintWriter", "print"),
            ("PrintWriter", "write"),
            ("Statement", "executeQuery"),
            ("Statement", "executeUpdate"),
            ("Runtime", "exec"),
            ("File", "<init>"),
            ("FileInputStream", "<init>"),
            ("FileWriter", "<init>"),
        ],
    )
}

fn source_methods(program: &Program) -> Vec<MethodId> {
    method_set(
        program,
        &[
            ("HttpServletRequest", "getParameter"),
            ("HttpServletRequest", "getHeader"),
            ("HttpServletRequest", "getQueryString"),
            ("Cookie", "getValue"),
            ("Struts", "taintedInput"),
        ],
    )
}

fn sanitizer_methods(program: &Program) -> Vec<MethodId> {
    method_set(
        program,
        &[
            ("URLEncoder", "encode"),
            ("Encoder", "encodeForHTML"),
            ("Encoder", "encodeForSQL"),
            ("Encoder", "encodeForOS"),
            ("Encoder", "canonicalize"),
        ],
    )
}

struct Interp<'p> {
    program: &'p Program,
    config: InterpConfig,
    heap: Vec<Object>,
    statics: HashMap<FieldId, Value>,
    steps: usize,
    hits: Vec<DynHit>,
    sinks: Vec<MethodId>,
    sources: Vec<MethodId>,
    sanitizers: Vec<MethodId>,
    /// Spawned runnables awaiting their second, post-entry run (the
    /// "interleaved-serial" schedule — see [`run_program`]).
    pending_runnables: Vec<(Value, MethodId)>,
}

impl<'p> Interp<'p> {
    fn alloc(&mut self, class: Option<ClassId>) -> usize {
        self.heap.push(Object { class, ..Default::default() });
        self.heap.len() - 1
    }

    /// Deep taint check: strings carry taint directly; objects are tainted
    /// when any reachable part is (bounded).
    fn tainted(&self, v: &Value, depth: usize) -> bool {
        if depth > 4 {
            return false;
        }
        match v {
            Value::Str { taint, .. } => *taint,
            Value::Ref(r) => {
                let o = &self.heap[*r];
                // Printing an exception leaks its internals (§4.1.2).
                if let Some(c) = o.class {
                    if let Some(thr) = self.program.class_by_name("Throwable") {
                        if self.program.is_subtype(c, thr) {
                            return true;
                        }
                    }
                }
                o.buffer_taint
                    || o.fields.values().any(|f| self.tainted(f, depth + 1))
                    || o.map.values().any(|f| self.tainted(f, depth + 1))
                    || o.elems.iter().any(|f| self.tainted(f, depth + 1))
            }
            _ => false,
        }
    }

    fn call_method(
        &mut self,
        method: MethodId,
        recv: Option<Value>,
        args: &[Value],
        depth: usize,
    ) -> Flow {
        if depth > self.config.max_depth || self.steps > self.config.max_steps {
            return Flow::Normal(Value::Null);
        }
        let m = self.program.method(method);
        let Some(body) = m.body() else {
            return Flow::Normal(Value::Null);
        };
        let mut locals: Vec<Value> = vec![Value::Null; body.num_vars as usize];
        let mut idx = 0usize;
        if let Some(r) = recv {
            locals[0] = r;
            idx = 1;
        }
        for (i, a) in args.iter().enumerate() {
            if idx + i < locals.len() {
                locals[idx + i] = a.clone();
            }
        }
        self.exec_body(method, body, locals, depth)
    }

    fn exec_body(
        &mut self,
        method: MethodId,
        body: &jir::Body,
        mut locals: Vec<Value>,
        depth: usize,
    ) -> Flow {
        let mut block = BlockId(0);
        let mut prev: Option<BlockId> = None;
        // Per-run loop guard: limit visits per block.
        let mut visits: HashMap<BlockId, usize> = HashMap::new();
        loop {
            let v = visits.entry(block).or_insert(0);
            *v += 1;
            if *v > 16 || self.steps > self.config.max_steps {
                return Flow::Normal(Value::Null);
            }
            let b = &body.blocks[block.index()];
            let mut thrown: Option<Thrown> = None;
            for inst in &b.insts {
                self.steps += 1;
                match self.exec_inst(method, inst, &mut locals, prev, depth) {
                    Ok(()) => {}
                    Err(t) => {
                        thrown = Some(t);
                        break;
                    }
                }
            }
            if let Some(t) = thrown {
                // Unwind to this block's handler, or out of the method.
                if let Some(h) = b.handler {
                    if let Some(bind) = body.blocks[h.index()].insts.iter().find_map(|i| match i {
                        Inst::CatchBind { dst, .. } => Some(*dst),
                        _ => None,
                    }) {
                        locals[bind.index()] = t.0.clone();
                    }
                    prev = Some(block);
                    block = h;
                    continue;
                }
                return Flow::Thrown(t);
            }
            match &b.term {
                Terminator::Goto(t) => {
                    prev = Some(block);
                    block = *t;
                }
                Terminator::If { cond, then_bb, else_bb } => {
                    let c = locals[cond.index()].truthy();
                    prev = Some(block);
                    block = if c { *then_bb } else { *else_bb };
                }
                Terminator::Return(v) => {
                    return Flow::Normal(
                        v.map(|v| locals[v.index()].clone()).unwrap_or(Value::Null),
                    );
                }
                Terminator::Throw(v) => {
                    let val = locals[v.index()].clone();
                    if let Some(h) = b.handler {
                        if let Some(bind) =
                            body.blocks[h.index()].insts.iter().find_map(|i| match i {
                                Inst::CatchBind { dst, .. } => Some(*dst),
                                _ => None,
                            })
                        {
                            locals[bind.index()] = val.clone();
                        }
                        prev = Some(block);
                        block = h;
                        continue;
                    }
                    return Flow::Thrown(Thrown(val));
                }
                Terminator::Unreachable => return Flow::Normal(Value::Null),
            }
        }
    }

    fn exec_inst(
        &mut self,
        method: MethodId,
        inst: &Inst,
        locals: &mut [Value],
        prev: Option<BlockId>,
        depth: usize,
    ) -> Result<(), Thrown> {
        match inst {
            Inst::Const { dst, value } => {
                locals[dst.index()] = match value {
                    ConstValue::Int(n) => Value::Int(*n),
                    ConstValue::Bool(b) => Value::Bool(*b),
                    ConstValue::Str(s) => Value::Str { text: s.clone(), taint: false },
                    ConstValue::Null => Value::Null,
                    ConstValue::ClassLit(c) => Value::ClassV(*c),
                };
            }
            Inst::Assign { dst, src, filter } => {
                let v = locals[src.index()].clone();
                let passes = match filter {
                    None => true,
                    Some(Filter::InstanceOf(c)) => match &v {
                        Value::Ref(r) => self.heap[*r]
                            .class
                            .map(|rc| self.program.is_subtype(rc, *c))
                            .unwrap_or(false),
                        Value::Str { .. } | Value::Null => true,
                        _ => true,
                    },
                    Some(Filter::MethodNameEquals(n)) => match &v {
                        Value::MethodV(_, m) => self.program.method(*m).name == *n,
                        _ => false,
                    },
                };
                if passes {
                    locals[dst.index()] = v;
                }
            }
            Inst::New { dst, class } => {
                let r = self.alloc(Some(*class));
                locals[dst.index()] = Value::Ref(r);
            }
            Inst::NewArray { dst, .. } => {
                let r = self.alloc(None);
                locals[dst.index()] = Value::Ref(r);
            }
            Inst::Load { dst, base, field } => {
                if let Value::Ref(r) = locals[base.index()] {
                    locals[dst.index()] =
                        self.heap[r].fields.get(field).cloned().unwrap_or(Value::Null);
                } else {
                    locals[dst.index()] = Value::Null;
                }
            }
            Inst::Store { base, field, src } => {
                if let Value::Ref(r) = locals[base.index()] {
                    let v = locals[src.index()].clone();
                    self.heap[r].fields.insert(*field, v);
                }
            }
            Inst::StaticLoad { dst, field } => {
                locals[dst.index()] = self.statics.get(field).cloned().unwrap_or(Value::Null);
            }
            Inst::StaticStore { field, src } => {
                let v = locals[src.index()].clone();
                self.statics.insert(*field, v);
            }
            Inst::ArrayLoad { dst, base, index } => {
                if let Value::Ref(r) = locals[base.index()] {
                    let i = index
                        .map(|iv| self.as_int(&locals[iv.index()]).max(0) as usize)
                        .unwrap_or(0);
                    locals[dst.index()] = self.heap[r].elems.get(i).cloned().unwrap_or(Value::Null);
                } else {
                    locals[dst.index()] = Value::Null;
                }
            }
            Inst::ArrayStore { base, index, src } => {
                if let Value::Ref(r) = locals[base.index()] {
                    let v = locals[src.index()].clone();
                    let i = index
                        .map(|iv| self.as_int(&locals[iv.index()]).max(0) as usize)
                        .unwrap_or(self.heap[r].elems.len());
                    if self.heap[r].elems.len() <= i {
                        self.heap[r].elems.resize(i + 1, Value::Null);
                    }
                    self.heap[r].elems[i] = v;
                }
            }
            Inst::Binary { dst, op, lhs, rhs } => {
                locals[dst.index()] = self.binop(*op, &locals[lhs.index()], &locals[rhs.index()]);
            }
            Inst::Phi { dst, srcs } => {
                if let Some(p) = prev {
                    if let Some((_, v)) = srcs.iter().find(|(b, _)| *b == p) {
                        locals[dst.index()] = locals[v.index()].clone();
                    }
                }
            }
            Inst::Select { dst, srcs } => {
                if let Some(v) = srcs.first() {
                    locals[dst.index()] = locals[v.index()].clone();
                }
            }
            Inst::CatchBind { .. } => {} // bound during unwinding
            Inst::Call { dst, target, recv, args } => {
                let recv_v = recv.map(|r| locals[r.index()].clone());
                let args_v: Vec<Value> = args.iter().map(|a| locals[a.index()].clone()).collect();
                let result = self.dispatch(method, target, recv_v, &args_v, depth)?;
                if let Some(d) = dst {
                    locals[d.index()] = result;
                }
            }
        }
        Ok(())
    }

    fn binop(&self, op: BinOp, l: &Value, r: &Value) -> Value {
        use Value::*;
        match op {
            BinOp::Concat => {
                let (lt, ltaint) = self.to_text(l);
                let (rt, rtaint) = self.to_text(r);
                Str { text: format!("{lt}{rt}"), taint: ltaint || rtaint }
            }
            BinOp::Add => Int(self.as_int(l) + self.as_int(r)),
            BinOp::Sub => Int(self.as_int(l) - self.as_int(r)),
            BinOp::Mul => Int(self.as_int(l) * self.as_int(r)),
            BinOp::Eq => Bool(self.value_eq(l, r)),
            BinOp::Ne => Bool(!self.value_eq(l, r)),
            BinOp::Lt => Bool(self.as_int(l) < self.as_int(r)),
            BinOp::Gt => Bool(self.as_int(l) > self.as_int(r)),
            BinOp::And => Bool(l.truthy() && r.truthy()),
            BinOp::Or => Bool(l.truthy() || r.truthy()),
        }
    }

    fn to_text(&self, v: &Value) -> (String, bool) {
        match v {
            Value::Str { text, taint } => (text.clone(), *taint),
            Value::Int(n) => (n.to_string(), false),
            Value::Bool(b) => (b.to_string(), false),
            Value::Null => ("null".into(), false),
            Value::Ref(r) => ("obj".into(), self.tainted(&Value::Ref(*r), 0)),
            Value::ClassV(_) | Value::MethodV(..) => ("meta".into(), false),
        }
    }

    fn as_int(&self, v: &Value) -> i64 {
        match v {
            Value::Int(n) => *n,
            Value::Bool(b) => i64::from(*b),
            _ => 0,
        }
    }

    fn value_eq(&self, l: &Value, r: &Value) -> bool {
        match (l, r) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str { text: a, .. }, Value::Str { text: b, .. }) => a == b,
            (Value::Null, Value::Null) => true,
            (Value::Ref(a), Value::Ref(b)) => a == b,
            _ => false,
        }
    }

    fn dispatch(
        &mut self,
        caller: MethodId,
        target: &CallTarget,
        recv: Option<Value>,
        args: &[Value],
        depth: usize,
    ) -> Result<Value, Thrown> {
        let callee = match target {
            CallTarget::Static(m) | CallTarget::Special(m) => Some(*m),
            CallTarget::Virtual(sel) => match &recv {
                Some(Value::Ref(r)) => {
                    self.heap[*r].class.and_then(|c| self.program.resolve_virtual(c, *sel))
                }
                Some(Value::ClassV(_)) => self
                    .program
                    .class_by_name("Class")
                    .and_then(|c| self.program.resolve_virtual(c, *sel)),
                Some(Value::MethodV(..)) => self
                    .program
                    .class_by_name("Method")
                    .and_then(|c| self.program.resolve_virtual(c, *sel)),
                _ => None,
            },
        };
        let Some(callee) = callee else { return Ok(Value::Null) };

        // Sink check (before execution).
        if self.sinks.contains(&callee) {
            let any_tainted = args.iter().any(|a| self.tainted(a, 0))
                || recv
                    .as_ref()
                    .map(|r| matches!(r, Value::Str { taint: true, .. }))
                    .unwrap_or(false);
            if any_tainted {
                let cls = self.program.class(self.program.method(caller).owner).name.clone();
                let hit = DynHit {
                    sink_method: self.program.method(callee).name.clone(),
                    caller_class: cls,
                };
                if !self.hits.contains(&hit) {
                    self.hits.push(hit);
                }
            }
        }
        // Sanitizer: return a clean copy.
        if self.sanitizers.contains(&callee) {
            let (t, _) =
                args.first().map(|a| self.to_text(a)).unwrap_or_else(|| ("".into(), false));
            return Ok(Value::Str { text: t, taint: false });
        }
        // Source: fresh tainted value.
        if self.sources.contains(&callee) {
            return Ok(Value::Str { text: "<user-input>".into(), taint: true });
        }

        let m = self.program.method(callee);
        if let Some(intr) = m.intrinsic() {
            return self.intrinsic(callee, intr, recv, args, depth);
        }
        if m.body().is_some() {
            return match self.call_method(callee, recv, args, depth + 1) {
                Flow::Normal(v) => Ok(v),
                Flow::Thrown(t) => Err(t),
            };
        }
        Ok(Value::Null)
    }

    fn intrinsic(
        &mut self,
        _callee: MethodId,
        intr: Intrinsic,
        recv: Option<Value>,
        args: &[Value],
        depth: usize,
    ) -> Result<Value, Thrown> {
        match intr {
            Intrinsic::Propagate => {
                // Value derived from receiver + args.
                let mut taint = false;
                let mut text = String::new();
                if let Some(r) = &recv {
                    let (t, tt) = self.to_text(r);
                    text.push_str(&t);
                    taint |= tt;
                }
                for a in args {
                    let (t, tt) = self.to_text(a);
                    text.push_str(&t);
                    taint |= tt;
                }
                // `narrow`-style reference propagation: pass through refs.
                if let Some(Value::Ref(r)) = args.first() {
                    return Ok(Value::Ref(*r));
                }
                Ok(Value::Str { text, taint })
            }
            Intrinsic::Fresh => Ok(Value::Str { text: "fresh".into(), taint: false }),
            Intrinsic::FreshObject(c) => {
                let r = self.alloc(Some(c));
                Ok(Value::Ref(r))
            }
            Intrinsic::ReturnReceiver | Intrinsic::IterAlias => Ok(recv.unwrap_or(Value::Null)),
            Intrinsic::MapPut => {
                if let (Some(Value::Ref(r)), Some(k), Some(v)) = (recv, args.first(), args.get(1)) {
                    let (key, _) = self.to_text(k);
                    self.heap[r].map.insert(key, v.clone());
                }
                Ok(Value::Null)
            }
            Intrinsic::MapGet => {
                if let (Some(Value::Ref(r)), Some(k)) = (recv, args.first()) {
                    let (key, _) = self.to_text(k);
                    return Ok(self.heap[r].map.get(&key).cloned().unwrap_or(Value::Null));
                }
                Ok(Value::Null)
            }
            Intrinsic::CollAdd => {
                if let (Some(Value::Ref(r)), Some(v)) = (recv, args.first()) {
                    self.heap[r].elems.push(v.clone());
                }
                Ok(Value::Null)
            }
            Intrinsic::CollGet => {
                if let Some(Value::Ref(r)) = recv {
                    return Ok(self.heap[r].elems.first().cloned().unwrap_or(Value::Null));
                }
                Ok(Value::Null)
            }
            Intrinsic::BuilderAppend => {
                if let Some(Value::Ref(r)) = &recv {
                    if let Some(a) = args.first() {
                        let (t, taint) = self.to_text(a);
                        self.heap[*r].buffer.push_str(&t);
                        self.heap[*r].buffer_taint |= taint;
                    }
                }
                Ok(recv.unwrap_or(Value::Null))
            }
            Intrinsic::BuilderToString => {
                if let Some(Value::Ref(r)) = recv {
                    return Ok(Value::Str {
                        text: self.heap[r].buffer.clone(),
                        taint: self.heap[r].buffer_taint,
                    });
                }
                Ok(Value::Null)
            }
            Intrinsic::ClassForName => {
                if let Some(a) = args.first() {
                    let (name, _) = self.to_text(a);
                    if let Some(c) = self.program.class_by_name(&name) {
                        return Ok(Value::ClassV(c));
                    }
                }
                Ok(Value::Null)
            }
            Intrinsic::ClassNewInstance => {
                if let Some(Value::ClassV(c)) = recv {
                    let r = self.alloc(Some(c));
                    return Ok(Value::Ref(r));
                }
                Ok(Value::Null)
            }
            Intrinsic::GetMethods => {
                if let Some(Value::ClassV(c)) = recv {
                    let methods: Vec<Value> = self
                        .program
                        .class(c)
                        .methods
                        .iter()
                        .filter(|&&m| {
                            let meth = self.program.method(m);
                            !meth.is_static && meth.name != "<init>" && meth.body().is_some()
                        })
                        .map(|&m| Value::MethodV(c, m))
                        .collect();
                    let r = self.alloc(None);
                    self.heap[r].elems = methods;
                    return Ok(Value::Ref(r));
                }
                Ok(Value::Null)
            }
            Intrinsic::GetMethod => {
                if let (Some(Value::ClassV(c)), Some(a)) = (recv, args.first()) {
                    let (name, _) = self.to_text(a);
                    if let Some(m) = self.program.method_by_name(c, &name) {
                        return Ok(Value::MethodV(c, m));
                    }
                }
                Ok(Value::Null)
            }
            Intrinsic::MethodGetName => {
                if let Some(Value::MethodV(_, m)) = recv {
                    return Ok(Value::Str {
                        text: self.program.method(m).name.clone(),
                        taint: false,
                    });
                }
                Ok(Value::Str { text: String::new(), taint: false })
            }
            Intrinsic::MethodInvoke => {
                if let Some(Value::MethodV(_, m)) = recv {
                    let target_obj = args.first().cloned();
                    let call_args: Vec<Value> = match args.get(1) {
                        Some(Value::Ref(r)) => self.heap[*r].elems.clone(),
                        _ => vec![],
                    };
                    return match self.call_method(m, target_obj, &call_args, depth + 1) {
                        Flow::Normal(v) => Ok(v),
                        Flow::Thrown(t) => Err(t),
                    };
                }
                Ok(Value::Null)
            }
            Intrinsic::ThreadStart => {
                // First interleaving: execute the spawned thread
                // synchronously at the spawn point. The runnable is also
                // queued for a second run after the entrypoint returns
                // (see `run_program`), covering interleavings where the
                // spawner keeps mutating shared state after `start()`.
                if let Some(Value::Ref(r)) = &recv {
                    if let Some(c) = self.heap[*r].class {
                        if let Some(sel) = self.program.find_selector("run", 0) {
                            if let Some(run) = self.program.resolve_virtual(c, sel) {
                                self.pending_runnables.push((Value::Ref(*r), run));
                                return match self.call_method(run, recv.clone(), &[], depth + 1) {
                                    Flow::Normal(_) => Ok(Value::Null),
                                    Flow::Thrown(t) => Err(t),
                                };
                            }
                        }
                    }
                }
                Ok(Value::Null)
            }
            Intrinsic::GetMessage => {
                // Exception internals are sensitive (§4.1.2).
                Ok(Value::Str { text: "<exception-detail>".into(), taint: true })
            }
            Intrinsic::Nop => Ok(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<DynHit> {
        let mut program = jir::frontend::parse_program(src).expect("parses");
        taj_core::frameworks::synthesize_entrypoints(&mut program);
        run_program(&program, InterpConfig::default())
    }

    #[test]
    fn direct_flow_observed() {
        let hits = run(r#"
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    String v = req.getParameter("q");
                    resp.getWriter().println(v);
                }
            }
            "#);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].sink_method, "println");
        assert_eq!(hits[0].caller_class, "Page");
    }

    #[test]
    fn spawned_thread_flow_observed_at_start() {
        // Write before spawn, read inside the spawned body: the first
        // (synchronous-at-start) pass observes it.
        let hits = run(r#"
            class Shared { field String v; ctor () { } }
            class Worker implements Runnable {
                field Shared s;
                field PrintWriter w;
                ctor (Shared s, PrintWriter w) { this.s = s; this.w = w; }
                method void run() {
                    Shared sh = this.s;
                    String x = sh.v;
                    PrintWriter pw = this.w;
                    pw.println(x);
                }
            }
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    Shared s = new Shared();
                    s.v = req.getParameter("q");
                    Worker k = new Worker(s, resp.getWriter());
                    Thread t = new Thread(k);
                    t.start();
                }
            }
            "#);
        assert!(
            hits.iter().any(|h| h.sink_method == "println" && h.caller_class == "Worker"),
            "{hits:?}"
        );
    }

    #[test]
    fn spawned_thread_rerun_sees_post_start_writes() {
        // The spawner taints the shared object only AFTER start(): the
        // synchronous first pass reads a clean value, so only the second
        // (post-entry) serial pass can observe the flow.
        let hits = run(r#"
            class Shared { field String v; ctor () { } }
            class Worker implements Runnable {
                field Shared s;
                field PrintWriter w;
                ctor (Shared s, PrintWriter w) { this.s = s; this.w = w; }
                method void run() {
                    Shared sh = this.s;
                    String x = sh.v;
                    PrintWriter pw = this.w;
                    pw.println(x);
                }
            }
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    Shared s = new Shared();
                    Worker k = new Worker(s, resp.getWriter());
                    Thread t = new Thread(k);
                    t.start();
                    s.v = req.getParameter("q");
                }
            }
            "#);
        assert!(
            hits.iter().any(|h| h.sink_method == "println" && h.caller_class == "Worker"),
            "the interleaved-serial second pass must observe the flow: {hits:?}"
        );
    }

    #[test]
    fn sanitized_flow_not_observed() {
        let hits = run(r#"
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    String v = URLEncoder.encode(req.getParameter("q"));
                    resp.getWriter().println(v);
                }
            }
            "#);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn map_keys_are_concrete() {
        let hits = run(r#"
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    HashMap m = new HashMap();
                    m.put("a", req.getParameter("q"));
                    m.put("b", "safe");
                    resp.getWriter().println(m.get("b"));
                }
            }
            "#);
        assert!(hits.is_empty(), "reading key b must be clean: {hits:?}");
    }

    #[test]
    fn reflection_executes() {
        let hits = run(r#"
            class Target {
                method String id(String x) { return x; }
            }
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    Class k = Class.forName("Target");
                    Method m = k.getMethod("id");
                    Target t = new Target();
                    Object r = m.invoke(t, new Object[] { req.getParameter("q") });
                    resp.getWriter().println(r);
                }
            }
            "#);
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn thread_flow_manifests() {
        let hits = run(r#"
            class Shared { field String v; ctor () { } }
            class Worker implements Runnable {
                field Shared s;
                field HttpServletRequest r;
                ctor (Shared s, HttpServletRequest r) { this.s = s; this.r = r; }
                method void run() {
                    Shared sh = this.s;
                    HttpServletRequest rq = this.r;
                    sh.v = rq.getParameter("q");
                }
            }
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    Shared s = new Shared();
                    Thread t = new Thread(new Worker(s, req));
                    t.start();
                    resp.getWriter().println(s.v);
                }
            }
            "#);
        assert_eq!(hits.len(), 1, "cross-thread flow must manifest: {hits:?}");
    }

    #[test]
    fn exception_leak_observed() {
        let hits = run(r#"
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    PrintWriter w = resp.getWriter();
                    try { this.boom(); } catch (Exception e) { w.println(e); }
                }
                method void boom() { throw new RuntimeException("secret"); }
            }
            "#);
        assert_eq!(hits.len(), 1, "printing the exception leaks: {hits:?}");
    }

    #[test]
    fn loops_terminate() {
        let hits = run(r#"
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    int i = 0;
                    while (i < 1000000) { i = i + 1; }
                    resp.getWriter().println(req.getParameter("q"));
                }
            }
            "#);
        // The loop guard abandons the hot loop; the run still terminates.
        let _ = hits;
    }
}
