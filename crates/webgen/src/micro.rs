//! A SecuriBench-Micro-style suite: one small named program per language
//! or modeling feature, each with exact expected findings. (The paper's
//! motivating example is "partially inspired by the Refl1 case in Stanford
//! SecuriBench Micro"; this suite plays the same role for regression
//! testing.)

use taj_core::{DeploymentDescriptor, GroundTruth};

use crate::patterns::{emit, Pattern};

/// One micro test case.
#[derive(Clone, Debug)]
pub struct MicroTest {
    /// Case name (e.g. `Refl1`, `Session2`).
    pub name: String,
    /// jweb source.
    pub source: String,
    /// Expected classifications.
    pub truth: GroundTruth,
    /// Deployment descriptor if the case uses EJB.
    pub descriptor: DeploymentDescriptor,
    /// Whether sound configurations are *expected* to find every
    /// vulnerable entry (false for cases that exercise known, documented
    /// unsoundness).
    pub sound_complete: bool,
}

/// Builds the full micro suite: one case per pattern, plus the Figure 1
/// motivating program.
pub fn micro_suite() -> Vec<MicroTest> {
    let mut out = Vec::new();
    for (i, &p) in Pattern::all().iter().enumerate() {
        let mut source = String::new();
        let mut truth = GroundTruth::default();
        let mut descriptor = DeploymentDescriptor::default();
        if let Some(e) = emit(p, 1000 + i, &mut source, &mut truth) {
            descriptor.entries.push(e);
        }
        out.push(MicroTest {
            name: format!("Micro_{}", p.tag()),
            source,
            truth,
            descriptor,
            sound_complete: true,
        });
    }
    out.push(motivating());
    out
}

/// The paper's Figure 1 program (reflection + containers + nested taint);
/// exactly one of three `println` calls is vulnerable.
pub fn motivating() -> MicroTest {
    let source = r#"
class Internal {
    field String s;
    ctor (String s) { this.s = s; }
    method String toString() { return this.s; }
}

class Motivating extends HttpServlet {
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {
        String t1 = req.getParameter("fName");
        String t2 = req.getParameter("lName");
        PrintWriter writer = resp.getWriter();
        Method idMethod = null;
        Class k = Class.forName("Motivating");
        Method[] methods = k.getMethods();
        for (int i = 0; i < methods.length; i = i + 1) {
            Method cand = methods[i];
            if (cand.getName().equals("id")) { idMethod = cand; }
        }
        HashMap m = new HashMap();
        m.put("fName", t1);
        m.put("lName", t2);
        m.put("date", new String(Date.getDate()));
        String s1 = (String) idMethod.invoke(this, new Object[] { m.get("fName") });
        String s2 = (String) idMethod.invoke(this, new Object[] { URLEncoder.encode((String) m.get("lName")) });
        String s3 = (String) idMethod.invoke(this, new Object[] { m.get("date") });
        Internal i1 = new Internal(s1);
        Internal i2 = new Internal(s2);
        Internal i3 = new Internal(s3);
        writer.println(i1); // BAD
        writer.println(i2); // OK
        writer.println(i3); // OK
    }

    method String id(String string) { return string; }
}
"#
    .to_string();
    let mut truth = GroundTruth::default();
    truth.add_vulnerable("Motivating", taj_core::IssueType::Xss);
    MicroTest {
        name: "Refl1_Motivating".into(),
        source,
        truth,
        descriptor: DeploymentDescriptor::default(),
        sound_complete: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_patterns_plus_motivating() {
        let suite = micro_suite();
        assert_eq!(suite.len(), Pattern::all().len() + 1);
        assert!(suite.iter().any(|t| t.name == "Refl1_Motivating"));
    }

    #[test]
    fn all_cases_parse() {
        for t in micro_suite() {
            assert!(
                jir::frontend::parse_program(&t.source).is_ok(),
                "case {} fails to parse",
                t.name
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let suite = micro_suite();
        let mut names: Vec<&str> = suite.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }
}
