//! Deterministic edit operations over generated benchmark sources — the
//! input half of the incremental-analysis harness.
//!
//! Each operation takes a jweb source and a seed and produces an edited
//! source (or `None` when the operation does not apply, e.g. removing a
//! class from a program that has none left). Operations target the
//! filler code emitted by [`crate::generate`], whose shape is stable:
//! every filler class carries a chain of `method int m<k>(int depth)`
//! methods, so the edits land on known lines without a parser.
//!
//! The operations cover the structural-diff taxonomy the incremental
//! analysis distinguishes:
//!
//! - [`EditKind::Comment`] — textual change, empty edit region;
//! - [`EditKind::Body`] — one method body changes; its callers join the
//!   dirty region through the dependency graph;
//! - [`EditKind::AddClass`] — methods appear;
//! - [`EditKind::RemoveClass`] — methods disappear;
//! - [`EditKind::Signature`] — a method's arity changes: the old summary
//!   key is removed and a new one added, and the in-class caller is
//!   patched to match (so the edit is a genuine multi-method change).
//!
//! Everything here is deterministic in `(source, kind, seed)` — the
//! differential tests rely on replaying identical edit sequences.

use std::fmt;

/// One kind of structural edit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EditKind {
    /// Append a trailing comment: no summary changes at all.
    Comment,
    /// Insert a statement into one filler method body.
    Body,
    /// Append a new `Pad<seed>` class with a small method chain.
    AddClass,
    /// Remove the last filler (or previously added pad) class.
    RemoveClass,
    /// Add a parameter to one filler method, patching its caller.
    Signature,
}

/// Every edit kind, in the order the robustness tests cycle through.
pub const EDIT_KINDS: [EditKind; 5] = [
    EditKind::Comment,
    EditKind::Body,
    EditKind::AddClass,
    EditKind::RemoveClass,
    EditKind::Signature,
];

impl fmt::Display for EditKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EditKind::Comment => "comment",
            EditKind::Body => "body",
            EditKind::AddClass => "add-class",
            EditKind::RemoveClass => "remove-class",
            EditKind::Signature => "signature",
        };
        f.write_str(name)
    }
}

/// Applies `kind` to `source`, deterministically in `seed`. Returns
/// `None` when the operation has no target in this source (no filler
/// methods for [`EditKind::Body`]/[`EditKind::Signature`], no removable
/// class for [`EditKind::RemoveClass`]).
pub fn apply_edit(source: &str, kind: EditKind, seed: u64) -> Option<String> {
    match kind {
        EditKind::Comment => Some(format!("{source}\n// inert edit {seed}\n")),
        EditKind::Body => edit_body(source, seed),
        EditKind::AddClass => Some(add_class(source, seed)),
        EditKind::RemoveClass => remove_class(source),
        EditKind::Signature => edit_signature(source, seed),
    }
}

/// Applies a `steps`-long deterministic edit chain, each step editing
/// the previous step's output. Steps whose kind does not apply are
/// skipped (the chain records only applied edits), so the result can be
/// shorter than `steps` on degenerate sources.
pub fn edit_chain(source: &str, seed: u64, steps: usize) -> Vec<(EditKind, String)> {
    let mut chain = Vec::new();
    let mut current = source.to_string();
    for i in 0..steps {
        // xorshift over the seed so consecutive steps decorrelate which
        // method/class each edit lands on.
        let step_seed = {
            let mut x = seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let kind = EDIT_KINDS[(step_seed % EDIT_KINDS.len() as u64) as usize];
        if let Some(edited) = apply_edit(&current, kind, step_seed) {
            current = edited;
            chain.push((kind, current.clone()));
        }
    }
    chain
}

/// Line index and chain position `k` of every filler-method header
/// `method int m<k>(int depth) {`.
fn filler_headers(lines: &[&str]) -> Vec<(usize, usize)> {
    let mut headers = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("method int m") {
            if let Some(end) = rest.find('(') {
                if rest[end..].starts_with("(int depth) {") {
                    if let Ok(k) = rest[..end].parse::<usize>() {
                        headers.push((i, k));
                    }
                }
            }
        }
    }
    headers
}

fn join_lines(lines: &[String], trailing_newline: bool) -> String {
    let mut out = lines.join("\n");
    if trailing_newline {
        out.push('\n');
    }
    out
}

fn edit_body(source: &str, seed: u64) -> Option<String> {
    let lines: Vec<&str> = source.lines().collect();
    let headers = filler_headers(&lines);
    let (line_idx, _) = *headers.get(seed as usize % headers.len().max(1))?;
    let mut out: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
    out.insert(line_idx + 1, format!("        int e{seed} = depth + {};", seed % 7));
    Some(join_lines(&out, source.ends_with('\n')))
}

fn add_class(source: &str, seed: u64) -> String {
    format!(
        "{source}\nclass Pad{seed} {{\n    field int v;\n    \
         method int pad0(int x) {{ return x + 1; }}\n    \
         method int pad1(int x) {{ return this.pad0(x) + {}; }}\n}}\n",
        seed % 9
    )
}

/// Removes the last removable class: a `Pad<seed>` class appended by
/// [`EditKind::AddClass`] if one exists, else the last filler pair
/// (`Filler<i>State` + `Filler<i>`), which nothing else references.
fn remove_class(source: &str) -> Option<String> {
    let lines: Vec<&str> = source.lines().collect();
    // The emitters put a blank separator line before each class; remove
    // it with the class so an add-then-remove round-trips byte-exactly.
    let block_start = |start: usize| {
        if start > 0 && lines[start - 1].is_empty() {
            start - 1
        } else {
            start
        }
    };
    // Prefer a pad class: one block, ends at the next column-0 `}`.
    if let Some(start) = lines.iter().rposition(|l| l.starts_with("class Pad")) {
        let end = (start..lines.len()).find(|&i| lines[i] == "}")?;
        let mut out: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        out.drain(block_start(start)..=end);
        return Some(join_lines(&out, source.ends_with('\n')));
    }
    // Else the last filler pair: from `class Filler<i>State {` through
    // the *second* column-0 `}` (the state class close, then the
    // servlet class close).
    let start = lines
        .iter()
        .rposition(|l| l.starts_with("class Filler") && l.trim_end().ends_with("State {"))?;
    let mut closes = (start..lines.len()).filter(|&i| lines[i] == "}");
    let _state_close = closes.next()?;
    let servlet_close = closes.next()?;
    let mut out: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
    out.drain(block_start(start)..=servlet_close);
    Some(join_lines(&out, source.ends_with('\n')))
}

fn edit_signature(source: &str, seed: u64) -> Option<String> {
    let lines: Vec<&str> = source.lines().collect();
    // Only methods with an in-class caller (k >= 1): the caller is
    // patched in the same edit, keeping the program well-formed.
    let headers: Vec<(usize, usize)> =
        filler_headers(&lines).into_iter().filter(|&(_, k)| k >= 1).collect();
    let (line_idx, k) = *headers.get(seed as usize % headers.len().max(1))?;
    let mut out: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
    out[line_idx] = out[line_idx].replace("(int depth) {", "(int depth, int extra) {");
    // The caller `return this.m<k>(depth + 1);` sits in m<k-1>, the
    // nearest such line above the header — the generator emits the
    // chain in order, so a backward scan stays inside this class.
    let call = format!("return this.m{k}(depth + 1);");
    let caller_idx = (0..line_idx).rev().find(|&i| lines[i].trim() == call)?;
    out[caller_idx] = out[caller_idx].replace(&call, &format!("return this.m{k}(depth + 1, 0);"));
    Some(join_lines(&out, source.ends_with('\n')))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, standard_mix, BenchmarkSpec};

    fn base_source() -> String {
        generate(&BenchmarkSpec {
            name: "edit-base".into(),
            pattern_counts: standard_mix(4, 0, false),
            filler_classes: 3,
            methods_per_class: 4,
            seed: 0xED17,
        })
        .source
    }

    fn parses(source: &str) -> bool {
        jir::frontend::parse_program(source).is_ok()
    }

    #[test]
    fn every_edit_kind_applies_and_still_parses() {
        let base = base_source();
        assert!(parses(&base));
        for kind in EDIT_KINDS {
            let edited = apply_edit(&base, kind, 42).unwrap_or_else(|| panic!("{kind} applies"));
            assert_ne!(edited, base, "{kind} changed the source");
            assert!(parses(&edited), "{kind} result parses");
        }
    }

    #[test]
    fn edits_are_deterministic_in_seed() {
        let base = base_source();
        for kind in EDIT_KINDS {
            assert_eq!(apply_edit(&base, kind, 7), apply_edit(&base, kind, 7));
        }
        // And different seeds pick different body targets.
        assert_ne!(apply_edit(&base, EditKind::Body, 0), apply_edit(&base, EditKind::Body, 1));
    }

    #[test]
    fn remove_class_prefers_pads_then_fillers_then_gives_up() {
        let base = base_source();
        let with_pad = apply_edit(&base, EditKind::AddClass, 5).expect("add applies");
        let removed = remove_class(&with_pad).expect("pad removable");
        assert_eq!(removed, base, "removing the pad restores the original");
        // Without pads, the last filler pair goes.
        let no_filler = remove_class(&base).expect("filler removable");
        assert!(!no_filler.contains("class Filler2State"), "last filler removed");
        assert!(no_filler.contains("class Filler1State"), "earlier fillers stay");
        assert!(parses(&no_filler));
        // A source with no removable classes declines.
        assert_eq!(remove_class("class A { field int x; }"), None);
    }

    #[test]
    fn signature_edit_patches_the_caller_too() {
        let base = base_source();
        let edited = apply_edit(&base, EditKind::Signature, 3).expect("applies");
        assert!(edited.contains("int depth, int extra"), "signature widened");
        assert!(edited.contains("(depth + 1, 0);"), "caller patched");
        assert!(parses(&edited));
    }

    #[test]
    fn edit_chain_is_deterministic_and_parses_throughout() {
        let base = base_source();
        let a = edit_chain(&base, 99, 8);
        let b = edit_chain(&base, 99, 8);
        assert_eq!(a.len(), b.len());
        for ((ka, sa), (kb, sb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            assert_eq!(sa, sb);
            assert!(parses(sa), "{ka} step parses");
        }
        assert!(a.len() >= 4, "most steps apply on a filler-rich source");
    }
}
