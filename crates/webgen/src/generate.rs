//! Benchmark synthesis: pattern mix + inert filler code, sized to mimic
//! the paper's Table 2 applications (scaled down ~10×).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use taj_core::{DeploymentDescriptor, GroundTruth};

use crate::patterns::{emit, Pattern};

/// Parameters of one synthetic benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkSpec {
    /// Benchmark name (Table 2 row).
    pub name: String,
    /// How many instances of each pattern to seed.
    pub pattern_counts: Vec<(Pattern, usize)>,
    /// Number of inert filler classes.
    pub filler_classes: usize,
    /// Methods per filler class.
    pub methods_per_class: usize,
    /// Deterministic generation seed.
    pub seed: u64,
}

/// Size statistics of a generated benchmark (Table 2 columns).
#[derive(Clone, Copy, Debug, Default)]
pub struct GenStats {
    /// Application classes.
    pub classes: usize,
    /// Application methods.
    pub methods: usize,
    /// Source lines.
    pub lines: usize,
}

/// A generated benchmark.
#[derive(Clone, Debug)]
pub struct GeneratedBenchmark {
    /// Name.
    pub name: String,
    /// jweb source text.
    pub source: String,
    /// Ground truth for scoring.
    pub truth: GroundTruth,
    /// EJB deployment descriptor (from `EjbFlow` patterns).
    pub descriptor: DeploymentDescriptor,
    /// Size statistics.
    pub stats: GenStats,
}

/// Generates the benchmark described by `spec`. Deterministic in
/// `spec.seed`.
pub fn generate(spec: &BenchmarkSpec) -> GeneratedBenchmark {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut source = String::new();
    let mut truth = GroundTruth::default();
    let mut descriptor = DeploymentDescriptor::default();

    source.push_str(&format!("// synthetic benchmark `{}` (seed {})\n", spec.name, spec.seed));

    // Filler first: inert but *reachable* code — each filler class is a
    // servlet whose doGet walks a call chain with some heap traffic, so
    // call-graph and pointer-analysis work scales like a real application.
    // Emitting filler before the patterns also means that under the §6.1
    // node budget, equal-priority filler is explored before equal-priority
    // pattern stragglers (a worst case for the prioritized configuration,
    // mirroring how the paper's 20k-node bound always binds inside
    // application code).
    for c in 0..spec.filler_classes {
        emit_filler_class(&mut source, c, spec.methods_per_class, &mut rng);
    }

    // Patterns.
    let mut instance = 0usize;
    for &(pattern, count) in &spec.pattern_counts {
        for _ in 0..count {
            if let Some(entry) = emit(pattern, instance, &mut source, &mut truth) {
                descriptor.entries.push(entry);
            }
            instance += 1;
        }
    }

    let stats = GenStats {
        classes: source.matches("\nclass ").count() + source.matches("\ninterface ").count(),
        methods: source.matches("method ").count() + source.matches("ctor ").count(),
        lines: source.lines().count(),
    };
    GeneratedBenchmark { name: spec.name.clone(), source, truth, descriptor, stats }
}

fn emit_filler_class(out: &mut String, idx: usize, methods: usize, rng: &mut StdRng) {
    let name = format!("Filler{idx}");
    out.push_str(&format!(
        r#"
class {name}State {{
    field String tag;
    field {name}State next;
    ctor (String tag) {{ this.tag = tag; }}
}}
class {name} extends HttpServlet {{
    field {name}State root;
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        {name}State s = new {name}State("root{idx}");
        this.root = s;
        int n = this.m0(0);
        resp.getWriter().println("done");
    }}
"#
    ));
    for m in 0..methods {
        let body = match rng.gen_range(0..4) {
            0 => format!(
                "        {name}State s = new {name}State(\"s{m}\");\n         s.next = this.root;\n         this.root = s;\n"
            ),
            1 => format!(
                "        String t = \"x\" + depth;\n        {name}State s = new {name}State(t);\n"
            ),
            2 => "        int acc = depth * 2 + 1;\n        depth = acc - depth;\n".to_string(),
            _ => format!(
                "        {name}State cur = this.root;\n        if (cur != null) {{ String tag = cur.tag; }}\n"
            ),
        };
        let call_next = if m + 1 < methods {
            format!("        return this.m{}(depth + 1);\n", m + 1)
        } else {
            "        return depth;\n".to_string()
        };
        out.push_str(&format!("    method int m{m}(int depth) {{\n{body}{call_next}    }}\n"));
    }
    out.push_str("}\n");
}

/// Distributes `n` seeded-issue slots across pattern kinds with the
/// standard web-app mix (used by the Table 2 presets).
pub fn standard_mix(n: usize, extra_threads: usize, hard: bool) -> Vec<(Pattern, usize)> {
    use Pattern::*;
    let share = |pct: usize| (n * pct).div_ceil(100).max(if n > 0 { 1 } else { 0 });
    let mut mix = vec![
        (XssReflected, share(22)),
        (XssHeap, share(8)),
        (XssSanitized, share(8)),
        (SqliConcat, share(7)),
        (SqliSanitized, share(4)),
        (CommandInjection, share(4)),
        (MaliciousFile, share(4)),
        (InfoLeak, share(6)),
        (BuilderFlow, share(5)),
        (SessionAttr, share(5)),
        (NestedCarrier, share(4)),
        (TwoBoxContext, share(6)),
        (CollectionContext, share(4)),
        (FactoryAlias, share(5)),
        (ArrayConfusion, share(3)),
        (UnknownKeyMap, share(3)),
        (ReflectInvoke, share(2)),
        (StrutsForm, share(2)),
        (EjbFlow, share(1)),
        (FarFalsePositive, share(3)),
        (LongSpurious, share(2)),
    ];
    if extra_threads > 0 {
        mix.push((ThreadShared, extra_threads));
    }
    if hard {
        // Webgoat-style: flows the bounded configurations treat
        // differently (§6.2's bounds have visible effects here).
        mix.push((DeepNested, share(2).max(2)));
        mix.push((LongChain, share(2).max(2)));
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "tiny".into(),
            pattern_counts: standard_mix(6, 1, true),
            filler_classes: 2,
            methods_per_class: 5,
            seed: 7,
        }
    }

    #[test]
    fn generated_source_parses_and_lowers() {
        let b = generate(&tiny_spec());
        let program = jir::frontend::parse_program(&b.source);
        assert!(program.is_ok(), "{:?}", program.err());
        assert!(b.stats.methods > 10);
        assert!(b.stats.lines > 50);
        assert!(!b.truth.vulnerable.is_empty());
        assert!(!b.truth.benign.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&tiny_spec());
        let b = generate(&tiny_spec());
        assert_eq!(a.source, b.source);
    }

    #[test]
    fn different_seeds_differ() {
        let mut s2 = tiny_spec();
        s2.seed = 8;
        let a = generate(&tiny_spec());
        let b = generate(&s2);
        assert_ne!(a.source, b.source, "filler varies with the seed");
    }

    #[test]
    fn descriptor_entries_match_ejb_patterns() {
        let spec = BenchmarkSpec {
            name: "ejb".into(),
            pattern_counts: vec![(Pattern::EjbFlow, 3)],
            filler_classes: 0,
            methods_per_class: 0,
            seed: 1,
        };
        let b = generate(&spec);
        assert_eq!(b.descriptor.entries.len(), 3);
    }

    #[test]
    fn standard_mix_covers_thread_request() {
        let mix = standard_mix(10, 2, false);
        let threads: usize =
            mix.iter().filter(|(p, _)| *p == Pattern::ThreadShared).map(|&(_, n)| n).sum();
        assert_eq!(threads, 2);
    }
}
