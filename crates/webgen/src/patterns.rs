//! The vulnerability/confusable pattern library.
//!
//! Each pattern emits a self-contained jweb class group with a unique name
//! prefix, plus its ground-truth classification. Patterns are engineered
//! so that the five analysis configurations (Table 1) separate exactly as
//! the paper's evaluation observes:
//!
//! - plain vulnerable patterns: found by every sound configuration;
//! - sanitized variants: reported by none;
//! - `TwoBoxContext` / `CollectionContext`: context-merging false
//!   positives for CI only;
//! - `FactoryAlias`: a statically-aliased but dynamically-disjoint heap
//!   flow — false positive for the flow-insensitive heap treatments
//!   (hybrid, CI) but not for CS (heap-through-calls);
//! - `ArrayConfusion` / `UnknownKeyMap`: conservative false positives for
//!   every configuration;
//! - `ThreadShared`: a real cross-thread flow that CS misses (its §7.2
//!   false negatives on multithreaded benchmarks);
//! - `DeepNested` / `LongChain`: real flows lost only by the fully
//!   optimized configuration's §6.2 bounds;
//! - `FarFalsePositive`: a spurious flow routed through a long helper
//!   chain, pruned by the §6.1 call-graph budget (prioritized runs report
//!   fewer false positives, as in the paper).

use taj_core::{GroundTruth, IssueType};

/// One pattern kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Reflected XSS: `getParameter` → `println`.
    XssReflected,
    /// XSS neutralized by `URLEncoder.encode`.
    XssSanitized,
    /// SQL injection via string concatenation.
    SqliConcat,
    /// SQLi neutralized by `encodeForSQL`.
    SqliSanitized,
    /// Command injection via `Runtime.exec`.
    CommandInjection,
    /// Malicious file execution via `new FileInputStream(tainted)`.
    MaliciousFile,
    /// Information leakage: `catch (Exception e) { out.println(e); }`.
    InfoLeak,
    /// XSS through an object field (heap flow).
    XssHeap,
    /// Nested taint: tainted string two fields deep, sink gets the outer
    /// wrapper object.
    NestedCarrier,
    /// Nested taint at dereference depth 3 — lost by the optimized
    /// configuration's depth-2 bound (§6.2.3).
    DeepNested,
    /// Real flow with a witness path longer than 14 — filtered by the
    /// optimized configuration (§6.2.2).
    LongChain,
    /// Two wrapper objects, only one tainted: CI merges contexts (FP).
    TwoBoxContext,
    /// Two maps from one allocation site in an object-sensitive helper:
    /// distinguished by hybrid/CS, merged by CI (FP).
    CollectionContext,
    /// Statically aliased, dynamically disjoint heap flow: FP for hybrid
    /// and CI (flow-insensitive heap), clean for CS.
    FactoryAlias,
    /// Index-insensitive array modeling: FP for every configuration.
    ArrayConfusion,
    /// Non-constant map keys: conservative FP for every configuration.
    UnknownKeyMap,
    /// Cross-thread flow through a shared object: CS false negative.
    ThreadShared,
    /// Session attribute flow with distinct constant keys (vulnerable
    /// under key "u", benign read under key "v").
    SessionAttr,
    /// Taint through `StringBuilder`.
    BuilderFlow,
    /// Reflective dispatch with method-name narrowing (Figure 1 style).
    ReflectInvoke,
    /// Struts action with a tainted `ActionForm` field.
    StrutsForm,
    /// EJB remote call carrying taint (requires the deployment
    /// descriptor).
    EjbFlow,
    /// A spurious (FactoryAlias-style) flow routed through a deep helper
    /// chain: pruned by the §6.1 node budget.
    FarFalsePositive,
    /// A spurious flow whose witness path exceeds the §6.2.2 length bound:
    /// reported by unbounded/prioritized runs, filtered by the optimized
    /// one (the paper's "longer flows are less likely true positives").
    LongSpurious,
}

impl Pattern {
    /// All patterns, in a stable order.
    pub fn all() -> &'static [Pattern] {
        use Pattern::*;
        &[
            XssReflected,
            XssSanitized,
            SqliConcat,
            SqliSanitized,
            CommandInjection,
            MaliciousFile,
            InfoLeak,
            XssHeap,
            NestedCarrier,
            DeepNested,
            LongChain,
            TwoBoxContext,
            CollectionContext,
            FactoryAlias,
            ArrayConfusion,
            UnknownKeyMap,
            ThreadShared,
            SessionAttr,
            BuilderFlow,
            ReflectInvoke,
            StrutsForm,
            EjbFlow,
            FarFalsePositive,
            LongSpurious,
        ]
    }

    /// Short name used in class-name prefixes.
    pub fn tag(self) -> &'static str {
        use Pattern::*;
        match self {
            XssReflected => "XssRefl",
            XssSanitized => "XssSan",
            SqliConcat => "Sqli",
            SqliSanitized => "SqliSan",
            CommandInjection => "Cmd",
            MaliciousFile => "MalFile",
            InfoLeak => "Leak",
            XssHeap => "XssHeap",
            NestedCarrier => "Nested",
            DeepNested => "Deep",
            LongChain => "Long",
            TwoBoxContext => "TwoBox",
            CollectionContext => "CollCtx",
            FactoryAlias => "FactAlias",
            ArrayConfusion => "ArrConf",
            UnknownKeyMap => "UnkKey",
            ThreadShared => "Thread",
            SessionAttr => "Session",
            BuilderFlow => "Builder",
            ReflectInvoke => "Reflect",
            StrutsForm => "Struts",
            EjbFlow => "Ejb",
            FarFalsePositive => "FarFp",
            LongSpurious => "LongFp",
        }
    }
}

/// Emits one instance of `pattern` with unique suffix `id` into `out`,
/// recording ground truth. Returns the EJB descriptor entry when the
/// pattern needs one.
pub fn emit(
    pattern: Pattern,
    id: usize,
    out: &mut String,
    truth: &mut GroundTruth,
) -> Option<taj_core::EjbEntry> {
    let p = format!("{}{}", pattern.tag(), id);
    match pattern {
        Pattern::XssReflected => {
            out.push_str(&format!(
                r#"
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        String v = req.getParameter("q{id}");
        PrintWriter w = resp.getWriter();
        w.println(v);
    }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Page"), IssueType::Xss);
        }
        Pattern::XssSanitized => {
            out.push_str(&format!(
                r#"
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        String v = req.getParameter("q{id}");
        String clean = URLEncoder.encode(v);
        resp.getWriter().println(clean);
    }}
}}
"#
            ));
            truth.add_benign(format!("{p}Page"), IssueType::Xss);
        }
        Pattern::SqliConcat => {
            out.push_str(&format!(
                r#"
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        String uid = req.getParameter("id{id}");
        Connection c = DriverManager.getConnection("jdbc:app");
        Statement st = c.createStatement();
        st.executeQuery("SELECT * FROM t WHERE id=" + uid);
    }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Page"), IssueType::Sqli);
        }
        Pattern::SqliSanitized => {
            out.push_str(&format!(
                r#"
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        String uid = Encoder.encodeForSQL(req.getParameter("id{id}"));
        Connection c = DriverManager.getConnection("jdbc:app");
        Statement st = c.createStatement();
        st.executeQuery("SELECT * FROM t WHERE id=" + uid);
    }}
}}
"#
            ));
            truth.add_benign(format!("{p}Page"), IssueType::Sqli);
        }
        Pattern::CommandInjection => {
            out.push_str(&format!(
                r#"
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        String cmd = req.getParameter("cmd{id}");
        Runtime r = Runtime.getRuntime();
        r.exec("convert " + cmd);
    }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Page"), IssueType::CommandInjection);
        }
        Pattern::MaliciousFile => {
            out.push_str(&format!(
                r#"
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        String path = req.getParameter("f{id}");
        FileInputStream in = new FileInputStream(path);
        resp.getWriter().println("ok");
    }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Page"), IssueType::MaliciousFile);
        }
        Pattern::InfoLeak => {
            out.push_str(&format!(
                r#"
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        PrintWriter w = resp.getWriter();
        try {{ this.work(); }} catch (Exception e) {{ w.println(e); }}
    }}
    method void work() {{ throw new RuntimeException("internal state"); }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Page"), IssueType::InfoLeak);
        }
        Pattern::XssHeap => {
            out.push_str(&format!(
                r#"
class {p}Bean {{
    field String value;
    ctor () {{ }}
}}
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        {p}Bean bean = new {p}Bean();
        bean.value = req.getParameter("v{id}");
        String out = bean.value;
        resp.getWriter().println(out);
    }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Page"), IssueType::Xss);
        }
        Pattern::NestedCarrier => {
            out.push_str(&format!(
                r#"
class {p}Inner {{
    field String s;
    ctor (String s) {{ this.s = s; }}
}}
class {p}Outer {{
    field {p}Inner inner;
    ctor ({p}Inner i) {{ this.inner = i; }}
}}
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        {p}Inner inner = new {p}Inner(req.getParameter("n{id}"));
        {p}Outer outer = new {p}Outer(inner);
        resp.getWriter().println(outer);
    }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Page"), IssueType::Xss);
        }
        Pattern::DeepNested => {
            // The tainted string lives in an object 3 dereferences below
            // the sink argument — beyond the optimized configuration's
            // depth-2 bound (§6.2.3), within reach of the unbounded one.
            out.push_str(&format!(
                r#"
class {p}L4 {{ field String s; ctor (String s) {{ this.s = s; }} }}
class {p}L3 {{ field {p}L4 c; ctor ({p}L4 c) {{ this.c = c; }} }}
class {p}L2 {{ field {p}L3 c; ctor ({p}L3 c) {{ this.c = c; }} }}
class {p}L1 {{ field {p}L2 c; ctor ({p}L2 c) {{ this.c = c; }} }}
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        {p}L4 l4 = new {p}L4(req.getParameter("d{id}"));
        {p}L3 l3 = new {p}L3(l4);
        {p}L2 l2 = new {p}L2(l3);
        {p}L1 l1 = new {p}L1(l2);
        resp.getWriter().println(l1);
    }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Page"), IssueType::Xss);
        }
        Pattern::LongChain => {
            // Chain 18 local transformations so the witness path exceeds
            // the optimized configuration's flow-length bound of 14
            // (summary edges keep *interprocedural* paths short, so the
            // length must accumulate in straight-line dataflow).
            let mut chain = String::new();
            for i in 0..18 {
                let prev = if i == 0 { "v".to_string() } else { format!("v{}", i - 1) };
                chain.push_str(&format!("        String v{i} = \"s\" + {prev};\n"));
            }
            out.push_str(&format!(
                r#"
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        String v = req.getParameter("l{id}");
{chain}        resp.getWriter().println(v17);
    }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Page"), IssueType::Xss);
        }
        Pattern::TwoBoxContext => {
            out.push_str(&format!(
                r#"
class {p}Box {{
    field String v;
    ctor (String v) {{ this.v = v; }}
    method String get() {{ return this.v; }}
}}
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        {p}Box dirty = new {p}Box(req.getParameter("t{id}"));
        {p}Box clean = new {p}Box("static");
        PrintWriter w = resp.getWriter();
        w.println(dirty.get());
    }}
}}
class {p}CleanPage extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        String seed = req.getParameter("t{id}b");
        {p}Box poison = new {p}Box(seed);
        {p}Box clean = new {p}Box("constant");
        resp.getWriter().println(clean.get());
    }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Page"), IssueType::Xss);
            truth.add_benign(format!("{p}CleanPage"), IssueType::Xss);
        }
        Pattern::CollectionContext => {
            // Maps allocated inside an object-sensitive holder: collection
            // heap cloning separates them for hybrid/CS; CI merges.
            out.push_str(&format!(
                r#"
class {p}Holder {{
    field HashMap map;
    ctor () {{ this.map = new HashMap(); }}
    method void set(String v) {{
        HashMap m = this.map;
        m.put("k", v);
    }}
    method Object get() {{
        HashMap m = this.map;
        return m.get("k");
    }}
}}
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        {p}Holder dirty = new {p}Holder();
        dirty.set(req.getParameter("c{id}"));
        {p}Holder clean = new {p}Holder();
        clean.set("static");
        resp.getWriter().println(dirty.get());
    }}
}}
class {p}CleanPage extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        {p}Holder poison = new {p}Holder();
        poison.set(req.getParameter("c{id}b"));
        {p}Holder clean = new {p}Holder();
        clean.set("constant");
        resp.getWriter().println(clean.get());
    }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Page"), IssueType::Xss);
            truth.add_benign(format!("{p}CleanPage"), IssueType::Xss);
        }
        Pattern::FactoryAlias => {
            // One allocation site produces widgets for two disjoint pages:
            // flow-insensitive direct edges connect them (hybrid/CI FP);
            // CS needs a call path and stays clean.
            out.push_str(&format!(
                r#"
class {p}Widget {{
    field String data;
    ctor () {{ }}
}}
class {p}Factory {{
    static method {p}Widget make() {{ return new {p}Widget(); }}
}}
class {p}WriterPage extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        {p}Widget w = {p}Factory.make();
        w.data = req.getParameter("w{id}");
    }}
}}
class {p}ReaderPage extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        {p}Widget w = {p}Factory.make();
        String v = w.data;
        resp.getWriter().println(v);
    }}
}}
"#
            ));
            truth.add_benign(format!("{p}ReaderPage"), IssueType::Xss);
        }
        Pattern::ArrayConfusion => {
            out.push_str(&format!(
                r#"
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        String[] slots = new String[2];
        slots[0] = req.getParameter("a{id}");
        slots[1] = "static";
        String v = slots[1];
        resp.getWriter().println(v);
    }}
}}
"#
            ));
            truth.add_benign(format!("{p}Page"), IssueType::Xss);
        }
        Pattern::UnknownKeyMap => {
            out.push_str(&format!(
                r#"
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        HashMap m = new HashMap();
        String k = req.getHeader("which{id}");
        m.put(k, req.getParameter("u{id}"));
        Object v = m.get("fixed{id}");
        resp.getWriter().println(v);
    }}
}}
"#
            ));
            truth.add_benign(format!("{p}Page"), IssueType::Xss);
        }
        Pattern::ThreadShared => {
            out.push_str(&format!(
                r#"
class {p}Shared {{ field String v; ctor () {{ }} }}
class {p}Worker implements Runnable {{
    field {p}Shared shared;
    field HttpServletRequest req;
    ctor ({p}Shared s, HttpServletRequest r) {{ this.shared = s; this.req = r; }}
    method void run() {{
        {p}Shared s = this.shared;
        HttpServletRequest r = this.req;
        s.v = r.getParameter("th{id}");
    }}
}}
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        {p}Shared s = new {p}Shared();
        Thread t = new Thread(new {p}Worker(s, req));
        t.start();
        String out = s.v;
        resp.getWriter().println(out);
    }}
}}
"#
            ));
            // The real flow crosses the spawned thread: record it in the
            // cross-thread subset so harnesses can check which configs
            // recover it.
            truth.add_cross_thread(format!("{p}Page"), IssueType::Xss);
        }
        Pattern::SessionAttr => {
            out.push_str(&format!(
                r#"
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        HttpSession s = req.getSession();
        s.setAttribute("user{id}", req.getParameter("s{id}"));
        Object v = s.getAttribute("user{id}");
        resp.getWriter().println(v);
    }}
}}
class {p}CleanPage extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        HttpSession s = req.getSession();
        s.setAttribute("poison{id}", req.getParameter("sc{id}"));
        s.setAttribute("fine{id}", "constant");
        Object v = s.getAttribute("fine{id}");
        resp.getWriter().println(v);
    }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Page"), IssueType::Xss);
            truth.add_benign(format!("{p}CleanPage"), IssueType::Xss);
        }
        Pattern::BuilderFlow => {
            out.push_str(&format!(
                r#"
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        StringBuilder sb = new StringBuilder();
        sb.append("<div>");
        sb.append(req.getParameter("b{id}"));
        sb.append("</div>");
        resp.getWriter().println(sb.toString());
    }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Page"), IssueType::Xss);
        }
        Pattern::ReflectInvoke => {
            out.push_str(&format!(
                r#"
class {p}Target {{
    method String id(String x) {{ return x; }}
    method String version(String x) {{ return "1.0"; }}
}}
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        String v = req.getParameter("r{id}");
        Class k = Class.forName("{p}Target");
        Method[] ms = k.getMethods();
        Method idm = null;
        for (int i = 0; i < ms.length; i = i + 1) {{
            Method cand = ms[i];
            if (cand.getName().equals("id")) {{ idm = cand; }}
        }}
        {p}Target t = new {p}Target();
        Object r = idm.invoke(t, new Object[] {{ v }});
        resp.getWriter().println(r);
    }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Page"), IssueType::Xss);
        }
        Pattern::StrutsForm => {
            out.push_str(&format!(
                r#"
class {p}Form extends ActionForm {{
    field String username;
    ctor () {{ }}
}}
class {p}Action extends Action {{
    ctor () {{ }}
    method void execute(ActionMapping m, ActionForm f,
                        HttpServletRequest req, HttpServletResponse resp) {{
        {p}Form form = ({p}Form) f;
        String u = form.username;
        resp.getWriter().println(u);
    }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Action"), IssueType::Xss);
        }
        Pattern::EjbFlow => {
            out.push_str(&format!(
                r#"
interface {p}Home {{ method {p}Bean create(); }}
class {p}Bean {{
    ctor () {{ }}
    method String echo(String s) {{ return s; }}
}}
class {p}Page extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        String v = req.getParameter("e{id}");
        InitialContext ctx = new InitialContext();
        Object ref = ctx.lookup("java:comp/env/ejb/{p}");
        {p}Home home = ({p}Home) PortableRemoteObject.narrow(ref, null);
        {p}Bean bean = home.create();
        String out = bean.echo(v);
        resp.getWriter().println(out);
    }}
}}
"#
            ));
            truth.add_vulnerable(format!("{p}Page"), IssueType::Xss);
            return Some(taj_core::EjbEntry {
                jndi_name: format!("java:comp/env/ejb/{p}"),
                home_interface: format!("{p}Home"),
                bean_class: format!("{p}Bean"),
            });
        }
        Pattern::FarFalsePositive => {
            // FactoryAlias through a 25-deep helper chain: under the §6.1
            // node budget the chain ranks far from taint and is pruned.
            let mut chain = String::new();
            for i in 0..25 {
                let inner = if i == 24 {
                    format!("{p}Factory.make()")
                } else {
                    format!("{p}Chain.c{}()", i + 1)
                };
                chain.push_str(&format!(
                    "    static method {p}Widget c{i}() {{ return {inner}; }}\n"
                ));
            }
            out.push_str(&format!(
                r#"
class {p}Widget {{
    field String data;
    ctor () {{ }}
}}
class {p}Factory {{
    static method {p}Widget make() {{ return new {p}Widget(); }}
}}
class {p}Chain {{
{chain}}}
class {p}WriterPage extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        {p}Widget w = {p}Chain.c0();
        w.data = req.getParameter("fw{id}");
    }}
}}
class {p}ReaderPage extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        {p}Widget w = {p}Chain.c0();
        String v = w.data;
        resp.getWriter().println(v);
    }}
}}
"#
            ));
            truth.add_benign(format!("{p}ReaderPage"), IssueType::Xss);
        }
        Pattern::LongSpurious => {
            // Statically-aliased widgets (as in FactoryAlias) plus an
            // 18-step local concat chain in the reader: the spurious
            // witness path exceeds the optimized flow-length bound, so
            // only the unbounded and prioritized runs report it. The
            // reader touches a source so the §6.1 priority scheme keeps
            // it within budget.
            let mut chain = String::new();
            for i in 0..18 {
                let prev = if i == 0 { "v".to_string() } else { format!("v{}", i - 1) };
                chain.push_str(&format!("        String v{i} = \"x\" + {prev};\n"));
            }
            out.push_str(&format!(
                r#"
class {p}Widget {{
    field String data;
    ctor () {{ }}
}}
class {p}Factory {{
    static method {p}Widget make() {{ return new {p}Widget(); }}
}}
class {p}WriterPage extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        {p}Widget w = {p}Factory.make();
        w.data = req.getParameter("lw{id}");
    }}
}}
class {p}ReaderPage extends HttpServlet {{
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {{
        String probe = req.getParameter("probe{id}");
        {p}Widget w = {p}Factory.make();
        String v = w.data;
{chain}        resp.getWriter().println(v17);
    }}
}}
"#
            ));
            truth.add_benign(format!("{p}ReaderPage"), IssueType::Xss);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pattern_emits_parseable_code() {
        for (i, &p) in Pattern::all().iter().enumerate() {
            let mut out = String::new();
            let mut truth = GroundTruth::default();
            emit(p, i, &mut out, &mut truth);
            let parsed = jir::frontend::parse_program(&out);
            assert!(parsed.is_ok(), "pattern {p:?} fails to parse: {:?}\n{out}", parsed.err());
            assert!(
                !truth.vulnerable.is_empty() || !truth.benign.is_empty(),
                "pattern {p:?} records no ground truth"
            );
        }
    }

    #[test]
    fn instances_are_disjoint() {
        let mut out = String::new();
        let mut truth = GroundTruth::default();
        emit(Pattern::XssReflected, 0, &mut out, &mut truth);
        emit(Pattern::XssReflected, 1, &mut out, &mut truth);
        assert!(jir::frontend::parse_program(&out).is_ok(), "two instances must coexist");
        assert_eq!(truth.vulnerable.len(), 2);
    }

    #[test]
    fn ejb_pattern_returns_descriptor_entry() {
        let mut out = String::new();
        let mut truth = GroundTruth::default();
        let entry = emit(Pattern::EjbFlow, 0, &mut out, &mut truth);
        assert!(entry.is_some());
    }
}
