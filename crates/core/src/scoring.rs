//! True/false-positive scoring against generated ground truth — the raw
//! material of Figure 4 and the accuracy discussion of §7.2.
//!
//! Ground truth is expressed at the granularity the benchmark generator
//! controls: each seeded pattern lives in its own class, and is either
//! *vulnerable* (a real flow reaches the sink) or *benign* (a confusable
//! pattern with no real flow). A reported issue is matched by the class
//! containing its sink statement plus the issue type.

use std::collections::HashSet;

use serde::Serialize;

use crate::driver::TajReport;
use crate::rules::IssueType;

/// Ground truth for one benchmark.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// `(sink class, issue)` pairs that are genuinely vulnerable.
    pub vulnerable: HashSet<(String, IssueType)>,
    /// `(sink class, issue)` pairs that look suspicious but are safe.
    pub benign: HashSet<(String, IssueType)>,
    /// The subset of `vulnerable` whose real flow crosses a thread
    /// boundary (taint handed from one thread to another through a
    /// shared object) — the flows plain CS slicing is known to miss
    /// (§7.2).
    pub cross_thread: HashSet<(String, IssueType)>,
}

impl GroundTruth {
    /// Registers a vulnerable pattern.
    pub fn add_vulnerable(&mut self, class: impl Into<String>, issue: IssueType) {
        self.vulnerable.insert((class.into(), issue));
    }

    /// Registers a benign (confusable) pattern.
    pub fn add_benign(&mut self, class: impl Into<String>, issue: IssueType) {
        self.benign.insert((class.into(), issue));
    }

    /// Registers a vulnerable pattern whose flow crosses threads. Also
    /// records it as vulnerable.
    pub fn add_cross_thread(&mut self, class: impl Into<String>, issue: IssueType) {
        let class = class.into();
        self.vulnerable.insert((class.clone(), issue));
        self.cross_thread.insert((class, issue));
    }
}

/// Classification counts for one report against one ground truth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Score {
    /// Reported and really vulnerable.
    pub true_positives: usize,
    /// Reported but not really vulnerable.
    pub false_positives: usize,
    /// Vulnerable but not reported.
    pub false_negatives: usize,
}

impl Score {
    /// The paper's accuracy score: `TP / (TP + FP)` (§7.2).
    pub fn accuracy(&self) -> f64 {
        let total = self.true_positives + self.false_positives;
        if total == 0 {
            0.0
        } else {
            self.true_positives as f64 / total as f64
        }
    }

    /// Total reported issues that were classified.
    pub fn reported(&self) -> usize {
        self.true_positives + self.false_positives
    }
}

/// Scores a report: detections are the distinct `(sink class, issue)`
/// pairs among reported findings.
pub fn score(report: &TajReport, truth: &GroundTruth) -> Score {
    let mut detected: HashSet<(String, IssueType)> = HashSet::new();
    for f in &report.findings {
        detected.insert((f.flow.sink_owner_class.clone(), f.flow.issue));
    }
    let mut s = Score::default();
    for d in &detected {
        if truth.vulnerable.contains(d) {
            s.true_positives += 1;
        } else {
            s.false_positives += 1;
        }
    }
    for v in &truth.vulnerable {
        if !detected.contains(v) {
            s.false_negatives += 1;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{AnalysisStats, AnalyzedFlow, TajFinding, TajReport};

    fn flow(class: &str, issue: IssueType) -> TajFinding {
        TajFinding {
            flow: AnalyzedFlow {
                issue,
                source_method: "getParameter".into(),
                sink_method: "println".into(),
                sink_owner_class: class.into(),
                source_owner_class: class.into(),
                flow_len: 3,
                heap_transitions: 0,
            },
            lcp_owner_class: class.into(),
            group_size: 1,
        }
    }

    fn report(findings: Vec<TajFinding>) -> TajReport {
        TajReport {
            config: "test".into(),
            findings,
            flows: vec![],
            stats: AnalysisStats::default(),
            concurrency: Default::default(),
            degradation: Default::default(),
        }
    }

    #[test]
    fn classification_counts() {
        let mut truth = GroundTruth::default();
        truth.add_vulnerable("A", IssueType::Xss);
        truth.add_vulnerable("B", IssueType::Xss);
        truth.add_benign("C", IssueType::Xss);

        let r = report(vec![flow("A", IssueType::Xss), flow("C", IssueType::Xss)]);
        let s = score(&r, &truth);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.false_negatives, 1);
        assert!((s.accuracy() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn duplicate_findings_counted_once() {
        let mut truth = GroundTruth::default();
        truth.add_vulnerable("A", IssueType::Xss);
        let r = report(vec![flow("A", IssueType::Xss), flow("A", IssueType::Xss)]);
        let s = score(&r, &truth);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 0);
    }

    #[test]
    fn issue_type_distinguishes() {
        let mut truth = GroundTruth::default();
        truth.add_vulnerable("A", IssueType::Sqli);
        let r = report(vec![flow("A", IssueType::Xss)]);
        let s = score(&r, &truth);
        assert_eq!(s.true_positives, 0);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.false_negatives, 1);
    }

    #[test]
    fn empty_report_scores_zero_accuracy() {
        let truth = GroundTruth::default();
        let s = score(&report(vec![]), &truth);
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.reported(), 0);
    }
}
