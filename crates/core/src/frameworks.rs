//! Web-framework modeling (§4.2.2): entrypoint synthesis for servlets,
//! Struts actions (tainted `ActionForm` population guided by cast
//! constraints), and EJB remote-call modeling driven by a deployment
//! descriptor.

use jir::class::Class;
use jir::inst::{CallTarget, Inst, Terminator, Var};
use jir::method::{BasicBlock, Body, Method, MethodKind};
use jir::{ClassId, Filter, MethodId, Program, TypeId};

/// Name of the synthetic class holding synthesized entrypoints.
pub const ENTRY_CLASS: &str = "$Entrypoints";

/// An EJB deployment descriptor: what the paper reads from `ejb-jar.xml`
/// to bypass the container (§4.2.2).
#[derive(Clone, Debug, Default)]
pub struct DeploymentDescriptor {
    /// One entry per deployed bean.
    pub entries: Vec<EjbEntry>,
}

/// One deployed enterprise bean.
#[derive(Clone, Debug)]
pub struct EjbEntry {
    /// JNDI name used in `InitialContext.lookup`.
    pub jndi_name: String,
    /// The home interface (declares `create`).
    pub home_interface: String,
    /// The bean implementation class.
    pub bean_class: String,
}

/// Small helper for building synthetic method bodies.
struct BodyBuilder {
    body: Body,
}

impl BodyBuilder {
    fn new() -> Self {
        let mut body = Body::default();
        body.blocks.push(BasicBlock::default());
        BodyBuilder { body }
    }

    fn fresh(&mut self, p: &mut Program, ty: TypeId) -> Var {
        let v = self.body.fresh_var();
        self.body.var_types.push(ty);
        let _ = p;
        v
    }

    fn emit(&mut self, inst: Inst) {
        self.body.blocks[0].insts.push(inst);
    }

    /// `v = new C; C.<init>()` (0-ary constructor when present).
    fn new_object(&mut self, p: &mut Program, class: ClassId) -> Var {
        let ty = p.types.class(class);
        let v = self.fresh(p, ty);
        self.emit(Inst::New { dst: v, class });
        if let Some(init) = find_ctor(p, class, 0) {
            self.emit(Inst::Call {
                dst: None,
                target: CallTarget::Special(init),
                recv: Some(v),
                args: vec![],
            });
        }
        v
    }

    fn finish(mut self) -> Body {
        self.body.blocks[0].term = Terminator::Return(None);
        self.body
    }
}

fn find_ctor(p: &Program, class: ClassId, arity: usize) -> Option<MethodId> {
    let mut cur = Some(class);
    while let Some(c) = cur {
        if let Some(m) = p.class(c).methods.iter().copied().find(|&m| {
            let meth = p.method(m);
            meth.name == "<init>" && meth.params.len() == arity
        }) {
            return Some(m);
        }
        cur = p.class(c).superclass;
    }
    None
}

/// Ensures the synthetic entrypoint class exists and returns it.
fn entry_class(p: &mut Program) -> ClassId {
    if let Some(c) = p.class_by_name(ENTRY_CLASS) {
        return c;
    }
    let mut class = Class::new(ENTRY_CLASS);
    class.superclass = p.class_by_name("Object");
    p.add_class(class)
}

fn add_entry_method(p: &mut Program, name: String, body: Body) -> MethodId {
    let owner = entry_class(p);
    let void = p.types.void();
    let mid = p.add_method(Method {
        name,
        owner,
        params: vec![],
        ret: void,
        is_static: true,
        kind: MethodKind::Body(body),
        is_factory: false,
    });
    p.entrypoints.push(mid);
    mid
}

/// Synthesizes all entrypoints: `main` methods, servlet lifecycles, and
/// Struts actions. Returns the number of entrypoints created.
pub fn synthesize_entrypoints(p: &mut Program) -> usize {
    let before = p.entrypoints.len();
    collect_main_entrypoints(p);
    synthesize_servlet_entrypoints(p);
    synthesize_struts_entrypoints(p);
    p.entrypoints.len() - before
}

fn collect_main_entrypoints(p: &mut Program) {
    let mains: Vec<MethodId> = p
        .iter_methods()
        .filter(|(_, m)| {
            m.is_static
                && m.name == "main"
                && m.params.is_empty()
                && m.body().is_some()
                && !p.class(m.owner).is_library
        })
        .map(|(id, _)| id)
        .collect();
    for m in mains {
        if !p.entrypoints.contains(&m) {
            p.entrypoints.push(m);
        }
    }
}

/// For each concrete application subclass of `HttpServlet`, synthesize
/// `$entry$<C>()` driving `doGet` and `doPost` with fresh request/response
/// objects (whose constructors wire up the session).
fn synthesize_servlet_entrypoints(p: &mut Program) {
    let Some(servlet) = p.class_by_name("HttpServlet") else { return };
    let Some(req_c) = p.class_by_name("HttpServletRequest") else { return };
    let Some(resp_c) = p.class_by_name("HttpServletResponse") else { return };
    let subclasses: Vec<ClassId> = p
        .iter_classes()
        .filter(|(id, c)| {
            !c.is_library && !c.is_interface && *id != servlet && p.is_subtype(*id, servlet)
        })
        .map(|(id, _)| id)
        .collect();
    for sc in subclasses {
        let mut b = BodyBuilder::new();
        let servlet_obj = b.new_object(p, sc);
        let req = b.new_object(p, req_c);
        let resp = b.new_object(p, resp_c);
        for lifecycle in ["doGet", "doPost"] {
            if let Some(m) = p.method_by_name(sc, lifecycle) {
                if p.method(m).body().is_some() && !p.class(p.method(m).owner).is_library {
                    let sel = p.selector(lifecycle, 2);
                    b.emit(Inst::Call {
                        dst: None,
                        target: CallTarget::Virtual(sel),
                        recv: Some(servlet_obj),
                        args: vec![req, resp],
                    });
                }
            }
        }
        let name = format!("$entry${}", p.class(sc).name);
        add_entry_method(p, name, b.finish());
    }
}

/// For each concrete application subclass of `Action`, synthesize an
/// entrypoint that populates compatible `ActionForm` subtypes with tainted
/// values (recursively, as fields may be of compound types — §4.2.2) and
/// invokes `execute`.
fn synthesize_struts_entrypoints(p: &mut Program) {
    let Some(action) = p.class_by_name("Action") else { return };
    let Some(form_base) = p.class_by_name("ActionForm") else { return };
    let Some(mapping_c) = p.class_by_name("ActionMapping") else { return };
    let Some(req_c) = p.class_by_name("HttpServletRequest") else { return };
    let Some(resp_c) = p.class_by_name("HttpServletResponse") else { return };
    let Some(struts) = p.class_by_name("Struts") else { return };
    let Some(tainted_input) = p.method_by_name(struts, "taintedInput") else { return };

    let actions: Vec<ClassId> = p
        .iter_classes()
        .filter(|(id, c)| {
            !c.is_library && !c.is_interface && *id != action && p.is_subtype(*id, action)
        })
        .map(|(id, _)| id)
        .collect();
    for ac in actions {
        let Some(execute) = p.method_by_name(ac, "execute") else { continue };
        if p.class(p.method(execute).owner).is_library {
            continue; // no override: nothing interesting to drive
        }
        // Which ActionForm subtypes does execute cast its form to?
        let cast_targets = cast_constraints(p, execute, form_base);
        let forms: Vec<ClassId> = if cast_targets.is_empty() {
            p.iter_classes()
                .filter(|(id, c)| !c.is_interface && !c.is_library && p.is_subtype(*id, form_base))
                .map(|(id, _)| id)
                .collect()
        } else {
            cast_targets
        };

        let mut b = BodyBuilder::new();
        let a = b.new_object(p, ac);
        let mapping = b.new_object(p, mapping_c);
        let req = b.new_object(p, req_c);
        let resp = b.new_object(p, resp_c);
        for form_class in forms {
            let f = b.new_object(p, form_class);
            populate_tainted(p, &mut b, f, form_class, tainted_input, 0);
            let sel = p.selector("execute", 4);
            b.emit(Inst::Call {
                dst: None,
                target: CallTarget::Virtual(sel),
                recv: Some(a),
                args: vec![mapping, f, req, resp],
            });
        }
        let name = format!("$entry${}", p.class(ac).name);
        add_entry_method(p, name, b.finish());
    }
}

/// Finds `InstanceOf` cast filters inside `method` whose target is a
/// subtype of `bound` — the constraint-driven form-subtype selection.
fn cast_constraints(p: &Program, method: MethodId, bound: ClassId) -> Vec<ClassId> {
    let mut out = Vec::new();
    let Some(body) = p.method(method).body() else { return out };
    for block in &body.blocks {
        for inst in &block.insts {
            if let Inst::Assign { filter: Some(Filter::InstanceOf(c)), .. } = inst {
                if p.is_subtype(*c, bound) && !p.class(*c).is_interface && !out.contains(c) {
                    out.push(*c);
                }
            }
        }
    }
    out
}

/// Recursively assigns tainted values to every field of `obj` (the
/// "synthetic constructor which assigns tainted values to all its fields…
/// done recursively, as fields may be of compound types").
fn populate_tainted(
    p: &mut Program,
    b: &mut BodyBuilder,
    obj: Var,
    class: ClassId,
    tainted_input: MethodId,
    depth: usize,
) {
    if depth > 2 {
        return;
    }
    let str_ty = p.types.string();
    // Collect the whole field set up the superclass chain.
    let mut fields = Vec::new();
    let mut cur = Some(class);
    while let Some(c) = cur {
        fields.extend(p.class(c).fields.iter().copied());
        cur = p.class(c).superclass;
    }
    for field in fields {
        let fdecl = p.field(field);
        if fdecl.is_static {
            continue;
        }
        let fty = fdecl.ty;
        if fty == str_ty {
            let t = b.fresh(p, str_ty);
            b.emit(Inst::Call {
                dst: Some(t),
                target: CallTarget::Static(tainted_input),
                recv: None,
                args: vec![],
            });
            b.emit(Inst::Store { base: obj, field, src: t });
        } else if let jir::Type::Class(c2) = p.types.resolve(fty) {
            let c2_decl = p.class(c2);
            if !c2_decl.is_interface && !c2_decl.is_library {
                let inner = b.new_object(p, c2);
                populate_tainted(p, b, inner, c2, tainted_input, depth + 1);
                b.emit(Inst::Store { base: obj, field, src: inner });
            }
        }
    }
}

/// Applies EJB modeling (§4.2.2): synthesizes a container-bypassing home
/// class per descriptor entry and rewrites matching `lookup` calls into
/// allocations of it. Returns the number of rewritten lookup sites.
pub fn apply_ejb_descriptor(p: &mut Program, descriptor: &DeploymentDescriptor) -> usize {
    let mut rewritten = 0;
    for entry in &descriptor.entries {
        let Some(home_iface) = p.class_by_name(&entry.home_interface) else { continue };
        let Some(bean) = p.class_by_name(&entry.bean_class) else { continue };
        // Synthetic home implementation.
        let home_name = format!("$EJBHome${}", entry.bean_class);
        let home_class = match p.class_by_name(&home_name) {
            Some(c) => c,
            None => {
                let mut class = Class::new(home_name.clone());
                class.superclass = p.class_by_name("Object");
                class.interfaces.push(home_iface);
                class.is_library = true; // container glue
                let cid = p.add_class(class);
                // method create() { b = new Bean; <init>; return b; }
                let bean_ty = p.types.class(bean);
                let mut body = Body::default();
                body.blocks.push(BasicBlock::default());
                let this_v = body.fresh_var();
                body.var_types.push(p.types.class(cid));
                debug_assert_eq!(this_v, Var(0));
                let bv = body.fresh_var();
                body.var_types.push(bean_ty);
                body.blocks[0].insts.push(Inst::New { dst: bv, class: bean });
                if let Some(init) = find_ctor(p, bean, 0) {
                    body.blocks[0].insts.push(Inst::Call {
                        dst: None,
                        target: CallTarget::Special(init),
                        recv: Some(bv),
                        args: vec![],
                    });
                }
                body.blocks[0].term = Terminator::Return(Some(bv));
                p.add_method(Method {
                    name: "create".into(),
                    owner: cid,
                    params: vec![],
                    ret: bean_ty,
                    is_static: false,
                    kind: MethodKind::Body(body),
                    is_factory: false,
                });
                cid
            }
        };
        // Rewrite `lookup("<jndi>")` calls (resolved by receiver static
        // type) into `new $EJBHome$Bean`.
        rewritten += rewrite_lookups(p, &entry.jndi_name, home_class);
    }
    rewritten
}

fn rewrite_lookups(p: &mut Program, jndi: &str, home_class: ClassId) -> usize {
    let Some(ic) = p.class_by_name("InitialContext") else { return 0 };
    let Some(lookup) = p.method_by_name(ic, "lookup") else { return 0 };
    let mut count = 0;
    for mid in 0..p.methods.len() {
        if p.methods[mid].body().is_none() {
            continue;
        }
        let mut body = std::mem::take(p.methods[mid].body_mut().expect("has body"));
        let dm_keys: Vec<(usize, usize, Var)> = {
            let dm = jir::constprop::DefMap::build(&body);
            let mut hits = Vec::new();
            for (bi, block) in body.blocks.iter().enumerate() {
                for (ii, inst) in block.insts.iter().enumerate() {
                    if let Inst::Call { dst: Some(d), target, recv: Some(r), args } = inst {
                        let is_lookup = match target {
                            CallTarget::Virtual(sel) => {
                                let s = p.resolve_selector(*sel);
                                s.name == "lookup"
                                    && s.arity == 1
                                    && body
                                        .var_types
                                        .get(r.index())
                                        .and_then(|t| p.types.resolve(*t).as_class())
                                        .map(|c| p.resolve_virtual(c, *sel) == Some(lookup))
                                        .unwrap_or(false)
                            }
                            CallTarget::Special(m) | CallTarget::Static(m) => *m == lookup,
                        };
                        if is_lookup {
                            if let Some(&arg) = args.first() {
                                if dm.constant_string(arg) == Some(jndi) {
                                    hits.push((bi, ii, *d));
                                }
                            }
                        }
                    }
                }
            }
            hits
        };
        for (bi, ii, d) in dm_keys {
            body.blocks[bi].insts[ii] = Inst::New { dst: d, class: home_class };
            count += 1;
        }
        *p.methods[mid].body_mut().expect("has body") = body;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn servlet_entrypoint_synthesized() {
        let mut p = jir::frontend::parse_program(
            r#"
            class MyServlet extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) { }
            }
            "#,
        )
        .unwrap();
        let n = synthesize_entrypoints(&mut p);
        assert_eq!(n, 1);
        let entry = p.entrypoints[0];
        assert_eq!(p.method(entry).name, "$entry$MyServlet");
        let body = p.method(entry).body().unwrap();
        let calls = body.blocks[0].insts.iter().filter(|i| i.is_call()).count();
        assert!(calls >= 1, "drives doGet");
    }

    #[test]
    fn main_method_is_entrypoint() {
        let mut p =
            jir::frontend::parse_program("class App { static method void main() { } }").unwrap();
        synthesize_entrypoints(&mut p);
        assert_eq!(p.entrypoints.len(), 1);
        assert_eq!(p.method(p.entrypoints[0]).name, "main");
    }

    #[test]
    fn struts_action_populated_with_cast_constraint() {
        let mut p = jir::frontend::parse_program(
            r#"
            class LoginForm extends ActionForm {
                field String user;
                ctor () { }
            }
            class OtherForm extends ActionForm {
                field String other;
                ctor () { }
            }
            class LoginAction extends Action {
                ctor () { }
                method void execute(ActionMapping m, ActionForm f,
                                    HttpServletRequest req, HttpServletResponse resp) {
                    LoginForm lf = (LoginForm) f;
                }
            }
            "#,
        )
        .unwrap();
        synthesize_entrypoints(&mut p);
        let entry = *p.entrypoints.last().unwrap();
        assert_eq!(p.method(entry).name, "$entry$LoginAction");
        let body = p.method(entry).body().unwrap();
        // Only LoginForm should be instantiated (cast constraint), with a
        // tainted store into its `user` field.
        let login_form = p.class_by_name("LoginForm").unwrap();
        let other_form = p.class_by_name("OtherForm").unwrap();
        let news: Vec<ClassId> = body.blocks[0]
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::New { class, .. } => Some(*class),
                _ => None,
            })
            .collect();
        assert!(news.contains(&login_form));
        assert!(!news.contains(&other_form), "cast constraint excludes OtherForm");
        let stores = body.blocks[0].insts.iter().filter(|i| matches!(i, Inst::Store { .. }));
        assert!(stores.count() >= 1, "tainted field population");
    }

    #[test]
    fn struts_without_casts_uses_all_forms() {
        let mut p = jir::frontend::parse_program(
            r#"
            class FormA extends ActionForm { field String a; ctor () { } }
            class FormB extends ActionForm { field String b; ctor () { } }
            class AnyAction extends Action {
                ctor () { }
                method void execute(ActionMapping m, ActionForm f,
                                    HttpServletRequest req, HttpServletResponse resp) { }
            }
            "#,
        )
        .unwrap();
        synthesize_entrypoints(&mut p);
        let entry = *p.entrypoints.last().unwrap();
        let body = p.method(entry).body().unwrap();
        let fa = p.class_by_name("FormA").unwrap();
        let fb = p.class_by_name("FormB").unwrap();
        let news: Vec<ClassId> = body.blocks[0]
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::New { class, .. } => Some(*class),
                _ => None,
            })
            .collect();
        assert!(news.contains(&fa) && news.contains(&fb));
    }

    #[test]
    fn ejb_lookup_rewritten() {
        let mut p = jir::frontend::parse_program(
            r#"
            interface EB2Home { method EB2Bean create(); }
            class EB2Bean {
                ctor () { }
                method void m2() { }
            }
            class Caller {
                method void call() {
                    InitialContext ctx = new InitialContext();
                    Object o = ctx.lookup("java:comp/env/ejb/EB2");
                    EB2Home home = (EB2Home) PortableRemoteObject.narrow(o, null);
                    EB2Bean bean = home.create();
                    bean.m2();
                }
            }
            "#,
        )
        .unwrap();
        let descriptor = DeploymentDescriptor {
            entries: vec![EjbEntry {
                jndi_name: "java:comp/env/ejb/EB2".into(),
                home_interface: "EB2Home".into(),
                bean_class: "EB2Bean".into(),
            }],
        };
        let n = apply_ejb_descriptor(&mut p, &descriptor);
        assert_eq!(n, 1, "one lookup rewritten");
        assert!(p.class_by_name("$EJBHome$EB2Bean").is_some());
        // The lookup call is now an allocation.
        let caller = p.class_by_name("Caller").unwrap();
        let call = p.method_by_name(caller, "call").unwrap();
        let body = p.method(call).body().unwrap();
        let has_home_alloc = body.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(i, Inst::New { class, .. }
                if p.class(*class).name == "$EJBHome$EB2Bean")
        });
        assert!(has_home_alloc);
    }

    #[test]
    fn unmatched_jndi_not_rewritten() {
        let mut p = jir::frontend::parse_program(
            r#"
            interface H { method Object create(); }
            class B { ctor () { } }
            class Caller {
                method void call() {
                    InitialContext ctx = new InitialContext();
                    Object o = ctx.lookup("some/other/name");
                }
            }
            "#,
        )
        .unwrap();
        let descriptor = DeploymentDescriptor {
            entries: vec![EjbEntry {
                jndi_name: "java:comp/env/ejb/B".into(),
                home_interface: "H".into(),
                bean_class: "B".into(),
            }],
        };
        assert_eq!(apply_ejb_descriptor(&mut p, &descriptor), 0);
    }
}
