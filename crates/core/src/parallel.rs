//! The parallel phase-2 engine: fans the driver's per-rule/per-seed
//! slice loop out over scoped worker threads pulling from a shared
//! work queue, then merges results deterministically.
//!
//! TAJ's phase 2 is embarrassingly parallel: every seed→sink slice is an
//! independent demand-driven traversal over the shared, immutable
//! phase-1 artifacts (points-to solution, call graph, heap graph,
//! escape/MHP). The engine here is deliberately `std`-only — scoped
//! threads (`std::thread::scope`), an `AtomicUsize` chunk cursor as the
//! work queue, and an `mpsc` channel to collect results — so the
//! workspace keeps building offline from `vendor/` with no new
//! dependencies.
//!
//! ## Determinism contract
//!
//! The engine never lets scheduling order reach the output:
//!
//! 1. The **unit list is fixed before any worker starts**, computed only
//!    from the configuration and the phase-1 artifacts — never from the
//!    thread count.
//! 2. Workers **steal unit indices** from a shared atomic cursor; each
//!    unit runs under its own [`Supervisor::fresh_meters`] handle
//!    (shared cancellation token and deadline, private step/memory
//!    meters), so budget trips are a per-unit-deterministic function of
//!    the unit's input.
//! 3. Results are **merged by unit index**, not completion order. The
//!    merge in `driver::run_phase2` keeps the prefix of units up to and
//!    including the first abnormal one (supervisor interrupt or
//!    out-of-budget error) and drops the rest — exactly the sequential
//!    engine's "stop at the first interrupt" break semantics.
//!
//! See `docs/parallel.md` for the full argument, including why the
//! report byte-stream is identical at every thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use taj_obs::Recorder;

#[cfg(doc)]
use taj_supervise::Supervisor;

/// Seeds per chunk when a rule's seed list is split into parallel units.
/// Small enough that a seed-heavy rule (the common shape: one dominant
/// rule per application) yields many units; large enough to amortize the
/// per-unit slicer construction and summary recomputation.
pub const SEED_CHUNK: usize = 4;

/// Resolves a requested thread count: `0` means auto — the `TAJ_THREADS`
/// environment variable if set to a positive integer (CI's thread-matrix
/// job uses this to force every `RunOptions::default()` run onto a given
/// count), else one worker per available core (falling back to 1 when
/// parallelism cannot be queried). Any other value is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    if let Some(n) = std::env::var("TAJ_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        if n != 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Order-preserving parallel indexed map: computes `f(0..len)` on up to
/// `threads` scoped workers and returns the results in index order.
///
/// Workers self-schedule by stealing the next index from a shared atomic
/// cursor, so a slow unit never blocks the queue behind it. With
/// `threads <= 1` (or a single element) the closure runs inline on the
/// caller's thread — the sequential reference path is the same code that
/// feeds the merge, not a separate engine.
///
/// A panicking closure propagates out of the scope after the remaining
/// workers drain, preserving the sequential engine's panic behavior
/// (relevant for `taj_failpoints`' `Panic` action).
pub fn par_map<T, F>(threads: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let workers = threads.min(len);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut out: Vec<Option<T>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                // A closed channel means the collector stopped listening
                // (it only stops after receiving everything or a panic);
                // either way there is nothing left to do.
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Collect on the calling thread; the loop ends when every worker
        // has dropped its sender (normally or by panicking).
        for (i, v) in rx {
            out[i] = Some(v);
        }
    });
    out.into_iter().map(|v| v.expect("every unit completed")).collect()
}

/// When one unit of a [`par_map_timed`] call ran, as measured on the
/// worker that executed it: start offset (microseconds since the
/// recorder's epoch) and duration. All zeros when the recorder is
/// disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnitTiming {
    /// Microseconds since the recorder's epoch at unit start.
    pub start_us: u64,
    /// Measured unit duration in microseconds.
    pub dur_us: u64,
}

/// [`par_map`] with per-unit wall-clock measurement: each result is
/// paired with the [`UnitTiming`] of the worker that ran it. The timing
/// is only *measured* here — recording it as a span is the caller's job,
/// done during the deterministic index-order merge, so scheduling can
/// never change which units appear in the trace. With a disabled
/// recorder no clocks are read at all (the cheap-when-disabled
/// discipline).
pub fn par_map_timed<T, F>(
    threads: usize,
    len: usize,
    recorder: &Recorder,
    f: F,
) -> Vec<(T, UnitTiming)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let enabled = recorder.is_enabled();
    par_map(threads, len, move |i| {
        if !enabled {
            return (f(i), UnitTiming::default());
        }
        let start_us = recorder.now_us();
        let started = Instant::now();
        let value = f(i);
        (value, UnitTiming { start_us, dur_us: started.elapsed().as_micros() as u64 })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_index_order() {
        for threads in [1, 2, 4, 8] {
            let got = par_map(threads, 100, |i| i * i);
            assert_eq!(got, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_map_caps_workers_at_len() {
        // More threads than work must not deadlock or drop results.
        assert_eq!(par_map(64, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn par_map_propagates_panics() {
        let r = std::panic::catch_unwind(|| {
            par_map(4, 16, |i| {
                if i == 5 {
                    panic!("unit 5 failed");
                }
                i
            })
        });
        assert!(r.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn par_map_timed_disabled_recorder_yields_zero_timings() {
        let rec = Recorder::disabled();
        for threads in [1, 4] {
            let got = par_map_timed(threads, 8, &rec, |i| i * 2);
            assert_eq!(
                got.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
                vec![0, 2, 4, 6, 8, 10, 12, 14]
            );
            assert!(got.iter().all(|(_, t)| t.start_us == 0 && t.dur_us == 0), "threads={threads}");
        }
    }

    #[test]
    fn par_map_timed_enabled_recorder_measures() {
        let rec = Recorder::new();
        let got = par_map_timed(2, 4, &rec, |i| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            i
        });
        assert!(got.iter().all(|(_, t)| t.dur_us > 0), "{got:?}");
    }
}
