//! Per-method summaries and structural diffing for incremental analysis.
//!
//! The daemon's artifact cache is content-addressed on the *whole* source
//! text, so a one-character edit misses every tier and forces a cold
//! re-solve. This module provides the unit of incrementality underneath
//! `analyze_delta`: each method of a prepared program gets a
//! [`MethodSummary`] — a 128-bit fingerprint of a *canonical, name-resolved
//! rendering* of its IR plus name-based dependency edges (calls, field
//! loads, field stores). A [`SummaryStore`] holds one summary per method
//! together with a program-level fingerprint.
//!
//! Given a base store and an edited program, [`SummaryStore::build_delta`]
//! computes the **dirty set** (methods whose fingerprint changed, plus
//! added methods), folds in the neighborhood of removed methods, and closes
//! the set transitively over the dependency graph (callers ∪ callees by
//! name/selector match ∪ field-coupled loader/storer pairs) to produce a
//! [`DeltaPlan`] — the *dirty region* whose phase-1 facts can no longer be
//! trusted.
//!
//! Two properties make the fingerprints safe to diff across independently
//! parsed programs:
//!
//! 1. **Name resolution.** The rendering resolves every interned id that is
//!    program-global (classes, fields, methods, selectors, types) to its
//!    source-level name; only method-*local* ids (registers, block ids,
//!    locations) are rendered raw. Two isomorphic methods therefore render
//!    identically even when their programs interned ids differently.
//! 2. **Determinism.** Parsing, model expansion, and SSA construction are
//!    deterministic in AST traversal order, so equal program fingerprints
//!    imply the two [`jir::Program`]s are isomorphic *with identical
//!    interned ids* — which is what lets the daemon reuse a base-keyed
//!    `Phase1` verbatim when the dirty region is empty (see
//!    `docs/incremental.md`).
//!
//! The summaries double as a pre-computed form of the pointer solver's
//! startup scan: [`SummaryStore::to_prescan`] reconstructs
//! [`taj_pointer::solver::PreScan`] (field-loader / method-store indexes
//! and the source-adjacent set that drives §6.1 priority mode) without
//! re-walking every instruction.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt::Write as _;

use jir::inst::{CallTarget, ConstValue, Filter, Inst, Terminator};
use jir::method::{MethodId, MethodKind};
use jir::pretty::type_name;
use jir::program::Program;
use taj_pointer::solver::PreScan;

// ---------------------------------------------------------------------------
// FNV-1a-128 (same construction as taj-store's content hash; duplicated here
// because taj-core does not depend on taj-store).
// ---------------------------------------------------------------------------

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// 128-bit FNV-1a over a byte string.
fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

// ---------------------------------------------------------------------------
// Summaries
// ---------------------------------------------------------------------------

/// A name-based call dependency recorded in a [`MethodSummary`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallDep {
    /// Static or special (constructor / `super`) call to a fixed target,
    /// identified by its qualified key `Owner.name#arity`.
    Direct(String),
    /// Virtual dispatch through a selector: `(name, arity)`. Resolution
    /// depends on the class hierarchy, so the edge couples the caller to
    /// *every* method matching the selector.
    Virtual(String, usize),
}

/// Summary of one method: canonical fingerprint plus name-based
/// dependency facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodSummary {
    /// Qualified key: `Owner.name#arity`, suffixed `/n` for the n-th
    /// duplicate (same owner, name, and arity) in method-table order.
    pub key: String,
    /// Declaring class name.
    pub owner: String,
    /// Method name.
    pub name: String,
    /// Declared (non-receiver) parameter count.
    pub arity: usize,
    /// FNV-1a-128 of the canonical rendering of the method.
    pub fingerprint: u128,
    /// Call edges, in body order.
    pub calls: Vec<CallDep>,
    /// Field keys (`Owner.field`) loaded by the body — instance *and*
    /// static loads, in body order, **duplicates preserved** so that
    /// [`SummaryStore::to_prescan`] reproduces the pointer solver's scan
    /// vectors exactly.
    pub loads: Vec<String>,
    /// Field keys stored by the body; same ordering contract as `loads`.
    pub stores: Vec<String>,
    /// Whether the method has an analyzable body (false for intrinsics
    /// and abstract methods).
    pub has_body: bool,
}

/// Per-method summaries for one prepared program, plus the program-level
/// fingerprint that guards whole-artifact reuse.
#[derive(Clone, Debug)]
pub struct SummaryStore {
    /// Fingerprint of the whole program: class shapes (names, hierarchy,
    /// fields, method lists), every method rendering, and entrypoints.
    /// Equality implies the programs are isomorphic with identical
    /// interned ids.
    pub program_fingerprint: u128,
    /// One summary per method, in method-table (id) order.
    pub methods: Vec<MethodSummary>,
    /// Key → index into `methods`.
    index: HashMap<String, usize>,
}

/// The result of diffing an edited program against a base
/// [`SummaryStore`]: which summaries changed and which transitively
/// depend on them.
#[derive(Clone, Debug)]
pub struct DeltaPlan {
    /// Keys whose fingerprint changed, plus keys new in the edited
    /// program. Sorted.
    pub dirty: Vec<String>,
    /// Keys present in the base but absent from the edited program.
    /// Sorted.
    pub removed: Vec<String>,
    /// Transitive closure of `dirty` (∪ neighbors of `removed`) over the
    /// edited dependency graph. Sorted. These are the methods whose
    /// phase-1 facts must be re-solved.
    pub region: Vec<String>,
    /// Total method count of the edited program.
    pub methods_total: usize,
}

impl DeltaPlan {
    /// True when nothing structural changed: no dirty, removed, or
    /// dependent methods. (Comment/whitespace-only edits land here.)
    pub fn region_empty(&self) -> bool {
        self.region.is_empty() && self.removed.is_empty()
    }

    /// Number of method summaries that must be re-solved.
    pub fn methods_resolved(&self) -> usize {
        self.region.len()
    }
}

// ---------------------------------------------------------------------------
// Canonical rendering
// ---------------------------------------------------------------------------

/// Renders one method into its canonical, name-resolved form.
///
/// This deliberately does **not** reuse [`jir::pretty`]: the debug printer
/// leaks raw interned ids in two places that would make fingerprints
/// id-dependent across edits ([`Filter::InstanceOf`] is printed via `Debug`
/// with the raw `ClassId`, and array load/store indices are omitted), and
/// virtual calls print only the selector name, collapsing distinct
/// arities. Here every program-global id resolves to a name; registers,
/// block ids, and locations are method-local and render raw.
pub fn render_method(program: &Program, mid: MethodId) -> String {
    let m = program.method(mid);
    let mut out = String::new();
    let owner = &program.class(m.owner).name;
    let _ = write!(
        out,
        "{}{}.{}#{}(",
        if m.is_static { "static " } else { "" },
        owner,
        m.name,
        m.params.len()
    );
    let params: Vec<String> = m.params.iter().map(|&t| type_name(program, t)).collect();
    let _ = writeln!(out, "{}) -> {} {{", params.join(","), type_name(program, m.ret));
    match &m.kind {
        MethodKind::Intrinsic(i) => {
            let _ = writeln!(out, "<intrinsic {i:?}>");
        }
        MethodKind::Abstract => {
            let _ = writeln!(out, "<abstract>");
        }
        MethodKind::Body(body) => {
            for (bid, block) in body.iter_blocks() {
                match block.handler {
                    Some(h) => {
                        let _ = writeln!(out, "{bid} handler {h}:");
                    }
                    None => {
                        let _ = writeln!(out, "{bid}:");
                    }
                }
                for inst in &block.insts {
                    let _ = writeln!(out, " {}", render_inst(program, inst));
                }
                let _ = writeln!(out, " {}", render_term(&block.term));
            }
        }
    }
    out.push('}');
    out
}

fn method_ref(program: &Program, mid: MethodId) -> String {
    let m = program.method(mid);
    format!("{}.{}#{}", program.class(m.owner).name, m.name, m.params.len())
}

fn field_ref(program: &Program, fid: jir::FieldId) -> String {
    let f = program.field(fid);
    format!("{}.{}", program.class(f.owner).name, f.name)
}

fn render_inst(program: &Program, inst: &Inst) -> String {
    match inst {
        Inst::Const { dst, value } => format!("{dst}=const {}", render_const(program, value)),
        Inst::Assign { dst, src, filter: None } => format!("{dst}={src}"),
        Inst::Assign { dst, src, filter: Some(Filter::InstanceOf(c)) } => {
            format!("{dst}={src} instanceof {}", program.class(*c).name)
        }
        Inst::Assign { dst, src, filter: Some(Filter::MethodNameEquals(n)) } => {
            format!("{dst}={src} nameq {n:?}")
        }
        Inst::New { dst, class } => format!("{dst}=new {}", program.class(*class).name),
        Inst::NewArray { dst, elem } => format!("{dst}=newarr {}", type_name(program, *elem)),
        Inst::Load { dst, base, field } => {
            format!("{dst}={base}.{}", field_ref(program, *field))
        }
        Inst::Store { base, field, src } => {
            format!("{base}.{}={src}", field_ref(program, *field))
        }
        Inst::StaticLoad { dst, field } => format!("{dst}=s:{}", field_ref(program, *field)),
        Inst::StaticStore { field, src } => format!("s:{}={src}", field_ref(program, *field)),
        Inst::ArrayLoad { dst, base, index: Some(i) } => format!("{dst}={base}[{i}]"),
        Inst::ArrayLoad { dst, base, index: None } => format!("{dst}={base}[*]"),
        Inst::ArrayStore { base, index: Some(i), src } => format!("{base}[{i}]={src}"),
        Inst::ArrayStore { base, index: None, src } => format!("{base}[*]={src}"),
        Inst::Call { dst, target, recv, args } => {
            let mut s = String::new();
            if let Some(d) = dst {
                let _ = write!(s, "{d}=");
            }
            match target {
                CallTarget::Static(m) => {
                    let _ = write!(s, "call {}", method_ref(program, *m));
                }
                CallTarget::Special(m) => {
                    let _ = write!(s, "special {}", method_ref(program, *m));
                }
                CallTarget::Virtual(sel) => {
                    let selector = program.resolve_selector(*sel);
                    let _ = write!(s, "virtual .{}#{}", selector.name, selector.arity);
                }
            }
            let _ = write!(s, "(");
            let mut first = true;
            if let Some(r) = recv {
                let _ = write!(s, "this={r}");
                first = false;
            }
            for a in args {
                if !first {
                    let _ = write!(s, ",");
                }
                let _ = write!(s, "{a}");
                first = false;
            }
            let _ = write!(s, ")");
            s
        }
        Inst::Binary { dst, op, lhs, rhs } => format!("{dst}={lhs} {op:?} {rhs}"),
        Inst::Phi { dst, srcs } => {
            let ops: Vec<String> = srcs.iter().map(|(b, v)| format!("{b}:{v}")).collect();
            format!("{dst}=phi({})", ops.join(","))
        }
        Inst::Select { dst, srcs } => {
            let ops: Vec<String> = srcs.iter().map(|v| format!("{v}")).collect();
            format!("{dst}=select({})", ops.join(","))
        }
        Inst::CatchBind { dst, class } => {
            format!("{dst}=catch {}", program.class(*class).name)
        }
    }
}

fn render_term(term: &Terminator) -> String {
    match term {
        Terminator::Goto(b) => format!("goto {b}"),
        Terminator::If { cond, then_bb, else_bb } => format!("if {cond} {then_bb} {else_bb}"),
        Terminator::Return(Some(v)) => format!("ret {v}"),
        Terminator::Return(None) => "ret".into(),
        Terminator::Throw(v) => format!("throw {v}"),
        Terminator::Unreachable => "unreachable".into(),
    }
}

fn render_const(program: &Program, value: &ConstValue) -> String {
    match value {
        ConstValue::Int(n) => n.to_string(),
        ConstValue::Bool(b) => b.to_string(),
        ConstValue::Str(s) => format!("{s:?}"),
        ConstValue::Null => "null".into(),
        ConstValue::ClassLit(c) => format!("class {}", program.class(*c).name),
    }
}

// ---------------------------------------------------------------------------
// Store construction
// ---------------------------------------------------------------------------

fn collect_deps(
    program: &Program,
    mid: MethodId,
) -> (Vec<CallDep>, Vec<String>, Vec<String>, bool) {
    let m = program.method(mid);
    let mut calls = Vec::new();
    let mut loads = Vec::new();
    let mut stores = Vec::new();
    let Some(body) = m.body() else {
        return (calls, loads, stores, false);
    };
    for (_bid, block) in body.iter_blocks() {
        for inst in &block.insts {
            match inst {
                Inst::Call { target, .. } => match target {
                    CallTarget::Static(t) | CallTarget::Special(t) => {
                        calls.push(CallDep::Direct(method_ref(program, *t)));
                    }
                    CallTarget::Virtual(sel) => {
                        let s = program.resolve_selector(*sel);
                        calls.push(CallDep::Virtual(s.name.clone(), s.arity));
                    }
                },
                Inst::Load { field, .. } | Inst::StaticLoad { field, .. } => {
                    loads.push(field_ref(program, *field));
                }
                Inst::Store { field, .. } | Inst::StaticStore { field, .. } => {
                    stores.push(field_ref(program, *field));
                }
                _ => {}
            }
        }
    }
    (calls, loads, stores, true)
}

impl SummaryStore {
    /// Builds summaries for every method of `program` (application,
    /// library, and synthetic methods alike — the fingerprint must cover
    /// everything that feeds the solver).
    pub fn build(program: &Program) -> SummaryStore {
        let mut methods = Vec::with_capacity(program.methods.len());
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut dup_count: HashMap<String, usize> = HashMap::new();
        let mut program_hash = String::new();

        for (cid, class) in program.iter_classes() {
            let _ = write!(program_hash, "class {};", class.name);
            if let Some(s) = class.superclass {
                let _ = write!(program_hash, "extends {};", program.class(s).name);
            }
            for &i in &class.interfaces {
                let _ = write!(program_hash, "impl {};", program.class(i).name);
            }
            for &f in &class.fields {
                let field = program.field(f);
                let _ = write!(
                    program_hash,
                    "field {}:{}{};",
                    field.name,
                    type_name(program, field.ty),
                    if field.is_static { " static" } else { "" }
                );
            }
            for &m in &class.methods {
                let _ = write!(program_hash, "method {};", method_ref(program, m));
            }
            let _ = cid;
        }

        for (mid, _m) in program.iter_methods() {
            let rendering = render_method(program, mid);
            let fingerprint = fnv1a_128(rendering.as_bytes());
            let _ = write!(program_hash, "\n{rendering}");
            let base_key = method_ref(program, mid);
            let n = dup_count.entry(base_key.clone()).or_insert(0);
            let key = if *n == 0 { base_key.clone() } else { format!("{base_key}/{n}") };
            *n += 1;
            let m = program.method(mid);
            let (calls, loads, stores, has_body) = collect_deps(program, mid);
            index.insert(key.clone(), methods.len());
            methods.push(MethodSummary {
                key,
                owner: program.class(m.owner).name.clone(),
                name: m.name.clone(),
                arity: m.params.len(),
                fingerprint,
                calls,
                loads,
                stores,
                has_body,
            });
        }

        for &e in &program.entrypoints {
            let _ = write!(program_hash, "\nentry {};", method_ref(program, e));
        }

        SummaryStore { program_fingerprint: fnv1a_128(program_hash.as_bytes()), methods, index }
    }

    /// Looks up a summary by qualified key.
    pub fn get(&self, key: &str) -> Option<&MethodSummary> {
        self.index.get(key).map(|&i| &self.methods[i])
    }

    /// Rough in-memory size, for cache accounting.
    pub fn approx_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<SummaryStore>();
        for m in &self.methods {
            total += std::mem::size_of::<MethodSummary>() + m.key.len() * 2;
            total += m.calls.len() * 32 + m.loads.len() * 24 + m.stores.len() * 24;
        }
        total
    }

    /// Builds summaries for the edited program and diffs them against
    /// `base`.
    ///
    /// Fingerprints are computed for **all** edited methods — that *is*
    /// the diff mechanism. Methods whose fingerprint is unchanged reuse
    /// nothing from `base` structurally (their summaries are value-equal
    /// by construction); what the base contributes is the *identity* of
    /// the changed set.
    pub fn build_delta(edited_program: &Program, base: &SummaryStore) -> (SummaryStore, DeltaPlan) {
        let edited = SummaryStore::build(edited_program);

        let mut dirty: BTreeSet<String> = BTreeSet::new();
        for m in &edited.methods {
            match base.get(&m.key) {
                Some(b) if b.fingerprint == m.fingerprint => {}
                _ => {
                    dirty.insert(m.key.clone());
                }
            }
        }
        let mut removed: Vec<String> = base
            .methods
            .iter()
            .filter(|m| edited.get(&m.key).is_none())
            .map(|m| m.key.clone())
            .collect();
        removed.sort();

        // Seed the region with the dirty set plus the edited-side
        // neighborhood of every removed method: anything that could have
        // called it (virtual selector match), resolved to it, or shared a
        // field with it.
        let mut seeds = dirty.clone();
        for key in &removed {
            let gone = base.get(key).expect("removed key came from base");
            for m in &edited.methods {
                if summary_coupled(gone, m) {
                    seeds.insert(m.key.clone());
                }
            }
        }

        let region = edited.close_region(&seeds);
        let plan = DeltaPlan {
            dirty: dirty.into_iter().collect(),
            removed,
            methods_total: edited.methods.len(),
            region,
        };
        (edited, plan)
    }

    /// Undirected transitive closure of `seeds` over the dependency
    /// graph: direct-call edges, virtual edges by `(name, arity)`
    /// selector match, and field-coupling edges between loaders and
    /// storers of the same field.
    fn close_region(&self, seeds: &BTreeSet<String>) -> Vec<String> {
        // Adjacency indexes, all name-based.
        let mut by_selector: HashMap<(&str, usize), Vec<usize>> = HashMap::new();
        let mut field_loaders: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut field_storers: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_direct: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, m) in self.methods.iter().enumerate() {
            by_selector.entry((m.name.as_str(), m.arity)).or_default().push(i);
            for f in &m.loads {
                field_loaders.entry(f.as_str()).or_default().push(i);
            }
            for f in &m.stores {
                field_storers.entry(f.as_str()).or_default().push(i);
            }
            for c in &m.calls {
                if let CallDep::Direct(k) = c {
                    by_direct.entry(k.as_str()).or_default().push(i);
                }
            }
        }

        let mut in_region: Vec<bool> = vec![false; self.methods.len()];
        let mut work: Vec<usize> = Vec::new();
        for key in seeds {
            if let Some(&i) = self.index.get(key) {
                if !in_region[i] {
                    in_region[i] = true;
                    work.push(i);
                }
            }
        }

        let push = |i: usize, in_region: &mut Vec<bool>, work: &mut Vec<usize>| {
            if !in_region[i] {
                in_region[i] = true;
                work.push(i);
            }
        };

        while let Some(i) = work.pop() {
            let m = &self.methods[i];
            // Callees.
            for c in &m.calls {
                match c {
                    CallDep::Direct(k) => {
                        // The direct key never carries a `/n` dup suffix, so
                        // index lookup resolves the first duplicate; pull in
                        // every method sharing (owner, name, arity) via the
                        // selector index filtered by owner.
                        if let Some(&j) = self.index.get(k.as_str()) {
                            let callee = &self.methods[j];
                            let owner = callee.owner.clone();
                            let name = callee.name.clone();
                            let arity = callee.arity;
                            if let Some(js) = by_selector.get(&(name.as_str(), arity)) {
                                for &j2 in js {
                                    if self.methods[j2].owner == owner {
                                        push(j2, &mut in_region, &mut work);
                                    }
                                }
                            }
                        }
                    }
                    CallDep::Virtual(name, arity) => {
                        if let Some(js) = by_selector.get(&(name.as_str(), *arity)) {
                            for &j in js {
                                push(j, &mut in_region, &mut work);
                            }
                        }
                    }
                }
            }
            // Callers: direct by this method's qualified name (dup suffix
            // stripped), virtual by selector.
            let base_key = format!("{}.{}#{}", m.owner, m.name, m.arity);
            if let Some(js) = by_direct.get(base_key.as_str()) {
                for &j in js {
                    push(j, &mut in_region, &mut work);
                }
            }
            let name = m.name.clone();
            let arity = m.arity;
            for (j, caller) in self.methods.iter().enumerate() {
                if caller
                    .calls
                    .iter()
                    .any(|c| matches!(c, CallDep::Virtual(n, a) if *n == name && *a == arity))
                {
                    push(j, &mut in_region, &mut work);
                }
            }
            // Field coupling, both directions.
            for f in &m.loads {
                if let Some(js) = field_storers.get(f.as_str()) {
                    for &j in js {
                        push(j, &mut in_region, &mut work);
                    }
                }
            }
            for f in &m.stores {
                if let Some(js) = field_loaders.get(f.as_str()) {
                    for &j in js {
                        push(j, &mut in_region, &mut work);
                    }
                }
            }
        }

        let mut region: Vec<String> = self
            .methods
            .iter()
            .enumerate()
            .filter(|(i, _)| in_region[*i])
            .map(|(_, m)| m.key.clone())
            .collect();
        region.sort();
        region
    }

    /// Reconstructs the pointer solver's startup scan ([`PreScan`]) from
    /// the summaries, resolving name-based keys back to ids in `program`.
    ///
    /// The contract is exact reproduction of `Solver::new`'s own scan —
    /// same vector ordering, duplicates included — because those vectors
    /// feed the §6.1 priority mode and therefore node-exploration (and
    /// output) order. Returns `None` if any key fails to resolve; callers
    /// fall back to the full scan.
    pub fn to_prescan(
        &self,
        program: &Program,
        source_methods: &HashSet<MethodId>,
    ) -> Option<PreScan> {
        let mut prescan = PreScan::default();
        let source_selectors: HashSet<(String, usize)> = source_methods
            .iter()
            .map(|&m| {
                let mm = program.method(m);
                (mm.name.clone(), mm.params.len())
            })
            .collect();
        let source_keys: HashSet<String> =
            source_methods.iter().map(|&m| method_ref(program, m)).collect();

        if self.methods.len() != program.methods.len() {
            return None;
        }
        let resolve_field = |key: &str| -> Option<jir::FieldId> {
            let dot = key.rfind('.')?;
            let class = program.class_by_name(&key[..dot])?;
            program.field_by_name(class, &key[dot + 1..])
        };

        let mut summaries_by_pos = self.methods.iter();
        for (mid, m) in program.iter_methods() {
            let summary = summaries_by_pos.next()?;
            // Sanity: the summary table is positional; verify alignment.
            if summary.name != m.name {
                return None;
            }
            for f in &summary.loads {
                let fid = resolve_field(f)?;
                prescan.field_loaders.entry(fid).or_default().push(mid);
            }
            for f in &summary.stores {
                let fid = resolve_field(f)?;
                prescan.method_stores.entry(mid).or_default().push(fid);
            }
            let adjacent = source_methods.contains(&mid)
                || summary.calls.iter().any(|c| match c {
                    CallDep::Direct(k) => source_keys.contains(k),
                    CallDep::Virtual(n, a) => source_selectors.contains(&(n.clone(), *a)),
                });
            if adjacent {
                prescan.source_adjacent.insert(mid);
            }
        }
        Some(prescan)
    }
}

/// Whether two summaries would share a dependency edge: one calls the
/// other (directly or by selector) or they touch a common field from
/// opposite sides.
fn summary_coupled(a: &MethodSummary, b: &MethodSummary) -> bool {
    let a_key = format!("{}.{}#{}", a.owner, a.name, a.arity);
    let b_key = format!("{}.{}#{}", b.owner, b.name, b.arity);
    let calls = |x: &MethodSummary, y_key: &str, y: &MethodSummary| {
        x.calls.iter().any(|c| match c {
            CallDep::Direct(k) => k == y_key,
            CallDep::Virtual(n, ar) => *n == y.name && *ar == y.arity,
        })
    };
    if calls(a, &b_key, b) || calls(b, &a_key, a) {
        return true;
    }
    let shares =
        |loads: &[String], stores: &[String]| loads.iter().any(|f| stores.iter().any(|g| f == g));
    shares(&a.loads, &b.stores) || shares(&b.loads, &a.stores)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"
        class Store {
            field String value;
            method void put(String v) { this.value = v; }
            method String get() { return this.value; }
        }
        class App extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                Store s = new Store();
                s.put(req.getParameter("q"));
                resp.getWriter().println(s.get());
            }
            method int quiet(int x) { return x; }
        }
    "#;

    fn build(src: &str) -> (Program, SummaryStore) {
        let p = jir::frontend::build_program(src).expect("parses");
        let store = SummaryStore::build(&p);
        (p, store)
    }

    #[test]
    fn identical_source_means_identical_fingerprints_and_empty_delta() {
        let (_p1, s1) = build(BASE);
        let (p2, _s2) = build(BASE);
        let (s2, plan) = SummaryStore::build_delta(&p2, &s1);
        assert_eq!(s1.program_fingerprint, s2.program_fingerprint);
        assert!(plan.dirty.is_empty(), "{:?}", plan.dirty);
        assert!(plan.removed.is_empty());
        assert!(plan.region_empty());
        assert_eq!(plan.methods_total, s2.methods.len());
        for (a, b) in s1.methods.iter().zip(s2.methods.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn comment_edit_is_empty_region() {
        let (_p1, s1) = build(BASE);
        let edited = format!("{BASE}\n// a trailing comment\n");
        let p2 = jir::frontend::build_program(&edited).expect("parses");
        let (_s2, plan) = SummaryStore::build_delta(&p2, &s1);
        assert!(plan.region_empty(), "dirty={:?} region={:?}", plan.dirty, plan.region);
    }

    #[test]
    fn body_edit_dirties_the_method_and_pulls_in_the_caller() {
        let (_p1, s1) = build(BASE);
        let edited = BASE.replace("return x;", "int y = x + 1; return y;");
        let p2 = jir::frontend::build_program(&edited).expect("parses");
        let (_s2, plan) = SummaryStore::build_delta(&p2, &s1);
        assert_eq!(plan.dirty, vec!["App.quiet#1".to_string()]);
        assert!(plan.region.contains(&"App.quiet#1".to_string()));
        // quiet() has no callers/fields beyond itself; the region must not
        // balloon to the servlet entry.
        assert!(!plan.region.contains(&"Store.get#0".to_string()), "{:?}", plan.region);
    }

    #[test]
    fn field_coupling_links_loader_and_storer() {
        let (_p1, s1) = build(BASE);
        let edited = BASE.replace("this.value = v;", "this.value = v; this.value = v;");
        let p2 = jir::frontend::build_program(&edited).expect("parses");
        let (_s2, plan) = SummaryStore::build_delta(&p2, &s1);
        assert!(plan.dirty.contains(&"Store.put#1".to_string()), "{:?}", plan.dirty);
        // get() loads Store.value, which put() stores — coupled.
        assert!(plan.region.contains(&"Store.get#0".to_string()), "{:?}", plan.region);
    }

    #[test]
    fn added_and_removed_methods_are_tracked() {
        let (_p1, s1) = build(BASE);
        let added = BASE.replace(
            "method int quiet(int x) { return x; }",
            "method int quiet(int x) { return x; }\n method int louder(int x) { return x; }",
        );
        let p2 = jir::frontend::build_program(&added).expect("parses");
        let (s2, plan) = SummaryStore::build_delta(&p2, &s1);
        assert!(plan.dirty.contains(&"App.louder#1".to_string()), "{:?}", plan.dirty);
        assert!(plan.removed.is_empty());

        let removed = BASE.replace("method int quiet(int x) { return x; }", "");
        let p3 = jir::frontend::build_program(&removed).expect("parses");
        let (_s3, plan3) = SummaryStore::build_delta(&p3, &s2);
        assert!(plan3.removed.contains(&"App.quiet#1".to_string()), "{:?}", plan3.removed);
        assert!(!plan3.region_empty());
    }

    #[test]
    fn signature_change_is_add_plus_remove() {
        let (_p1, s1) = build(BASE);
        let edited = BASE.replace("method int quiet(int x)", "method int quiet(int x, int y)");
        let p2 = jir::frontend::build_program(&edited).expect("parses");
        let (_s2, plan) = SummaryStore::build_delta(&p2, &s1);
        assert!(plan.dirty.contains(&"App.quiet#2".to_string()), "{:?}", plan.dirty);
        assert!(plan.removed.contains(&"App.quiet#1".to_string()), "{:?}", plan.removed);
    }

    #[test]
    fn duplicate_loads_are_preserved_in_order() {
        let src = r#"
            class D {
                field String a;
                method String twice() {
                    String x = this.a;
                    String y = this.a;
                    return x + y;
                }
            }
        "#;
        let (_p, s) = build(src);
        let m = s.get("D.twice#0").expect("summary exists");
        assert_eq!(m.loads.iter().filter(|f| *f == "D.a").count(), 2, "{:?}", m.loads);
    }

    #[test]
    fn prescan_matches_full_scan_shape() {
        let (p, s) = build(BASE);
        let sources: HashSet<MethodId> = HashSet::new();
        let prescan = s.to_prescan(&p, &sources).expect("resolves");
        // Store.value has exactly one loader (get) and the storer side
        // records put storing it.
        let store = p.class_by_name("Store").unwrap();
        let value = p.field_by_name(store, "value").unwrap();
        let loaders = prescan.field_loaders.get(&value).expect("value is loaded");
        assert_eq!(loaders.len(), 1);
        assert_eq!(p.method(loaders[0]).name, "get");
        let get_mid = loaders[0];
        assert!(prescan.method_stores.values().any(|fs| fs.contains(&value)));
        let _ = get_mid;
    }

    #[test]
    fn virtual_callers_join_the_region() {
        // App.doGet calls s.put(...) virtually; editing put must pull
        // doGet into the region via the selector edge.
        let (_p1, s1) = build(BASE);
        let edited = BASE.replace("{ this.value = v; }", "{ this.value = v; int z = 0; }");
        let p2 = jir::frontend::build_program(&edited).expect("parses");
        let (_s2, plan) = SummaryStore::build_delta(&p2, &s1);
        assert!(plan.region.contains(&"App.doGet#2".to_string()), "{:?}", plan.region);
    }
}
