//! The two-phase TAJ driver (§3): frontend + modeling passes, pointer
//! analysis & call-graph construction, then per-rule slicing, bounds, and
//! LCP report minimization.

use std::collections::HashSet;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use serde::Serialize;

use taj_obs::{AttrValue, Recorder, TraceEvent};

use jir::Program;
use taj_pointer::{EscapeAnalysis, HeapGraph, PointsTo, PolicyConfig, SolverConfig};
use taj_sdg::{
    CiSlicer, CsSlicer, Flow, HybridSlicer, IfdsSlicer, MhpRelation, ProgramView, SliceBounds,
    SliceResult, SliceSpec, StmtNode,
};
use taj_supervise::{InterruptReason, Supervisor};

use crate::config::{Algorithm, TajConfig};
use crate::frameworks::DeploymentDescriptor;
use crate::lcp;
use crate::parallel;
use crate::rules::{IssueType, RuleSet};
use crate::summaries::{DeltaPlan, SummaryStore};

/// A reported flow with human-readable anchors (serializable).
#[derive(Clone, Debug, Serialize)]
pub struct AnalyzedFlow {
    /// Issue type.
    pub issue: IssueType,
    /// Source method name.
    pub source_method: String,
    /// Sink method name.
    pub sink_method: String,
    /// Class containing the statement that calls the sink.
    pub sink_owner_class: String,
    /// Class containing the source call statement.
    pub source_owner_class: String,
    /// Witness-path length (§6.2.2's flow length).
    pub flow_len: usize,
    /// Heap transitions on the witness path.
    pub heap_transitions: usize,
}

/// A deduplicated finding (§5): one representative per `(LCP, issue)`.
#[derive(Clone, Debug, Serialize)]
pub struct TajFinding {
    /// The representative flow.
    #[serde(flatten)]
    pub flow: AnalyzedFlow,
    /// Class containing the library call point.
    pub lcp_owner_class: String,
    /// Raw flows collapsed into this finding.
    pub group_size: usize,
}

/// Run statistics.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct AnalysisStats {
    /// Call-graph nodes.
    pub cg_nodes: usize,
    /// Call edges.
    pub cg_edges: usize,
    /// Abstract objects.
    pub instance_keys: usize,
    /// Abstract pointers.
    pub pointer_keys: usize,
    /// Phase-1 wall time (ms).
    pub pointer_ms: u128,
    /// Phase-2 wall time (ms).
    pub slice_ms: u128,
    /// Total wall time (ms).
    pub total_ms: u128,
    /// Heap store→load transitions performed while slicing.
    pub heap_transitions: usize,
    /// Slicer work units (facts processed).
    pub slicer_work: usize,
    /// Whether the call-graph node budget was exhausted (§6.1).
    pub cg_budget_exhausted: bool,
    /// Whether the slice heap-transition budget was exhausted (§6.2.1).
    pub slice_budget_exhausted: bool,
    /// Flows dropped by the flow-length filter (§6.2.2).
    pub flows_len_filtered: usize,
    /// IFDS only: distinct access-path facts created during tabulation.
    pub ifds_facts: usize,
    /// IFDS only: summary edges tabulated (endpoint effects memoized).
    pub ifds_summary_edges: usize,
    /// IFDS only: worklist pops across tabulation and summary fixpoints.
    pub ifds_worklist_pops: usize,
}

/// Concurrency facts derived from the thread-escape and MHP analyses:
/// how much of the program is multithreaded, and which reported flows
/// actually cross a thread boundary.
#[derive(Clone, Debug, Default, Serialize)]
pub struct ConcurrencyReport {
    /// Distinct `Thread.start` call sites in the call graph.
    pub spawn_sites: usize,
    /// Abstract objects that may be shared between threads.
    pub escaping_objects: usize,
    /// All abstract objects (denominator for `escaping_objects`).
    pub total_objects: usize,
    /// Call-graph nodes that may execute on a spawned thread.
    pub parallel_nodes: usize,
    /// Store→load edges the hybrid concurrency filter dropped (0 unless
    /// the configuration enables `escape_analysis` with a hybrid slicer).
    pub cross_thread_edges_dropped: usize,
    /// Raw flows whose witness path crosses a thread boundary — taint
    /// that travels through an escaping object from one thread to
    /// another. Exactly the flows plain CS slicing misses.
    pub cross_thread_flows: Vec<AnalyzedFlow>,
}

/// One rung-to-rung fall (or partial delivery) on the degradation
/// ladder: what stage tripped, what the driver fell back to, why, and
/// what the result may consequently be missing.
#[derive(Clone, Debug, Serialize)]
pub struct DegradationStep {
    /// Pipeline stage the interrupt hit (`phase1` or `slice`).
    pub stage: String,
    /// Configuration/rung the stage was running under.
    pub from: String,
    /// Rung fallen to, or `partial` when partial results were delivered.
    pub to: String,
    /// What tripped: an [`InterruptReason`] string or a budget message.
    pub reason: String,
    /// Soundness caveat describing what the degraded result may miss.
    pub caveat: String,
}

/// Degradation provenance for a run: empty and `degraded == false` for a
/// clean run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct DegradationReport {
    /// Whether any stage degraded.
    pub degraded: bool,
    /// Every fall taken, in order.
    pub steps: Vec<DegradationStep>,
}

impl DegradationReport {
    fn push(&mut self, step: DegradationStep) {
        self.degraded = true;
        self.steps.push(step);
    }
}

/// Supervision and degradation options for a run. The default — an
/// unbounded supervisor and no degradation — reproduces the historical
/// fail-hard behavior exactly.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Supervision handle threaded through every fixpoint loop.
    pub supervisor: Supervisor,
    /// When a budget trips mid-stage, fall down the degradation ladder
    /// (CS → hybrid → bounded hybrid) instead of returning
    /// [`TajError::OutOfMemory`].
    pub degrade: bool,
    /// Phase-2 worker threads: `0` (the default) means one per available
    /// core, `1` runs the work units inline on the calling thread, any
    /// other value spawns exactly that many workers. The thread count is
    /// an *execution* parameter, never an *analysis* parameter: reports
    /// are byte-identical at every value, which is why it lives here and
    /// not in [`TajConfig`] (and therefore cannot leak into any cache
    /// validity domain — see [`Phase1::matches`]).
    pub threads: usize,
    /// Tracing recorder. The default is disabled (every guard is a single
    /// pointer test); an enabled recorder collects the span taxonomy of
    /// docs/observability.md. Tracing is an *observation* parameter like
    /// `threads`: reports are byte-identical whether or not it is on.
    pub recorder: Recorder,
}

/// The result of one TAJ run.
#[derive(Clone, Debug, Serialize)]
pub struct TajReport {
    /// Configuration name (Table 1 column).
    pub config: String,
    /// Deduplicated findings — the paper's reported "issues" (Table 3).
    pub findings: Vec<TajFinding>,
    /// All raw source→sink flows before LCP dedup.
    pub flows: Vec<AnalyzedFlow>,
    /// Statistics.
    pub stats: AnalysisStats,
    /// Concurrency section (escaping objects, MHP partition sizes, and
    /// cross-thread taint flows).
    pub concurrency: ConcurrencyReport,
    /// Degradation provenance: which stages fell back or delivered
    /// partial results, and why.
    pub degradation: DegradationReport,
}

impl TajReport {
    /// Number of reported issues (the Table 3 "Issues" column).
    pub fn issue_count(&self) -> usize {
        self.findings.len()
    }
}

/// Analysis failures.
#[derive(Debug)]
pub enum TajError {
    /// Frontend failure.
    Parse(jir::parser::ParseError),
    /// The CS slicer exceeded its memory budget (the paper's OOM runs).
    OutOfMemory {
        /// Path edges at failure.
        path_edges: usize,
    },
}

impl std::fmt::Display for TajError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TajError::Parse(e) => write!(f, "frontend error: {e}"),
            TajError::OutOfMemory { path_edges } => {
                write!(f, "analysis ran out of memory budget ({path_edges} path edges)")
            }
        }
    }
}

impl std::error::Error for TajError {}

impl From<jir::parser::ParseError> for TajError {
    fn from(e: jir::parser::ParseError) -> Self {
        TajError::Parse(e)
    }
}

/// A fully prepared program (modeling passes applied, SSA built) plus its
/// phase-1 results — reusable across configurations.
#[derive(Debug)]
pub struct PreparedProgram {
    /// The analysis-ready program.
    pub program: Program,
    /// Synthetic exception-source sites `(method, loc)` (§4.1.2).
    pub synthetic_sites: Vec<(jir::MethodId, jir::Loc)>,
    /// The rule set in force.
    pub rules: RuleSet,
}

/// Parses and prepares a program: framework entrypoints, EJB descriptor
/// modeling, exception instrumentation, model expansion, SSA.
///
/// # Errors
/// Returns [`TajError::Parse`] on frontend failures.
pub fn prepare(
    src: &str,
    descriptor: Option<&DeploymentDescriptor>,
    rules: RuleSet,
) -> Result<PreparedProgram, TajError> {
    prepare_traced(src, descriptor, rules, &Recorder::disabled())
}

/// [`prepare`] under a tracing recorder: records `prepare.parse`,
/// `prepare.model` (whitelist/entrypoints/descriptor/exceptions/model
/// expansion), and `prepare.ssa` spans.
///
/// # Errors
/// Returns [`TajError::Parse`] on frontend failures.
pub fn prepare_traced(
    src: &str,
    descriptor: Option<&DeploymentDescriptor>,
    rules: RuleSet,
    recorder: &Recorder,
) -> Result<PreparedProgram, TajError> {
    let mut parse_span = recorder.span("prepare.parse");
    let mut program = jir::frontend::parse_program(src)?;
    if recorder.is_enabled() {
        parse_span.attr("classes", program.classes.len());
        parse_span.attr("methods", program.methods.len());
    }
    parse_span.finish();

    let mut model_span = recorder.span("prepare.model");
    // Whitelist exclusion (§4.2.1): replace bodies of benign library
    // classes with no-op models.
    for name in &rules.whitelist {
        if let Some(cid) = program.class_by_name(name) {
            let methods: Vec<jir::MethodId> = program.class(cid).methods.clone();
            for m in methods {
                if program.method(m).body().is_some() && program.method(m).name != "<init>" {
                    program.method_mut(m).kind = jir::MethodKind::Intrinsic(jir::Intrinsic::Nop);
                }
            }
        }
    }
    crate::frameworks::synthesize_entrypoints(&mut program);
    if let Some(d) = descriptor {
        crate::frameworks::apply_ejb_descriptor(&mut program, d);
    }
    let synthetic_sites = crate::exceptions::model_exceptions(&mut program);
    jir::expand::expand_models(&mut program);
    if recorder.is_enabled() {
        model_span.attr("synthetic_sites", synthetic_sites.len());
    }
    model_span.finish();

    let ssa_span = recorder.span("prepare.ssa");
    jir::ssa::program_to_ssa(&mut program);
    ssa_span.finish();
    // Every pipeline stage must leave the IR well-formed.
    debug_assert!(
        jir::validate::validate(&program).is_empty(),
        "pipeline produced invalid IR: {:?}",
        jir::validate::validate(&program)
    );
    Ok(PreparedProgram { program, synthetic_sites, rules })
}

/// Runs the full analysis for one configuration.
///
/// # Errors
/// [`TajError::Parse`] on frontend failures, [`TajError::OutOfMemory`]
/// when the CS slicer exceeds its budget.
pub fn analyze_source(
    src: &str,
    descriptor: Option<&DeploymentDescriptor>,
    rules: RuleSet,
    config: &TajConfig,
) -> Result<TajReport, TajError> {
    let prepared = prepare(src, descriptor, rules)?;
    analyze_prepared(&prepared, config)
}

/// Cached phase-1 results (pointer analysis + heap graph), reusable across
/// every phase-2 configuration with the same call-graph settings — the
/// paper's two-phase architecture makes re-analysis under different rules
/// or slicing bounds incremental (§9 lists full incrementality as future
/// work; the phase split is the part TAJ already has).
#[derive(Debug)]
pub struct Phase1 {
    /// Points-to solution and call graph.
    pub pts: PointsTo,
    /// Heap graph for carrier detection.
    pub heap: HeapGraph,
    /// Thread-escape solution (which objects may be shared across
    /// threads).
    pub escape: EscapeAnalysis,
    /// May-happen-in-parallel relation over call-graph nodes.
    pub mhp: MhpRelation,
    /// Wall time spent (ms).
    pub pointer_ms: u128,
    /// Why phase 1 stopped early, if it was interrupted. An interrupted
    /// phase 1 is a *consistent truncation* (like an exhausted
    /// `max_cg_nodes` budget) with escape/MHP replaced by their
    /// conservative top elements — usable, but not cacheable.
    pub interrupted: Option<InterruptReason>,
    /// Summary-store provenance when this result was produced by an
    /// incremental run: `(program_fingerprint, methods_total)` of the
    /// [`crate::summaries::SummaryStore`] it was solved against. `None`
    /// for plain (non-incremental) runs, which never pay the canonical-
    /// rendering cost. Observation metadata only — deliberately **not**
    /// part of [`Phase1::matches`]: the result is byte-identical to a
    /// cold solve of the same program either way.
    pub summary_key: Option<(u128, usize)>,
    /// How many method summaries the producing run re-solved: the full
    /// store size for a cold run, the dirty-region size for an
    /// incremental one, 0 when the artifact was reused outright.
    /// Observation metadata, same caveat as `summary_key`.
    pub methods_resolved: usize,
    cg_key: (Option<usize>, bool),
}

impl Phase1 {
    /// Whether this phase-1 result is valid for `config` (same call-graph
    /// budget and priority mode).
    pub fn matches(&self, config: &TajConfig) -> bool {
        self.cg_key == (config.max_cg_nodes, config.priority)
    }
}

/// Runs phase 1 (pointer analysis & call-graph construction, §3.1/§6.1)
/// for the given configuration's call-graph settings.
pub fn run_phase1(prepared: &PreparedProgram, config: &TajConfig) -> Phase1 {
    run_phase1_supervised(prepared, config, &Supervisor::new())
}

/// [`run_phase1`] under a supervision handle. An interrupt truncates the
/// call graph consistently (exactly like an exhausted `max_cg_nodes`
/// budget) and replaces escape/MHP with their conservative top elements
/// (everything escapes; single-threaded), so downstream slicing stays
/// sound with respect to the truncated graph. The interrupt reason is
/// recorded in [`Phase1::interrupted`]; interrupted results must not be
/// cached.
pub fn run_phase1_supervised(
    prepared: &PreparedProgram,
    config: &TajConfig,
    supervisor: &Supervisor,
) -> Phase1 {
    run_phase1_traced(prepared, config, supervisor, &Recorder::disabled())
}

/// [`run_phase1_supervised`] under a tracing recorder. The whole phase
/// runs inside a `phase1` span whose measured duration *is*
/// [`Phase1::pointer_ms`] — spans are the single timing source — with
/// `phase1.solve` (inside the pointer solver), `phase1.heapgraph`,
/// `phase1.escape`, and `phase1.mhp` child spans.
pub fn run_phase1_traced(
    prepared: &PreparedProgram,
    config: &TajConfig,
    supervisor: &Supervisor,
    recorder: &Recorder,
) -> Phase1 {
    run_phase1_prescanned(prepared, config, supervisor, recorder, None)
}

/// Phase 1 for the incremental (`analyze_delta`) path: solves against a
/// [`SummaryStore`] built for `prepared`, reconstructing the pointer
/// solver's startup scan from the summaries instead of re-walking every
/// instruction, and stamping the result with summary provenance
/// ([`Phase1::summary_key`], [`Phase1::methods_resolved`]).
///
/// The fixpoint itself still runs over the whole program — that is what
/// guarantees the result is byte-identical to a cold solve (see
/// `docs/incremental.md` for what incrementality does and does not skip).
/// `plan` sizes the provenance counters; it does not change the solution.
pub fn run_phase1_incremental(
    prepared: &PreparedProgram,
    config: &TajConfig,
    supervisor: &Supervisor,
    recorder: &Recorder,
    summaries: &SummaryStore,
    plan: &DeltaPlan,
) -> Phase1 {
    let mut phase1 = run_phase1_prescanned(prepared, config, supervisor, recorder, Some(summaries));
    phase1.summary_key = Some((summaries.program_fingerprint, summaries.methods.len()));
    phase1.methods_resolved = plan.methods_resolved();
    phase1
}

fn run_phase1_prescanned(
    prepared: &PreparedProgram,
    config: &TajConfig,
    supervisor: &Supervisor,
    recorder: &Recorder,
    summaries: Option<&SummaryStore>,
) -> Phase1 {
    let program = &prepared.program;
    let mut phase_span = recorder.span("phase1");
    let solver_cfg = SolverConfig {
        policy: PolicyConfig { taint_methods: prepared.rules.taint_methods(program) },
        max_cg_nodes: config.max_cg_nodes,
        priority: config.priority,
        source_methods: prepared.rules.all_sources(program),
        supervisor: supervisor.clone(),
    };
    let prescan = summaries.and_then(|s| s.to_prescan(program, &solver_cfg.source_methods));
    let pts = match prescan {
        Some(p) => taj_pointer::analyze_prescanned(program, &solver_cfg, recorder, p),
        None => taj_pointer::analyze_traced(program, &solver_cfg, recorder),
    };
    let mut interrupted = pts.interrupted;
    let heap_span = recorder.span("phase1.heapgraph");
    let heap = HeapGraph::build(&pts);
    heap_span.finish();
    // Escape + MHP are cheap post-passes over the solution; compute them
    // unconditionally so every phase-2 run can report concurrency facts.
    // Under an already-tripped supervisor they immediately return their
    // conservative fallbacks.
    let mut escape_span = recorder.span("phase1.escape");
    let (escape, esc_int) = EscapeAnalysis::compute_supervised(&pts, &heap, supervisor);
    if recorder.is_enabled() {
        escape_span.attr("spawn_sites", escape.num_spawn_sites());
        escape_span.attr("escaping_objects", escape.num_escaping());
        escape_span.attr("total_objects", escape.total_objects());
    }
    escape_span.finish();
    let mut mhp_span = recorder.span("phase1.mhp");
    let (mhp, mhp_int) = MhpRelation::compute_supervised(&pts, supervisor);
    if recorder.is_enabled() {
        mhp_span.attr("parallel_nodes", mhp.num_parallel_nodes());
    }
    mhp_span.finish();
    interrupted = interrupted.or(esc_int).or(mhp_int);
    if recorder.is_enabled() {
        phase_span.attr("cg_nodes", pts.stats.nodes);
        phase_span.attr("cg_edges", pts.stats.call_edges);
        phase_span.attr("supervisor_steps", supervisor.steps());
        phase_span.attr("supervisor_mem", supervisor.mem());
        if let Some(reason) = interrupted {
            phase_span.attr("interrupted", reason.as_str());
        }
    }
    Phase1 {
        pointer_ms: phase_span.finish().as_millis(),
        pts,
        heap,
        escape,
        mhp,
        interrupted,
        summary_key: None,
        methods_resolved: 0,
        cg_key: (config.max_cg_nodes, config.priority),
    }
}

/// [`prepare`], but returning the program behind an [`Arc`] for callers
/// that hand it to caches or across threads. `PreparedProgram` and
/// [`Phase1`] deliberately do **not** implement `Clone`: phase-1 products
/// are multi-megabyte and must be shared by pointer, never deep-copied —
/// a cache hit is an `Arc` bump.
///
/// # Errors
/// Returns [`TajError::Parse`] on frontend failures.
pub fn prepare_shared(
    src: &str,
    descriptor: Option<&DeploymentDescriptor>,
    rules: RuleSet,
) -> Result<Arc<PreparedProgram>, TajError> {
    prepare(src, descriptor, rules).map(Arc::new)
}

/// [`run_phase1`], but returning the result behind an [`Arc`] — the
/// cache-friendly entry point (see [`prepare_shared`]).
pub fn run_phase1_shared(prepared: &PreparedProgram, config: &TajConfig) -> Arc<Phase1> {
    Arc::new(run_phase1(prepared, config))
}

/// Runs one configuration over an already-prepared program.
///
/// # Errors
/// [`TajError::OutOfMemory`] when the CS slicer exceeds its budget.
pub fn analyze_prepared(
    prepared: &PreparedProgram,
    config: &TajConfig,
) -> Result<TajReport, TajError> {
    let phase1 = run_phase1(prepared, config);
    analyze_with_phase1(prepared, &phase1, config)
}

/// [`analyze_prepared`] under supervision/degradation options.
///
/// # Errors
/// [`TajError::OutOfMemory`] when the CS slicer exceeds its budget and
/// degradation is off (or the ladder is exhausted).
pub fn analyze_prepared_opts(
    prepared: &PreparedProgram,
    config: &TajConfig,
    opts: &RunOptions,
) -> Result<TajReport, TajError> {
    let phase1 = run_phase1_traced(prepared, config, &opts.supervisor, &opts.recorder);
    analyze_with_phase1_opts(prepared, &phase1, config, opts)
}

/// [`analyze_source`] under supervision/degradation options.
///
/// # Errors
/// [`TajError::Parse`] on frontend failures; [`TajError::OutOfMemory`]
/// as for [`analyze_prepared_opts`].
pub fn analyze_source_opts(
    src: &str,
    descriptor: Option<&DeploymentDescriptor>,
    rules: RuleSet,
    config: &TajConfig,
    opts: &RunOptions,
) -> Result<TajReport, TajError> {
    let prepared = prepare_traced(src, descriptor, rules, &opts.recorder)?;
    analyze_prepared_opts(&prepared, config, opts)
}

/// Runs phase 2 (slicing, carriers, bounds, LCP) over cached phase-1
/// results — incremental re-analysis across rule sets or slicing bounds.
///
/// # Panics
/// Panics if `phase1` was computed under different call-graph settings
/// (check with [`Phase1::matches`]).
///
/// # Errors
/// [`TajError::OutOfMemory`] when the CS slicer exceeds its budget.
pub fn analyze_with_phase1(
    prepared: &PreparedProgram,
    phase1: &Phase1,
    config: &TajConfig,
) -> Result<TajReport, TajError> {
    analyze_with_phase1_opts(prepared, phase1, config, &RunOptions::default())
}

/// The next rung down the degradation ladder from `config`, if any. Each
/// rung preserves the call-graph settings (`max_cg_nodes`, `priority`)
/// so the phase-1 result stays reusable — the whole point of degrading
/// mid-run instead of restarting.
fn next_rung(config: &TajConfig) -> Option<(TajConfig, &'static str)> {
    match config.algorithm {
        // CS exploded: the paper's answer is the hybrid slicer, which
        // trades per-call-string facts for summarized flow functions.
        Algorithm::CsThin => Some((
            TajConfig {
                name: "Hybrid-Unbounded",
                algorithm: Algorithm::Hybrid,
                cs_path_edge_budget: None,
                ..*config
            },
            "hybrid slicing collapses calling contexts: reported flows \
             may include context-infeasible paths (precision loss only)",
        )),
        // Unbounded hybrid exploded too: apply the §6.2 bounds.
        Algorithm::Hybrid
            if config.max_heap_transitions.is_none() || config.max_flow_len.is_none() =>
        {
            Some((
                TajConfig {
                    name: "Hybrid-Optimized",
                    max_heap_transitions: Some(crate::config::defaults::MAX_HEAP_TRANSITIONS),
                    max_flow_len: Some(crate::config::defaults::MAX_FLOW_LEN),
                    nested_depth: Some(crate::config::defaults::NESTED_DEPTH),
                    ..*config
                },
                "bounded slicing may drop flows exceeding the heap-transition, \
                 flow-length, or nested-taint bounds (under-approximation)",
            ))
        }
        // IFDS exploded: fall to the hybrid slicer — same phase-1
        // artifacts, summarized flow functions instead of per-access-path
        // facts — which then has its own §6.2 rung below it.
        Algorithm::Ifds => Some((
            TajConfig { name: "Hybrid-Unbounded", algorithm: Algorithm::Hybrid, ..*config },
            "hybrid slicing replaces access-path facts with direct \
             store→load heap edges: reported flows may include \
             field-infeasible paths (precision loss only)",
        )),
        // Bounded hybrid / CI: bottom of the ladder.
        _ => None,
    }
}

/// [`analyze_with_phase1`] under supervision/degradation options: the
/// degradation ladder. Budget-class interrupts (the CS path-edge budget
/// or a supervisor step/memory budget) fall down [`next_rung`] when
/// `opts.degrade` is set, reusing the same phase-1 artifacts; deadline
/// and cancellation interrupts deliver whatever partial results exist.
/// Every fall is recorded in [`TajReport::degradation`].
///
/// # Panics
/// Panics if `phase1` was computed under different call-graph settings
/// (check with [`Phase1::matches`]).
///
/// # Errors
/// [`TajError::OutOfMemory`] when the CS slicer exceeds its budget and
/// `opts.degrade` is off.
pub fn analyze_with_phase1_opts(
    prepared: &PreparedProgram,
    phase1: &Phase1,
    config: &TajConfig,
    opts: &RunOptions,
) -> Result<TajReport, TajError> {
    let recorder = &opts.recorder;
    let mut degradation = DegradationReport::default();
    let mut supervisor = opts.supervisor.clone();
    if let Some(reason) = phase1.interrupted {
        let step = DegradationStep {
            stage: "phase1".to_string(),
            from: "pointer-analysis".to_string(),
            to: "truncated-callgraph".to_string(),
            reason: reason.as_str().to_string(),
            caveat: "call graph truncated at the interrupt: methods not yet \
                     visited are unanalyzed, and escape/MHP use conservative \
                     fallbacks (under-approximation of flows)"
                .to_string(),
        };
        degrade_event(recorder, &step);
        degradation.push(step);
        // Phase 2 over a truncated graph is cheap; run it under a
        // finishing handle so it can actually deliver (an explicit
        // cancel still stops it).
        supervisor = supervisor.finishing();
    }
    let mut current = *config;
    loop {
        match run_phase2(prepared, phase1, &current, &supervisor, opts.threads, recorder) {
            Ok((mut report, interrupted)) => match interrupted {
                Some(reason) if reason.is_budget() && opts.degrade => {
                    match next_rung(&current) {
                        Some((next, caveat)) => {
                            let step = DegradationStep {
                                stage: "slice".to_string(),
                                from: current.name.to_string(),
                                to: next.name.to_string(),
                                reason: reason.as_str().to_string(),
                                caveat: caveat.to_string(),
                            };
                            degrade_event(recorder, &step);
                            degradation.push(step);
                            current = next;
                            supervisor = supervisor.fresh_meters();
                        }
                        None => {
                            // Ladder exhausted: deliver the partial result.
                            let step = partial_step(&current, reason.as_str());
                            degrade_event(recorder, &step);
                            degradation.push(step);
                            report.degradation = degradation;
                            return Ok(report);
                        }
                    }
                }
                Some(reason) => {
                    // Deadline/cancel (or budget without degradation):
                    // deliver partial results with provenance.
                    let step = partial_step(&current, reason.as_str());
                    degrade_event(recorder, &step);
                    degradation.push(step);
                    report.degradation = degradation;
                    return Ok(report);
                }
                None => {
                    report.degradation = degradation;
                    return Ok(report);
                }
            },
            Err(TajError::OutOfMemory { path_edges }) if opts.degrade => {
                match next_rung(&current) {
                    Some((next, caveat)) => {
                        let step = DegradationStep {
                            stage: "slice".to_string(),
                            from: current.name.to_string(),
                            to: next.name.to_string(),
                            reason: format!("path-edge budget exhausted ({path_edges} path edges)"),
                            caveat: caveat.to_string(),
                        };
                        degrade_event(recorder, &step);
                        degradation.push(step);
                        current = next;
                        supervisor = supervisor.fresh_meters();
                    }
                    None => return Err(TajError::OutOfMemory { path_edges }),
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Mirrors a degradation-ladder step into the trace as an instant
/// `degrade` event (stage/from/to/reason — the caveat prose stays in the
/// report).
fn degrade_event(recorder: &Recorder, step: &DegradationStep) {
    if recorder.is_enabled() {
        recorder.event(
            "degrade",
            vec![
                ("stage", step.stage.as_str().into()),
                ("from", step.from.as_str().into()),
                ("to", step.to.as_str().into()),
                ("reason", step.reason.as_str().into()),
            ],
        );
    }
}

fn partial_step(config: &TajConfig, reason: &str) -> DegradationStep {
    DegradationStep {
        stage: "slice".to_string(),
        from: config.name.to_string(),
        to: "partial".to_string(),
        reason: reason.to_string(),
        caveat: "slicing stopped early: flows completed before the interrupt \
                 are reported, later ones may be missing (under-approximation)"
            .to_string(),
    }
}

/// One parallel work unit: which part of one rule's seed lists to slice.
///
/// Rules whose slicer couples seeds through a shared budget (the CS
/// path-edge budget, the bounded hybrid's heap-transition budget) stay
/// whole; unbounded hybrid/CI rules split into contiguous seed chunks of
/// [`parallel::SEED_CHUNK`]. The plan depends only on the configuration
/// and the phase-1 artifacts — never on the thread count — so the unit
/// list (and therefore the merged output) is thread-count-invariant.
#[derive(Clone, Debug)]
enum UnitKind {
    /// The rule's full seed lists in one run (budget-coupled slicers).
    Whole,
    /// A chunk of the rule's regular seed list.
    Seeds(Range<usize>),
    /// A chunk of the rule's by-reference seed list (hybrid only).
    RefSeeds(Range<usize>),
}

impl UnitKind {
    /// Stable label for the per-unit trace span.
    fn label(&self) -> &'static str {
        match self {
            UnitKind::Whole => "whole",
            UnitKind::Seeds(_) => "seeds",
            UnitKind::RefSeeds(_) => "ref_seeds",
        }
    }
}

/// A planned unit: rule index plus seed partition.
#[derive(Clone, Debug)]
struct Unit {
    rule: usize,
    kind: UnitKind,
}

/// What one executed unit produced.
struct UnitOut {
    result: SliceResult,
    edges_dropped: usize,
    /// RHS summaries tabulated (hybrid slicer only; 0 elsewhere).
    summaries: usize,
    /// The unit's private supervisor meters after the run — deterministic
    /// per unit (fresh meters, work is a function of the unit's input).
    steps: u64,
    mem: u64,
    /// IFDS counters (0 for the other slicers): distinct facts created
    /// and worklist pops.
    facts: usize,
    pops: usize,
}

/// A unit's outcome as seen by the deterministic merge.
enum UnitStatus {
    /// Ran to completion (possibly interrupted mid-run).
    Done(UnitOut),
    /// The CS slicer exceeded its path-edge budget.
    Oom { path_edges: usize },
    /// Never started: an earlier unit (by index) already went abnormal.
    /// Skipped units are always behind the first abnormal unit, so the
    /// prefix merge drops them regardless — skipping only saves work,
    /// it cannot change output.
    Skipped,
}

/// Splits `0..len` into [`parallel::SEED_CHUNK`]-sized chunk units.
fn push_chunks(
    units: &mut Vec<Unit>,
    rule: usize,
    len: usize,
    make: impl Fn(Range<usize>) -> UnitKind,
) {
    let mut start = 0;
    while start < len {
        let end = (start + parallel::SEED_CHUNK).min(len);
        units.push(Unit { rule, kind: make(start..end) });
        start = end;
    }
}

/// Plans the unit list for one configuration over built rule views.
fn plan_units(config: &TajConfig, views: &[ProgramView<'_>]) -> Vec<Unit> {
    // Seed-splitting is valid only when seeds are independent: the CS
    // slicer tabulates all seeds jointly under one path-edge budget, and
    // a heap-transition bound couples seeds through the shared counter.
    let splittable = config.max_heap_transitions.is_none()
        && matches!(config.algorithm, Algorithm::Hybrid | Algorithm::CiThin);
    let mut units = Vec::new();
    for (rule, view) in views.iter().enumerate() {
        if !splittable {
            units.push(Unit { rule, kind: UnitKind::Whole });
            continue;
        }
        push_chunks(&mut units, rule, view.seeds().len(), UnitKind::Seeds);
        if matches!(config.algorithm, Algorithm::Hybrid) {
            push_chunks(&mut units, rule, view.ref_seeds().len(), UnitKind::RefSeeds);
        }
    }
    units
}

/// One phase-2 pass under a fixed configuration. Returns the report plus
/// the supervisor interrupt that stopped it early, if any.
///
/// Work is fanned out over `threads` scoped workers (see
/// [`parallel::par_map`]); each unit runs under its own
/// [`Supervisor::fresh_meters`] handle so cancellation and deadlines
/// still interrupt every worker while budget meters stay per-unit
/// deterministic. Results merge by unit index: the prefix of units up to
/// and including the first abnormal one (interrupt or out-of-budget) is
/// kept, the rest dropped — the sequential break semantics, which makes
/// the report byte-identical at every thread count.
fn run_phase2(
    prepared: &PreparedProgram,
    phase1: &Phase1,
    config: &TajConfig,
    supervisor: &Supervisor,
    threads: usize,
    recorder: &Recorder,
) -> Result<(TajReport, Option<InterruptReason>), TajError> {
    assert!(
        phase1.matches(config),
        "phase-1 results were computed under different call-graph settings"
    );
    let program = &prepared.program;
    // The `phase2` span measures the whole pass; its elapsed time is the
    // single source for `stats.slice_ms`/`stats.total_ms` (an early-error
    // return records it on drop).
    let mut phase_span = recorder.span("phase2");
    let pts = &phase1.pts;
    let heap = &phase1.heap;
    let pointer_ms = phase1.pointer_ms;
    let threads = parallel::resolve_threads(threads);

    // ---- Phase 2: per-rule slicing (§3.2) + modeling + bounds (§6.2).
    let resolved = prepared.rules.resolve(program);
    let mut stats = AnalysisStats {
        cg_nodes: pts.stats.nodes,
        cg_edges: pts.stats.call_edges,
        instance_keys: pts.stats.instance_keys,
        pointer_keys: pts.stats.pointer_keys,
        pointer_ms,
        cg_budget_exhausted: pts.budget_exhausted,
        ..Default::default()
    };
    let mut findings: Vec<TajFinding> = Vec::new();
    let mut flows_out: Vec<AnalyzedFlow> = Vec::new();
    let mut cross_thread_flows: Vec<AnalyzedFlow> = Vec::new();
    let mut edges_dropped = 0usize;
    let mut interrupted: Option<InterruptReason> = None;

    // The CI slicer's context collapse is rule-independent: build once.
    let ci_cache = match config.algorithm {
        Algorithm::CiThin => Some(taj_sdg::ci::CiCache::build(pts, program)),
        _ => None,
    };

    // Stage A: per-rule slice specs and program views, built in parallel
    // (views borrow their spec, hence the two indexed maps).
    let mut specs_span = recorder.span("phase2.specs");
    let specs: Vec<SliceSpec> = parallel::par_map(threads, resolved.len(), |i| {
        build_spec(prepared, pts, heap, &resolved[i], config)
    });
    if recorder.is_enabled() {
        specs_span.attr("rules", resolved.len());
    }
    specs_span.finish();
    let mut views_span = recorder.span("phase2.views");
    let views: Vec<ProgramView<'_>> =
        parallel::par_map(threads, resolved.len(), |i| ProgramView::build(program, pts, &specs[i]));
    if recorder.is_enabled() {
        let mut view_stats = taj_sdg::ViewStats::default();
        for view in &views {
            view_stats.add(view.stats());
        }
        views_span.attr("nodes", view_stats.nodes);
        views_span.attr("use_edges", view_stats.use_edges);
        views_span.attr("loads", view_stats.loads);
        views_span.attr("sources", view_stats.sources);
    }
    views_span.finish();

    // Stage B: slice the planned units over the work-stealing queue.
    let units = plan_units(config, &views);
    let bounds = SliceBounds {
        max_heap_transitions: config.max_heap_transitions,
        max_path_edges: config.cs_path_edge_budget,
    };
    let run_unit = |unit: &Unit| -> UnitStatus {
        let view = &views[unit.rule];
        let unit_supervisor = supervisor.fresh_meters();
        // Clone shares the unit's private meters: read back after the run
        // for the per-unit trace span (deterministic — fresh meters, and
        // the work is a function of the unit's input alone).
        let meters = unit_supervisor.clone();
        match config.algorithm {
            Algorithm::Hybrid => {
                let mut slicer = if config.escape_analysis {
                    HybridSlicer::with_concurrency(view, bounds, &phase1.escape, &phase1.mhp)
                } else {
                    HybridSlicer::new(view, bounds)
                }
                .with_supervisor(unit_supervisor);
                let result = match &unit.kind {
                    UnitKind::Whole => slicer.run(),
                    UnitKind::Seeds(r) => slicer.run_partition(r.clone(), 0..0),
                    UnitKind::RefSeeds(r) => slicer.run_partition(0..0, r.clone()),
                };
                UnitStatus::Done(UnitOut {
                    edges_dropped: slicer.edges_dropped(),
                    summaries: slicer.summaries_tabulated(),
                    steps: meters.steps(),
                    mem: meters.mem(),
                    facts: 0,
                    pops: 0,
                    result,
                })
            }
            Algorithm::Ifds => {
                let mut slicer = IfdsSlicer::new(view, config.access_path_depth)
                    .with_supervisor(unit_supervisor);
                let result = match &unit.kind {
                    UnitKind::Whole => slicer.run(),
                    // IFDS units are never split: access-path facts from
                    // different seeds share the summary table, and v1
                    // plans whole-rule units (see `plan_units`).
                    UnitKind::Seeds(_) | UnitKind::RefSeeds(_) => {
                        unreachable!("IFDS plans whole-rule units only")
                    }
                };
                UnitStatus::Done(UnitOut {
                    edges_dropped: 0,
                    summaries: slicer.summary_edges(),
                    steps: meters.steps(),
                    mem: meters.mem(),
                    facts: slicer.facts_created(),
                    pops: slicer.worklist_pops(),
                    result,
                })
            }
            Algorithm::CiThin => {
                let mut slicer = CiSlicer::with_cache(
                    view,
                    bounds,
                    ci_cache.as_ref().expect("built for CI above"),
                )
                .with_supervisor(unit_supervisor);
                let result = match &unit.kind {
                    UnitKind::Whole => slicer.run(),
                    UnitKind::Seeds(r) => slicer.run_partition(r.clone()),
                    UnitKind::RefSeeds(_) => unreachable!("CI plans no by-reference units"),
                };
                UnitStatus::Done(UnitOut {
                    edges_dropped: 0,
                    summaries: 0,
                    steps: meters.steps(),
                    mem: meters.mem(),
                    facts: 0,
                    pops: 0,
                    result,
                })
            }
            Algorithm::CsThin => {
                let run = if config.escape_analysis {
                    CsSlicer::with_escape(view, bounds, &phase1.escape)
                } else {
                    CsSlicer::new(view, bounds)
                }
                .with_supervisor(unit_supervisor)
                .run();
                match run {
                    Ok(result) => UnitStatus::Done(UnitOut {
                        edges_dropped: 0,
                        summaries: 0,
                        steps: meters.steps(),
                        mem: meters.mem(),
                        facts: 0,
                        pops: 0,
                        result,
                    }),
                    Err(taj_sdg::SliceError::OutOfBudget { path_edges }) => {
                        UnitStatus::Oom { path_edges }
                    }
                }
            }
        }
    };
    // Units queued behind the first abnormal one are dead weight — the
    // prefix merge will drop them — so workers skip them once any unit
    // goes abnormal (`fetch_min` keeps the floor at the lowest index).
    let abort_floor = AtomicUsize::new(usize::MAX);
    let statuses = parallel::par_map_timed(threads, units.len(), recorder, |i| {
        if i > abort_floor.load(Ordering::Relaxed) {
            return UnitStatus::Skipped;
        }
        let status = run_unit(&units[i]);
        let abnormal = matches!(&status, UnitStatus::Oom { .. })
            || matches!(&status, UnitStatus::Done(o) if o.result.interrupted.is_some());
        if abnormal {
            abort_floor.fetch_min(i, Ordering::Relaxed);
        }
        status
    });

    // Deterministic merge, in unit-index order: keep everything up to and
    // including the first abnormal unit, drop the rest. Per-unit trace
    // spans are emitted HERE, for exactly the merged prefix — emitting
    // them from the workers would leak scheduling (which units ran before
    // the abort floor rose) into the event set.
    let mut rule_flows: Vec<Vec<Flow>> = resolved.iter().map(|_| Vec::new()).collect();
    let mut seen: Vec<HashSet<(StmtNode, StmtNode, usize)>> =
        resolved.iter().map(|_| HashSet::new()).collect();
    let mut summary_edges = 0usize;
    for (index, (unit, (status, timing))) in units.iter().zip(statuses).enumerate() {
        match status {
            // Skipped units are strictly behind an abnormal unit, which
            // this in-order scan reaches first; defensive break.
            UnitStatus::Skipped => break,
            UnitStatus::Oom { path_edges } => {
                if recorder.is_enabled() {
                    recorder.event("phase2.oom", vec![("path_edges", path_edges.into())]);
                }
                return Err(TajError::OutOfMemory { path_edges });
            }
            UnitStatus::Done(out) => {
                stats.heap_transitions += out.result.heap_transitions;
                stats.slicer_work += out.result.work;
                stats.slice_budget_exhausted |= out.result.budget_exhausted;
                edges_dropped += out.edges_dropped;
                summary_edges += out.summaries;
                stats.ifds_facts += out.facts;
                stats.ifds_worklist_pops += out.pops;
                if matches!(config.algorithm, Algorithm::Ifds) {
                    stats.ifds_summary_edges += out.summaries;
                }
                if recorder.is_enabled() {
                    let mut attrs: Vec<(&'static str, AttrValue)> = vec![
                        ("unit", index.into()),
                        ("rule", resolved[unit.rule].issue.to_string().into()),
                        ("kind", unit.kind.label().into()),
                        ("flows", out.result.flows.len().into()),
                        ("work", out.result.work.into()),
                        ("heap_transitions", out.result.heap_transitions.into()),
                        ("summaries", out.summaries.into()),
                        ("steps", out.steps.into()),
                        ("mem", out.mem.into()),
                    ];
                    if matches!(config.algorithm, Algorithm::Ifds) {
                        attrs.push(("facts", out.facts.into()));
                        attrs.push(("pops", out.pops.into()));
                    }
                    if let Some(reason) = out.result.interrupted {
                        attrs.push(("interrupted", reason.as_str().into()));
                    }
                    recorder.record(TraceEvent {
                        name: "phase2.unit",
                        start_us: timing.start_us,
                        dur_us: Some(timing.dur_us),
                        attrs,
                    });
                }
                for f in out.result.flows {
                    // Replays the sequential engine's `seen_flows` dedup
                    // across partitions of the same rule: its key is
                    // exactly `(seed stmt, sink, position)`.
                    if seen[unit.rule].insert((f.source, f.sink, f.sink_pos)) {
                        rule_flows[unit.rule].push(f);
                    }
                }
                if out.result.interrupted.is_some() {
                    interrupted = out.result.interrupted;
                    break;
                }
            }
        }
    }

    // Per-rule post-processing in rule order: flow-length filter
    // (§6.2.2), flow description, and LCP dedup — all over the merged,
    // order-stable flow lists.
    let mut post_span = recorder.span("phase2.post");
    for (i, rule) in resolved.iter().enumerate() {
        let mut flows: Vec<Flow> = std::mem::take(&mut rule_flows[i]);
        if flows.is_empty() {
            continue;
        }
        if let Some(max) = config.max_flow_len {
            let before = flows.len();
            flows.retain(|f| f.len() <= max);
            stats.flows_len_filtered += before - flows.len();
        }
        let tagged: Vec<(IssueType, Flow)> =
            flows.iter().map(|f| (rule.issue, f.clone())).collect();
        for f in &flows {
            flows_out.push(describe_flow(program, pts, rule.issue, f));
            if flow_crosses_threads(&phase1.mhp, f) {
                cross_thread_flows.push(describe_flow(program, pts, rule.issue, f));
            }
        }
        for finding in lcp::deduplicate(&views[i], &tagged) {
            findings.push(TajFinding {
                flow: describe_flow(program, pts, finding.issue, &finding.flow),
                lcp_owner_class: stmt_class(program, pts, finding.lcp),
                group_size: finding.group_size,
            });
        }
    }
    if recorder.is_enabled() {
        post_span.attr("findings", findings.len());
        post_span.attr("flows", flows_out.len());
        post_span.attr("flows_len_filtered", stats.flows_len_filtered);
    }
    post_span.finish();
    if recorder.is_enabled() {
        phase_span.attr("units", units.len());
        phase_span.attr("slicer_work", stats.slicer_work);
        phase_span.attr("heap_transitions", stats.heap_transitions);
        phase_span.attr("summary_edges", summary_edges);
        if let Some(reason) = interrupted {
            phase_span.attr("interrupted", reason.as_str());
        }
    }
    // Spans are the single timing source: `slice_ms` is the measured
    // `phase2` span, `total_ms` its sum with the phase-1 span.
    let slice_elapsed = phase_span.finish();
    stats.slice_ms = slice_elapsed.as_millis();
    stats.total_ms = pointer_ms + slice_elapsed.as_millis();

    let concurrency = ConcurrencyReport {
        spawn_sites: phase1.escape.num_spawn_sites(),
        escaping_objects: phase1.escape.num_escaping(),
        total_objects: phase1.escape.total_objects(),
        parallel_nodes: phase1.mhp.num_parallel_nodes(),
        cross_thread_edges_dropped: edges_dropped,
        cross_thread_flows,
    };

    Ok((
        TajReport {
            config: config.name.to_string(),
            findings,
            flows: flows_out,
            stats,
            concurrency,
            degradation: DegradationReport::default(),
        },
        interrupted,
    ))
}

fn build_spec(
    prepared: &PreparedProgram,
    pts: &PointsTo,
    heap: &HeapGraph,
    rule: &crate::rules::ResolvedRule,
    config: &TajConfig,
) -> SliceSpec {
    let program = &prepared.program;
    let mut spec = SliceSpec::default();
    let get_message =
        program.class_by_name("Throwable").and_then(|c| program.method_by_name(c, "getMessage"));
    for &s in &rule.sources {
        // For the InfoLeak rule, `getMessage` is a source only at the
        // synthesized catch-site calls (§4.1.2), not everywhere.
        if rule.uses_exception_sources() && Some(s) == get_message {
            continue;
        }
        spec.sources.insert(s);
    }
    spec.sanitizers.extend(rule.sanitizers.iter().copied());
    for (m, pos) in &rule.sinks {
        spec.sinks.insert(*m, pos.clone());
    }
    for (m, pos) in &rule.ref_sources {
        spec.ref_sources.insert(*m, pos.clone());
    }
    if rule.uses_exception_sources() {
        for &(method, loc) in &prepared.synthetic_sites {
            for node in pts.callgraph.nodes_of_method(method) {
                spec.synthetic_source_sites.push(StmtNode { node, loc });
            }
        }
    }
    spec.carrier_sinks =
        crate::carriers::build_carrier_index(program, pts, heap, rule, config.nested_depth);
    spec
}

fn describe_flow(program: &Program, pts: &PointsTo, issue: IssueType, flow: &Flow) -> AnalyzedFlow {
    AnalyzedFlow {
        issue,
        source_method: program.method(flow.source_method).name.clone(),
        sink_method: program.method(flow.sink_method).name.clone(),
        sink_owner_class: stmt_class(program, pts, flow.sink),
        source_owner_class: stmt_class(program, pts, flow.source),
        flow_len: flow.len(),
        heap_transitions: flow.heap_transitions,
    }
}

fn stmt_class(program: &Program, pts: &PointsTo, stmt: StmtNode) -> String {
    let m = pts.callgraph.method_of(stmt.node);
    program.class(program.method(m).owner).name.clone()
}

/// Does the flow's witness path hop between statements that can never
/// execute on the same thread? That is the signature of taint traveling
/// through an escaping object from one thread to another.
fn flow_crosses_threads(mhp: &MhpRelation, flow: &Flow) -> bool {
    flow.path.windows(2).any(|w| !mhp.same_thread_possible(w[0].stmt.node, w[1].stmt.node))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TajConfig;
    use crate::rules::RuleSet;

    const XSS_SERVLET: &str = r#"
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String name = req.getParameter("name");
                PrintWriter w = resp.getWriter();
                w.println(name);
            }
        }
    "#;

    #[test]
    fn end_to_end_xss_detected() {
        let report = analyze_source(
            XSS_SERVLET,
            None,
            RuleSet::default_rules(),
            &TajConfig::hybrid_unbounded(),
        )
        .unwrap();
        assert_eq!(report.issue_count(), 1, "{report:#?}");
        assert_eq!(report.findings[0].flow.issue, IssueType::Xss);
        assert_eq!(report.findings[0].flow.sink_method, "println");
        assert_eq!(report.findings[0].flow.sink_owner_class, "Page");
    }

    #[test]
    fn all_configs_run_the_servlet() {
        let prepared = prepare(XSS_SERVLET, None, RuleSet::default_rules()).unwrap();
        for config in TajConfig::all() {
            let report = analyze_prepared(&prepared, &config).unwrap();
            assert_eq!(report.issue_count(), 1, "{}", config.name);
        }
    }

    /// Pins the field list of [`Phase1`] and the validity domain of
    /// [`Phase1::matches`]. `Phase1` is shared read-only across phase-2
    /// worker threads and keyed in the daemon's artifact cache purely by
    /// `(max_cg_nodes, priority)` — so it must never grow state that
    /// depends on the thread count (or any other execution parameter).
    /// Adding a field to `Phase1` breaks this destructuring on purpose:
    /// whoever adds one must decide here whether it belongs in the cache
    /// validity domain.
    #[test]
    fn phase1_matches_pins_the_validity_domain() {
        let prepared = prepare(XSS_SERVLET, None, RuleSet::default_rules()).unwrap();
        let config = TajConfig::hybrid_unbounded();
        let phase1 = run_phase1(&prepared, &config);

        // Exhaustive destructuring: a new `Phase1` field fails to compile
        // until it is audited for thread-count independence.
        let Phase1 {
            pts: _,
            heap: _,
            escape: _,
            mhp: _,
            pointer_ms: _,
            interrupted,
            summary_key,
            methods_resolved,
            cg_key,
        } = &phase1;
        assert!(interrupted.is_none());
        assert_eq!(*cg_key, (config.max_cg_nodes, config.priority));
        // Summary provenance is observation metadata: plain runs carry
        // none, and it must stay outside the `matches` validity domain
        // (the solution is byte-identical to a cold solve regardless).
        assert_eq!(*summary_key, None);
        assert_eq!(*methods_resolved, 0);

        // `matches` accepts every config with the same call-graph
        // settings and rejects any config that differs in either
        // component of the key.
        for other in TajConfig::all() {
            assert_eq!(
                phase1.matches(&other),
                other.max_cg_nodes == config.max_cg_nodes && other.priority == config.priority,
                "matches() must compare exactly (max_cg_nodes, priority) for {}",
                other.name
            );
        }
        let mut prioritized = config;
        prioritized.priority = !config.priority;
        assert!(!phase1.matches(&prioritized));
        let mut budgeted = config;
        budgeted.max_cg_nodes = Some(usize::MAX);
        assert!(!phase1.matches(&budgeted));
    }

    #[test]
    fn exception_leak_detected_via_carrier() {
        let src = r#"
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    PrintWriter w = resp.getWriter();
                    try { this.risky(); } catch (Exception e) { w.println(e); }
                }
                method void risky() { throw new RuntimeException("internal"); }
            }
        "#;
        let report =
            analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
                .unwrap();
        let leak = report
            .findings
            .iter()
            .find(|f| f.flow.issue == IssueType::InfoLeak)
            .unwrap_or_else(|| panic!("expected InfoLeak finding: {report:#?}"));
        assert_eq!(leak.flow.sink_method, "println");
    }

    #[test]
    fn plain_get_message_is_not_a_source() {
        // getMessage called outside a catch handler must not seed taint.
        let src = r#"
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    Exception e = new Exception("static text");
                    String m = e.getMessage();
                }
            }
        "#;
        let report =
            analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
                .unwrap();
        assert_eq!(report.issue_count(), 0, "{report:#?}");
    }

    #[test]
    fn sqli_and_xss_are_separate_rules() {
        let src = r#"
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    String id = req.getParameter("id");
                    Connection c = DriverManager.getConnection("db");
                    Statement st = c.createStatement();
                    st.executeQuery("SELECT " + id);
                    resp.getWriter().println(id);
                }
            }
        "#;
        let report =
            analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
                .unwrap();
        let issues: Vec<IssueType> = report.findings.iter().map(|f| f.flow.issue).collect();
        assert!(issues.contains(&IssueType::Xss), "{issues:?}");
        assert!(issues.contains(&IssueType::Sqli), "{issues:?}");
    }

    #[test]
    fn sanitizer_is_rule_specific() {
        // HTML-encoding does not fix SQL injection.
        let src = r#"
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    String id = req.getParameter("id");
                    String enc = Encoder.encodeForHTML(id);
                    Connection c = DriverManager.getConnection("db");
                    Statement st = c.createStatement();
                    st.executeQuery(enc);
                    resp.getWriter().println(enc);
                }
            }
        "#;
        let report =
            analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
                .unwrap();
        let issues: Vec<IssueType> = report.findings.iter().map(|f| f.flow.issue).collect();
        assert!(issues.contains(&IssueType::Sqli), "HTML encoding must not stop SQLi: {issues:?}");
        assert!(!issues.contains(&IssueType::Xss), "XSS is sanitized: {issues:?}");
    }

    #[test]
    fn struts_form_flow_detected() {
        let src = r#"
            class LoginForm extends ActionForm {
                field String user;
                ctor () { }
            }
            class LoginAction extends Action {
                ctor () { }
                method void execute(ActionMapping m, ActionForm f,
                                    HttpServletRequest req, HttpServletResponse resp) {
                    LoginForm lf = (LoginForm) f;
                    String u = lf.user;
                    resp.getWriter().println(u);
                }
            }
        "#;
        let report =
            analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
                .unwrap();
        assert!(
            report.findings.iter().any(|f| f.flow.issue == IssueType::Xss),
            "tainted ActionForm field must reach the sink: {report:#?}"
        );
    }
}
