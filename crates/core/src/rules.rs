//! Security rules (§3): triples `(sources, sanitizers, sinks)` per issue
//! type, resolved against a program's model library.
//!
//! The default rule set covers the four OWASP vulnerability classes the
//! paper targets (§1): cross-site scripting, injection flaws (SQLi and
//! command injection), malicious file execution, and information
//! leakage / improper error handling.

use serde::Serialize;

use jir::{MethodId, Program};

/// The vulnerability classes TAJ detects (§1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum IssueType {
    /// Cross-site scripting: user data rendered to a response.
    Xss,
    /// SQL injection: user data in a query string.
    Sqli,
    /// Command injection: user data in an executed command.
    CommandInjection,
    /// Malicious file execution: user data in file paths / stream APIs.
    MaliciousFile,
    /// Information leakage & improper error handling (exception text
    /// rendered to users).
    InfoLeak,
}

impl std::fmt::Display for IssueType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IssueType::Xss => "XSS",
            IssueType::Sqli => "SQLi",
            IssueType::CommandInjection => "CmdInjection",
            IssueType::MaliciousFile => "MaliciousFile",
            IssueType::InfoLeak => "InfoLeak",
        };
        f.write_str(s)
    }
}

/// A reference to a method by class and method name (resolved lazily).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodRef {
    /// Declaring class name.
    pub class: String,
    /// Method name.
    pub method: String,
}

impl MethodRef {
    /// Creates a reference.
    pub fn new(class: impl Into<String>, method: impl Into<String>) -> Self {
        MethodRef { class: class.into(), method: method.into() }
    }

    /// Resolves against a program (first match across arities).
    pub fn resolve(&self, program: &Program) -> Option<MethodId> {
        let c = program.class_by_name(&self.class)?;
        program.method_by_name(c, &self.method)
    }
}

/// One security rule: `(S1, S2, S3)` of §3.
#[derive(Clone, Debug)]
pub struct SecurityRule {
    /// The issue type this rule detects.
    pub issue: IssueType,
    /// Source methods (return value tainted).
    pub sources: Vec<MethodRef>,
    /// By-reference sources (footnote 2 of the paper): methods that taint
    /// the internal state of a parameter, with the tainted positions.
    pub ref_sources: Vec<(MethodRef, Vec<usize>)>,
    /// Sanitizers neutralizing this issue.
    pub sanitizers: Vec<MethodRef>,
    /// Sinks with the 0-based positions of vulnerable parameters.
    pub sinks: Vec<(MethodRef, Vec<usize>)>,
}

/// A resolved rule: method ids instead of names.
#[derive(Clone, Debug)]
pub struct ResolvedRule {
    /// Issue type.
    pub issue: IssueType,
    /// Resolved sources.
    pub sources: Vec<MethodId>,
    /// Resolved by-reference sources with tainted positions.
    pub ref_sources: Vec<(MethodId, Vec<usize>)>,
    /// Resolved sanitizers.
    pub sanitizers: Vec<MethodId>,
    /// Resolved sinks with positions.
    pub sinks: Vec<(MethodId, Vec<usize>)>,
}

/// A full rule set.
#[derive(Clone, Debug, Default)]
pub struct RuleSet {
    /// Rules, one per issue type typically.
    pub rules: Vec<SecurityRule>,
    /// Benign library classes excluded from analysis by name (§4.2.1's
    /// hand-written whitelist): their method bodies are replaced with
    /// no-op models before analysis.
    pub whitelist: Vec<String>,
}

impl RuleSet {
    /// The default TAJ rule set over the model library.
    pub fn default_rules() -> RuleSet {
        let web_sources = vec![
            MethodRef::new("HttpServletRequest", "getParameter"),
            MethodRef::new("HttpServletRequest", "getHeader"),
            MethodRef::new("HttpServletRequest", "getQueryString"),
            MethodRef::new("Cookie", "getValue"),
            MethodRef::new("Struts", "taintedInput"),
        ];
        RuleSet {
            whitelist: Vec::new(),
            rules: vec![
                SecurityRule {
                    issue: IssueType::Xss,
                    sources: web_sources.clone(),
                    ref_sources: vec![(MethodRef::new("RandomAccessFile", "readFully"), vec![0])],
                    sanitizers: vec![
                        MethodRef::new("URLEncoder", "encode"),
                        MethodRef::new("Encoder", "encodeForHTML"),
                    ],
                    sinks: vec![
                        (MethodRef::new("PrintWriter", "println"), vec![0]),
                        (MethodRef::new("PrintWriter", "print"), vec![0]),
                        (MethodRef::new("PrintWriter", "write"), vec![0]),
                    ],
                },
                SecurityRule {
                    issue: IssueType::Sqli,
                    ref_sources: vec![],
                    sources: web_sources.clone(),
                    sanitizers: vec![MethodRef::new("Encoder", "encodeForSQL")],
                    sinks: vec![
                        (MethodRef::new("Statement", "executeQuery"), vec![0]),
                        (MethodRef::new("Statement", "executeUpdate"), vec![0]),
                    ],
                },
                SecurityRule {
                    issue: IssueType::CommandInjection,
                    ref_sources: vec![],
                    sources: web_sources.clone(),
                    sanitizers: vec![MethodRef::new("Encoder", "encodeForOS")],
                    sinks: vec![(MethodRef::new("Runtime", "exec"), vec![0])],
                },
                SecurityRule {
                    issue: IssueType::MaliciousFile,
                    ref_sources: vec![],
                    sources: web_sources.clone(),
                    sanitizers: vec![MethodRef::new("Encoder", "canonicalize")],
                    sinks: vec![
                        (MethodRef::new("File", "<init>"), vec![0]),
                        (MethodRef::new("FileInputStream", "<init>"), vec![0]),
                        (MethodRef::new("FileWriter", "<init>"), vec![0]),
                    ],
                },
                SecurityRule {
                    issue: IssueType::InfoLeak,
                    ref_sources: vec![],
                    // InfoLeak sources are the synthesized getMessage call
                    // sites (§4.1.2); `getMessage` itself is listed so the
                    // synthesized calls resolve to a source method.
                    sources: vec![MethodRef::new("Throwable", "getMessage")],
                    sanitizers: vec![MethodRef::new("Encoder", "encodeForHTML")],
                    sinks: vec![
                        (MethodRef::new("PrintWriter", "println"), vec![0]),
                        (MethodRef::new("PrintWriter", "print"), vec![0]),
                    ],
                },
            ],
        }
    }

    /// Resolves every rule against `program`, dropping unresolvable refs.
    pub fn resolve(&self, program: &Program) -> Vec<ResolvedRule> {
        self.rules
            .iter()
            .map(|r| ResolvedRule {
                issue: r.issue,
                sources: r.sources.iter().filter_map(|m| m.resolve(program)).collect(),
                ref_sources: r
                    .ref_sources
                    .iter()
                    .filter_map(|(m, pos)| m.resolve(program).map(|id| (id, pos.clone())))
                    .collect(),
                sanitizers: r.sanitizers.iter().filter_map(|m| m.resolve(program)).collect(),
                sinks: r
                    .sinks
                    .iter()
                    .filter_map(|(m, pos)| m.resolve(program).map(|id| (id, pos.clone())))
                    .collect(),
            })
            .collect()
    }

    /// All source methods across rules (for the context policy and the
    /// priority scheme).
    pub fn all_sources(&self, program: &Program) -> std::collections::HashSet<MethodId> {
        self.rules
            .iter()
            .flat_map(|r| r.sources.iter())
            .filter_map(|m| m.resolve(program))
            .collect()
    }

    /// All taint-relevant methods (sources, sinks, sanitizers) — these get
    /// one level of call-string context in the pointer analysis (§3.1).
    pub fn taint_methods(&self, program: &Program) -> std::collections::HashSet<MethodId> {
        let mut out = std::collections::HashSet::new();
        for r in &self.rules {
            out.extend(r.sources.iter().filter_map(|m| m.resolve(program)));
            out.extend(r.sanitizers.iter().filter_map(|m| m.resolve(program)));
            out.extend(r.sinks.iter().filter_map(|(m, _)| m.resolve(program)));
        }
        out
    }
}

impl ResolvedRule {
    /// Whether this rule relies on synthesized exception sources.
    pub fn uses_exception_sources(&self) -> bool {
        self.issue == IssueType::InfoLeak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rules_resolve_against_stdlib() {
        let p = jir::stdlib::stdlib_program();
        let rules = RuleSet::default_rules();
        let resolved = rules.resolve(&p);
        assert_eq!(resolved.len(), 5);
        for r in &resolved {
            assert!(!r.sources.is_empty(), "{:?} has no sources", r.issue);
            assert!(!r.sinks.is_empty(), "{:?} has no sinks", r.issue);
        }
    }

    #[test]
    fn taint_methods_cover_all_roles() {
        let p = jir::stdlib::stdlib_program();
        let rules = RuleSet::default_rules();
        let tm = rules.taint_methods(&p);
        let req = p.class_by_name("HttpServletRequest").unwrap();
        let gp = p.method_by_name(req, "getParameter").unwrap();
        assert!(tm.contains(&gp));
        let pw = p.class_by_name("PrintWriter").unwrap();
        let pr = p.method_by_name(pw, "println").unwrap();
        assert!(tm.contains(&pr));
    }

    #[test]
    fn file_constructor_is_a_sink() {
        let p = jir::stdlib::stdlib_program();
        let rules = RuleSet::default_rules();
        let resolved = rules.resolve(&p);
        let mf = resolved.iter().find(|r| r.issue == IssueType::MaliciousFile).unwrap();
        let file = p.class_by_name("File").unwrap();
        let init = p.method_by_name(file, "<init>").unwrap();
        assert!(mf.sinks.iter().any(|(m, _)| *m == init));
    }

    #[test]
    fn issue_type_display() {
        assert_eq!(IssueType::Xss.to_string(), "XSS");
        assert_eq!(IssueType::Sqli.to_string(), "SQLi");
    }
}
