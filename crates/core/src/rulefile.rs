//! A small text format for user-authored security rules, in the spirit of
//! the specification files TAJ's commercial descendant ships with.
//!
//! ```text
//! # comment
//! rule XSS
//!   source HttpServletRequest.getParameter
//!   ref-source RandomAccessFile.readFully 0
//!   sanitizer URLEncoder.encode
//!   sink PrintWriter.println 0
//! end
//!
//! whitelist Relay
//! ```
//!
//! Issue names: `XSS`, `SQLi`, `CmdInjection`, `MaliciousFile`,
//! `InfoLeak`. Sink/ref-source lines take one or more 0-based parameter
//! positions.

use std::fmt;

use crate::rules::{IssueType, MethodRef, RuleSet, SecurityRule};

/// A rule-file syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleParseError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RuleParseError {}

fn issue_from(name: &str, line: usize) -> Result<IssueType, RuleParseError> {
    match name.to_ascii_lowercase().as_str() {
        "xss" => Ok(IssueType::Xss),
        "sqli" | "sql-injection" => Ok(IssueType::Sqli),
        "cmdinjection" | "command-injection" => Ok(IssueType::CommandInjection),
        "maliciousfile" | "malicious-file" => Ok(IssueType::MaliciousFile),
        "infoleak" | "information-leak" => Ok(IssueType::InfoLeak),
        other => Err(RuleParseError { line, message: format!("unknown issue type `{other}`") }),
    }
}

fn method_ref(spec: &str, line: usize) -> Result<MethodRef, RuleParseError> {
    match spec.split_once('.') {
        Some((class, method)) if !class.is_empty() && !method.is_empty() => {
            Ok(MethodRef::new(class, method))
        }
        _ => Err(RuleParseError {
            line,
            message: format!("expected `Class.method`, found `{spec}`"),
        }),
    }
}

fn positions(parts: &[&str], line: usize) -> Result<Vec<usize>, RuleParseError> {
    if parts.is_empty() {
        return Ok(vec![0]);
    }
    parts
        .iter()
        .map(|p| {
            p.parse::<usize>().map_err(|_| RuleParseError {
                line,
                message: format!("invalid parameter position `{p}`"),
            })
        })
        .collect()
}

/// Parses a rule file into a [`RuleSet`].
///
/// # Errors
/// Returns the first syntax problem with its line number.
pub fn parse_rules(text: &str) -> Result<RuleSet, RuleParseError> {
    let mut set = RuleSet::default();
    let mut current: Option<SecurityRule> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts[0] {
            "rule" => {
                if current.is_some() {
                    return Err(RuleParseError {
                        line: lineno,
                        message: "nested `rule` (missing `end`?)".into(),
                    });
                }
                let name = parts.get(1).ok_or(RuleParseError {
                    line: lineno,
                    message: "`rule` needs an issue type".into(),
                })?;
                current = Some(SecurityRule {
                    issue: issue_from(name, lineno)?,
                    sources: vec![],
                    ref_sources: vec![],
                    sanitizers: vec![],
                    sinks: vec![],
                });
            }
            "end" => match current.take() {
                Some(rule) => set.rules.push(rule),
                None => {
                    return Err(RuleParseError {
                        line: lineno,
                        message: "`end` without `rule`".into(),
                    })
                }
            },
            "whitelist" => {
                let name = parts.get(1).ok_or(RuleParseError {
                    line: lineno,
                    message: "`whitelist` needs a class name".into(),
                })?;
                set.whitelist.push((*name).to_string());
            }
            directive @ ("source" | "ref-source" | "sanitizer" | "sink") => {
                let rule = current.as_mut().ok_or(RuleParseError {
                    line: lineno,
                    message: format!("`{directive}` outside a rule block"),
                })?;
                let spec = parts.get(1).ok_or(RuleParseError {
                    line: lineno,
                    message: format!("`{directive}` needs `Class.method`"),
                })?;
                let mref = method_ref(spec, lineno)?;
                match directive {
                    "source" => rule.sources.push(mref),
                    "sanitizer" => rule.sanitizers.push(mref),
                    "sink" => rule.sinks.push((mref, positions(&parts[2..], lineno)?)),
                    _ => rule.ref_sources.push((mref, positions(&parts[2..], lineno)?)),
                }
            }
            other => {
                return Err(RuleParseError {
                    line: lineno,
                    message: format!("unknown directive `{other}`"),
                })
            }
        }
    }
    if current.is_some() {
        return Err(RuleParseError {
            line: text.lines().count(),
            message: "unterminated `rule` block".into(),
        });
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_source, TajConfig};

    const SAMPLE: &str = r#"
# custom header-only rule
rule XSS
  source HttpServletRequest.getHeader
  sanitizer Encoder.encodeForHTML
  sink PrintWriter.println 0
end
"#;

    #[test]
    fn parses_sample() {
        let set = parse_rules(SAMPLE).unwrap();
        assert_eq!(set.rules.len(), 1);
        let r = &set.rules[0];
        assert_eq!(r.issue, IssueType::Xss);
        assert_eq!(r.sources.len(), 1);
        assert_eq!(r.sinks[0].1, vec![0]);
    }

    #[test]
    fn custom_rules_drive_analysis() {
        // Under the custom rules, getParameter is *not* a source — only
        // getHeader is.
        let src = r#"
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    PrintWriter w = resp.getWriter();
                    w.println(req.getParameter("q"));
                    w.println(req.getHeader("ua"));
                }
            }
        "#;
        let rules = parse_rules(SAMPLE).unwrap();
        let report = analyze_source(src, None, rules, &TajConfig::hybrid_unbounded()).unwrap();
        assert_eq!(report.issue_count(), 1, "{report:#?}");
        assert_eq!(report.findings[0].flow.source_method, "getHeader");
    }

    #[test]
    fn whitelist_directive() {
        let set = parse_rules("whitelist Relay\nwhitelist Render\n").unwrap();
        assert_eq!(set.whitelist, vec!["Relay".to_string(), "Render".to_string()]);
    }

    #[test]
    fn ref_source_directive() {
        let set = parse_rules(
            "rule XSS\n  ref-source RandomAccessFile.readFully 0\n  sink PrintWriter.println 0\nend\n",
        )
        .unwrap();
        assert_eq!(set.rules[0].ref_sources.len(), 1);
        assert_eq!(set.rules[0].ref_sources[0].1, vec![0]);
    }

    #[test]
    fn error_positions() {
        for (text, needle) in [
            ("frobnicate", "unknown directive"),
            ("rule Nope\nend", "unknown issue type"),
            ("source A.b", "outside a rule"),
            ("rule XSS\nsource nodot\nend", "expected `Class.method`"),
            ("rule XSS\nsink A.b xyz\nend", "invalid parameter position"),
            ("rule XSS\n", "unterminated"),
            ("end", "without `rule`"),
        ] {
            let err = parse_rules(text).unwrap_err();
            assert!(err.to_string().contains(needle), "`{text}` → {err}");
        }
    }

    #[test]
    fn multi_position_sink() {
        let set = parse_rules("rule SQLi\n  sink Db.query 0 2\nend\n").unwrap();
        assert_eq!(set.rules[0].sinks[0].1, vec![0, 2]);
    }
}
