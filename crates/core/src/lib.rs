//! # taj-core — TAJ: Taint Analysis for Java(-like programs), in Rust
//!
//! The top of the `taj-rs` workspace: a faithful reproduction of *TAJ:
//! Effective Taint Analysis of Web Applications* (Tripp, Pistoia, Fink,
//! Sridharan, Weisman — PLDI 2009). It wires together:
//!
//! - security [`rules`] `(sources, sanitizers, sinks)` per issue type (§3);
//! - the two-phase [`driver`]: pointer analysis & call graph
//!   (crate `taj-pointer`, §3.1) followed by hybrid/CI/CS thin slicing
//!   (crate `taj-sdg`, §3.2);
//! - code modeling: taint [`carriers`] (§4.1.1), [`exceptions`] (§4.1.2),
//!   and web-[`frameworks`] — servlet & Struts entrypoint synthesis and
//!   EJB deployment-descriptor modeling (§4.2.2);
//! - [`lcp`] report minimization (§5);
//! - the bounded-analysis [`config`]urations of Table 1 (§6);
//! - TP/FP [`scoring`] against generated ground truth (Figure 4).
//!
//! ## Quick start
//!
//! ```
//! use taj_core::{analyze_source, RuleSet, TajConfig};
//!
//! let report = analyze_source(
//!     r#"
//!     class Page extends HttpServlet {
//!         method void doGet(HttpServletRequest req, HttpServletResponse resp) {
//!             String name = req.getParameter("name");
//!             resp.getWriter().println(name); // reflected XSS
//!         }
//!     }
//!     "#,
//!     None,
//!     taj_core::RuleSet::default_rules(),
//!     &TajConfig::hybrid_unbounded(),
//! )?;
//! assert_eq!(report.issue_count(), 1);
//! # Ok::<(), taj_core::TajError>(())
//! ```

#![warn(missing_docs)]

pub mod carriers;
pub mod config;
pub mod driver;
pub mod exceptions;
pub mod frameworks;
pub mod lcp;
pub mod parallel;
pub mod report;
pub mod rulefile;
pub mod rules;
pub mod scoring;
pub mod summaries;

pub use config::{Algorithm, TajConfig};
pub use driver::{
    analyze_prepared, analyze_prepared_opts, analyze_source, analyze_source_opts,
    analyze_with_phase1, analyze_with_phase1_opts, prepare, prepare_shared, prepare_traced,
    run_phase1, run_phase1_incremental, run_phase1_shared, run_phase1_supervised,
    run_phase1_traced, AnalysisStats, AnalyzedFlow, ConcurrencyReport, DegradationReport,
    DegradationStep, Phase1, PreparedProgram, RunOptions, TajError, TajFinding, TajReport,
};
pub use frameworks::{DeploymentDescriptor, EjbEntry};
pub use lcp::Finding;
pub use report::{concurrency_text, profile_text, to_sarif, to_text};
pub use rulefile::{parse_rules, RuleParseError};
pub use rules::{IssueType, MethodRef, ResolvedRule, RuleSet, SecurityRule};
pub use scoring::{score, GroundTruth, Score};
pub use summaries::{CallDep, DeltaPlan, MethodSummary, SummaryStore};
pub use taj_obs::Recorder;
pub use taj_supervise::{InterruptReason, Supervisor};
