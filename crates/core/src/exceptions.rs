//! Exception modeling (§4.1.2): at every catch site, synthesize
//! `msg = e.getMessage(); e.$excmsg = msg;` and mark the synthesized
//! `getMessage` call as an information-leakage source.
//!
//! The store makes the caught exception a *taint carrier* (§4.1.1), so a
//! subsequent `resp.getWriter().println(e)` is flagged through carrier
//! detection — reproducing the common `catch (Exception e) { out.println(e) }`
//! leak the paper highlights.

use jir::inst::{CallTarget, Inst, Loc};
use jir::{MethodId, Program};

/// Name of the synthetic field holding the leaked message.
pub const EXC_MSG_FIELD: &str = "$excmsg";

/// Instruments every catch site in `program`. Returns the synthesized
/// source call sites as `(method, loc)` pairs (the driver widens them to
/// call-graph nodes after pointer analysis).
///
/// Must run before SSA construction.
pub fn model_exceptions(program: &mut Program) -> Vec<(MethodId, Loc)> {
    let throwable = match program.class_by_name("Throwable") {
        Some(c) => c,
        None => return Vec::new(),
    };
    let get_message = match program.method_by_name(throwable, "getMessage") {
        Some(m) => m,
        None => return Vec::new(),
    };
    let str_ty = program.types.string();
    let msg_field = program.synthetic_field(EXC_MSG_FIELD, str_ty);

    let mut sites = Vec::new();
    for mid in 0..program.methods.len() {
        let method_id = MethodId::new(mid);
        // Skip library code: the paper instruments application catch
        // blocks (the leak is an application bug).
        let owner = program.methods[mid].owner;
        if program.class(owner).is_library {
            continue;
        }
        let Some(body) = program.methods[mid].body() else { continue };
        // Find CatchBind instructions.
        let mut targets: Vec<(usize, usize, jir::Var)> = Vec::new();
        for (b, block) in body.blocks.iter().enumerate() {
            for (i, inst) in block.insts.iter().enumerate() {
                if let Inst::CatchBind { dst, .. } = inst {
                    targets.push((b, i, *dst));
                }
            }
        }
        if targets.is_empty() {
            continue;
        }
        let body = program.methods[mid].body_mut().expect("checked body");
        // Insert from the back so earlier indices stay valid.
        targets.sort_by(|a, b| b.cmp(a));
        for (b, i, evar) in targets {
            let msg_var = body.fresh_var();
            body.var_types.push(str_ty);
            let call = Inst::Call {
                dst: Some(msg_var),
                target: CallTarget::Special(get_message),
                recv: Some(evar),
                args: vec![],
            };
            let store = Inst::Store { base: evar, field: msg_field, src: msg_var };
            body.blocks[b].insts.insert(i + 1, store);
            body.blocks[b].insts.insert(i + 1, call);
            sites.push((method_id, Loc::new(jir::BlockId(b as u32), i + 1)));
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_sites_instrumented() {
        let mut p = jir::frontend::parse_program(
            r#"
            class C {
                method void f() {
                    try { this.g(); } catch (Exception e) { this.h(e); }
                }
                method void g() { }
                method void h(Exception e) { }
            }
            "#,
        )
        .unwrap();
        let sites = model_exceptions(&mut p);
        assert_eq!(sites.len(), 1);
        let (m, loc) = sites[0];
        let body = p.method(m).body().unwrap();
        let inst = &body.blocks[loc.block.index()].insts[loc.idx as usize];
        assert!(
            matches!(inst, Inst::Call { target: CallTarget::Special(_), .. }),
            "synthesized getMessage call at recorded site, got {inst:?}"
        );
        // Followed by the carrier store.
        let store = &body.blocks[loc.block.index()].insts[loc.idx as usize + 1];
        assert!(matches!(store, Inst::Store { .. }));
        assert!(p.find_synthetic_field(EXC_MSG_FIELD).is_some());
    }

    #[test]
    fn library_catches_untouched() {
        let mut p = jir::frontend::parse_program(
            r#"
            library class L {
                method void f() {
                    try { this.g(); } catch (Exception e) { this.h(e); }
                }
                method void g() { }
                method void h(Exception e) { }
            }
            "#,
        )
        .unwrap();
        let sites = model_exceptions(&mut p);
        assert!(sites.is_empty(), "library catch sites are not instrumented");
    }

    #[test]
    fn no_catch_no_change() {
        let mut p = jir::frontend::parse_program("class C { method void f() { } }").unwrap();
        let before: usize =
            p.iter_methods().filter_map(|(_, m)| m.body()).map(|b| b.num_insts()).sum();
        let sites = model_exceptions(&mut p);
        let after: usize =
            p.iter_methods().filter_map(|(_, m)| m.body()).map(|b| b.num_insts()).sum();
        assert!(sites.is_empty());
        assert_eq!(before, after);
    }
}
