//! Library-call-point (LCP) report minimization (§5).
//!
//! An LCP is the last statement along a flow where data passes from
//! application code to library code. Two flows are equivalent when they
//! share the LCP **and** require the same remediation action (same issue
//! type); TAJ reports one representative per equivalence class, since
//! fixing the representative (inserting a sanitizer at the LCP) fixes the
//! whole class.

use std::collections::HashMap;

use taj_sdg::{Flow, ProgramView, StmtNode};

use crate::rules::IssueType;

/// A deduplicated finding: one representative flow per `(LCP, remediation)`
/// equivalence class.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Issue type (the remediation dimension of the equivalence).
    pub issue: IssueType,
    /// The library call point.
    pub lcp: StmtNode,
    /// Representative flow (the shortest in the class).
    pub flow: Flow,
    /// Number of raw flows collapsed into this finding.
    pub group_size: usize,
}

/// Computes the LCP of a flow: the last application statement from which
/// data crosses into library code (including the final sink call itself
/// when it is issued from application code).
pub fn lcp_of(view: &ProgramView<'_>, flow: &Flow) -> StmtNode {
    let mut last_crossing: Option<StmtNode> = None;
    let steps = &flow.path;
    for i in 0..steps.len() {
        let cur_app = !view.is_library_stmt(steps[i].stmt);
        if !cur_app {
            continue;
        }
        let crosses = if i + 1 < steps.len() {
            view.is_library_stmt(steps[i + 1].stmt)
        } else {
            // The sink statement: an application statement invoking a
            // library sink method is itself the crossing.
            true
        };
        if crosses {
            last_crossing = Some(steps[i].stmt);
        }
    }
    last_crossing.unwrap_or(flow.sink)
}

/// Groups raw flows into findings by `(LCP, issue)` equivalence (§5),
/// keeping the shortest flow of each class as its representative.
pub fn deduplicate(view: &ProgramView<'_>, flows: &[(IssueType, Flow)]) -> Vec<Finding> {
    let mut groups: HashMap<(StmtNode, IssueType), Vec<&Flow>> = HashMap::new();
    for (issue, flow) in flows {
        let lcp = lcp_of(view, flow);
        groups.entry((lcp, *issue)).or_default().push(flow);
    }
    let mut findings: Vec<Finding> = groups
        .into_iter()
        .map(|((lcp, issue), group)| {
            let representative = group.iter().min_by_key(|f| f.path.len()).expect("nonempty group");
            Finding { issue, lcp, flow: (*representative).clone(), group_size: group.len() }
        })
        .collect();
    findings.sort_by_key(|f| (f.issue, f.lcp.node, f.lcp.loc));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleSet;
    use taj_pointer::{analyze, SolverConfig};
    use taj_sdg::{HybridSlicer, SliceBounds, SliceSpec};

    /// Two sources merge into one value that crosses into library code at
    /// a single call statement: both flows share that LCP and collapse
    /// into one finding (the paper's p1/p2 case in Figure 3). A third flow
    /// reaches the sink through its own statement and stays separate.
    #[test]
    fn flows_through_same_lcp_collapse() {
        let src = r#"
            library class Render {
                static method void show(PrintWriter w, String s) { w.println(s); }
            }
            class Main {
                static method void main() {
                    HttpServletRequest req = new HttpServletRequest();
                    HttpServletResponse resp = new HttpServletResponse();
                    PrintWriter w = resp.getWriter();
                    String a = req.getParameter("a");
                    String b = req.getParameter("b");
                    String combined = a + b;
                    Render.show(w, combined);
                    String c = req.getParameter("c");
                    w.println(c);
                }
            }
        "#;
        let mut p = jir::frontend::build_program(src).unwrap();
        let c = p.class_by_name("Main").unwrap();
        p.entrypoints.push(p.method_by_name(c, "main").unwrap());
        let rules = RuleSet::default_rules();
        let pts = analyze(
            &p,
            &SolverConfig {
                policy: taj_pointer::PolicyConfig { taint_methods: rules.taint_methods(&p) },
                source_methods: rules.all_sources(&p),
                ..Default::default()
            },
        );
        let resolved = rules.resolve(&p);
        let xss = resolved.iter().find(|r| r.issue == IssueType::Xss).unwrap();
        let mut spec = SliceSpec::default();
        spec.sources.extend(xss.sources.iter().copied());
        spec.sanitizers.extend(xss.sanitizers.iter().copied());
        for (m, pos) in &xss.sinks {
            spec.sinks.insert(*m, pos.clone());
        }
        let view = taj_sdg::ProgramView::build(&p, &pts, &spec);
        let flows = HybridSlicer::new(&view, SliceBounds::default()).run().flows;
        assert_eq!(flows.len(), 3, "three raw source→sink flows, got {}", flows.len());
        let tagged: Vec<(IssueType, Flow)> =
            flows.into_iter().map(|f| (IssueType::Xss, f)).collect();
        let findings = deduplicate(&view, &tagged);
        // a and b share the Render.show LCP; c is separate.
        assert_eq!(findings.len(), 2, "expected 2 findings, got {findings:#?}");
        let sizes: Vec<usize> = {
            let mut v: Vec<usize> = findings.iter().map(|f| f.group_size).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sizes, vec![1, 2]);
    }

    /// Same source and LCP but different issue types stay separate
    /// (different remediation actions, §5's p4/p5 example).
    #[test]
    fn different_issue_types_stay_separate() {
        let a = StmtNode { node: taj_pointer::CGNodeId(0), loc: jir::Loc::new(jir::BlockId(0), 0) };
        let flow = Flow {
            source: a,
            source_method: jir::MethodId(0),
            sink: a,
            sink_method: jir::MethodId(1),
            sink_pos: 0,
            path: vec![taj_sdg::FlowStep { stmt: a, kind: taj_sdg::StepKind::Seed }],
            heap_transitions: 0,
        };
        // Build a trivial view over an empty program for classification.
        let mut p =
            jir::frontend::build_program("class Main { static method void main() { } }").unwrap();
        let c = p.class_by_name("Main").unwrap();
        p.entrypoints.push(p.method_by_name(c, "main").unwrap());
        let pts = analyze(&p, &SolverConfig::default());
        let spec = SliceSpec::default();
        let view = taj_sdg::ProgramView::build(&p, &pts, &spec);
        let tagged = vec![(IssueType::Xss, flow.clone()), (IssueType::Sqli, flow)];
        let findings = deduplicate(&view, &tagged);
        assert_eq!(findings.len(), 2);
    }
}
