//! Report rendering: plain text and SARIF 2.1.0 (the interchange format
//! consumed by modern code-scanning UIs — TAJ's commercial descendant,
//! AppScan Source, speaks it too).

use serde::Serialize;

use taj_obs::Recorder;

use crate::driver::TajReport;
use crate::rules::IssueType;

/// Renders the `--profile` per-phase breakdown: headline timings from the
/// report (whose `pointer_ms`/`slice_ms` are themselves span
/// measurements) followed by the recorder's per-span aggregation — one
/// line per span name with call count, total milliseconds, and summed
/// numeric attributes.
pub fn profile_text(report: &TajReport, recorder: &Recorder) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: {} — phase1 {} ms, phase2 {} ms, total {} ms",
        report.config, report.stats.pointer_ms, report.stats.slice_ms, report.stats.total_ms
    );
    out.push_str(&recorder.profile_text());
    out
}

/// Renders a human-readable multi-line summary of a report.
pub fn to_text(report: &TajReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} issue(s) from {} raw flow(s) in {} ms",
        report.config,
        report.issue_count(),
        report.flows.len(),
        report.stats.total_ms
    );
    for f in &report.findings {
        let _ = writeln!(
            out,
            "  [{}] {} -> {} in {} (LCP in {}, {} flow(s))",
            f.flow.issue,
            f.flow.source_method,
            f.flow.sink_method,
            f.flow.sink_owner_class,
            f.lcp_owner_class,
            f.group_size
        );
    }
    if report.degradation.degraded {
        let _ = writeln!(out, "  DEGRADED run:");
        for s in &report.degradation.steps {
            let _ = writeln!(out, "    [{}] {} -> {} ({})", s.stage, s.from, s.to, s.reason);
            let _ = writeln!(out, "      caveat: {}", s.caveat);
        }
    }
    out
}

/// Renders the concurrency section: escape/MHP statistics and the
/// cross-thread taint flows (the `--concurrency` report section).
pub fn concurrency_text(report: &TajReport) -> String {
    use std::fmt::Write as _;
    let c = &report.concurrency;
    let mut out = String::new();
    let _ = writeln!(out, "concurrency ({}):", report.config);
    let _ = writeln!(
        out,
        "  {} spawn site(s); {}/{} object(s) escape; {} call-graph node(s) may run in parallel",
        c.spawn_sites, c.escaping_objects, c.total_objects, c.parallel_nodes
    );
    if c.cross_thread_edges_dropped > 0 {
        let _ = writeln!(
            out,
            "  {} impossible cross-thread store->load edge(s) dropped",
            c.cross_thread_edges_dropped
        );
    }
    if c.cross_thread_flows.is_empty() {
        let _ = writeln!(out, "  no cross-thread taint flows");
    } else {
        let _ = writeln!(
            out,
            "  {} cross-thread taint flow(s) through escaping objects:",
            c.cross_thread_flows.len()
        );
        for f in &c.cross_thread_flows {
            let _ = writeln!(
                out,
                "    [{}] {} -> {} in {} ({} heap transition(s))",
                f.issue, f.source_method, f.sink_method, f.sink_owner_class, f.heap_transitions
            );
        }
    }
    out
}

/// SARIF rule metadata for an issue type.
fn rule_id(issue: IssueType) -> &'static str {
    match issue {
        IssueType::Xss => "taj/xss",
        IssueType::Sqli => "taj/sql-injection",
        IssueType::CommandInjection => "taj/command-injection",
        IssueType::MaliciousFile => "taj/malicious-file",
        IssueType::InfoLeak => "taj/information-leak",
    }
}

#[derive(Serialize)]
struct Sarif {
    #[serde(rename = "$schema")]
    schema: &'static str,
    version: &'static str,
    runs: Vec<SarifRun>,
}

#[derive(Serialize)]
struct SarifRun {
    tool: SarifTool,
    results: Vec<SarifResult>,
    properties: SarifProperties,
}

#[derive(Serialize)]
struct SarifProperties {
    concurrency: SarifConcurrency,
    degradation: crate::driver::DegradationReport,
}

#[derive(Serialize)]
struct SarifConcurrency {
    #[serde(rename = "spawnSites")]
    spawn_sites: usize,
    #[serde(rename = "escapingObjects")]
    escaping_objects: usize,
    #[serde(rename = "totalObjects")]
    total_objects: usize,
    #[serde(rename = "parallelNodes")]
    parallel_nodes: usize,
    #[serde(rename = "crossThreadEdgesDropped")]
    cross_thread_edges_dropped: usize,
    #[serde(rename = "crossThreadFlows")]
    cross_thread_flows: Vec<String>,
}

#[derive(Serialize)]
struct SarifTool {
    driver: SarifDriver,
}

#[derive(Serialize)]
struct SarifDriver {
    name: &'static str,
    #[serde(rename = "informationUri")]
    information_uri: &'static str,
    version: &'static str,
    rules: Vec<SarifRule>,
}

#[derive(Serialize)]
struct SarifRule {
    id: &'static str,
    name: String,
}

#[derive(Serialize)]
struct SarifResult {
    #[serde(rename = "ruleId")]
    rule_id: &'static str,
    level: &'static str,
    message: SarifMessage,
    locations: Vec<SarifLocation>,
}

#[derive(Serialize)]
struct SarifMessage {
    text: String,
}

#[derive(Serialize)]
struct SarifLocation {
    #[serde(rename = "logicalLocations")]
    logical_locations: Vec<SarifLogicalLocation>,
}

#[derive(Serialize)]
struct SarifLogicalLocation {
    #[serde(rename = "fullyQualifiedName")]
    fully_qualified_name: String,
    kind: &'static str,
}

/// Serializes a report as a SARIF 2.1.0 log.
///
/// # Errors
/// Returns a [`serde_json::Error`] if serialization fails (not expected
/// for well-formed reports).
pub fn to_sarif(report: &TajReport) -> Result<String, serde_json::Error> {
    let mut rules: Vec<SarifRule> = Vec::new();
    for issue in [
        IssueType::Xss,
        IssueType::Sqli,
        IssueType::CommandInjection,
        IssueType::MaliciousFile,
        IssueType::InfoLeak,
    ] {
        rules.push(SarifRule { id: rule_id(issue), name: issue.to_string() });
    }
    let results = report
        .findings
        .iter()
        .map(|f| SarifResult {
            rule_id: rule_id(f.flow.issue),
            level: "error",
            message: SarifMessage {
                text: format!(
                    "tainted data from {} reaches {} ({} flow(s) share this fix point; \
                     insert a sanitizer at the library call point in {})",
                    f.flow.source_method, f.flow.sink_method, f.group_size, f.lcp_owner_class
                ),
            },
            locations: vec![SarifLocation {
                logical_locations: vec![SarifLogicalLocation {
                    fully_qualified_name: format!(
                        "{}.{}",
                        f.flow.sink_owner_class, f.flow.sink_method
                    ),
                    kind: "function",
                }],
            }],
        })
        .collect();
    let c = &report.concurrency;
    let properties = SarifProperties {
        concurrency: SarifConcurrency {
            spawn_sites: c.spawn_sites,
            escaping_objects: c.escaping_objects,
            total_objects: c.total_objects,
            parallel_nodes: c.parallel_nodes,
            cross_thread_edges_dropped: c.cross_thread_edges_dropped,
            cross_thread_flows: c
                .cross_thread_flows
                .iter()
                .map(|f| {
                    format!(
                        "[{}] {} -> {} in {}",
                        f.issue, f.source_method, f.sink_method, f.sink_owner_class
                    )
                })
                .collect(),
        },
        degradation: report.degradation.clone(),
    };
    let sarif = Sarif {
        schema: "https://json.schemastore.org/sarif-2.1.0.json",
        version: "2.1.0",
        runs: vec![SarifRun {
            tool: SarifTool {
                driver: SarifDriver {
                    name: "taj-rs",
                    information_uri: "https://doi.org/10.1145/1542476.1542486",
                    version: env!("CARGO_PKG_VERSION"),
                    rules,
                },
            },
            results,
            properties,
        }],
    };
    serde_json::to_string_pretty(&sarif)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_source, RuleSet, TajConfig};

    fn sample_report() -> TajReport {
        analyze_source(
            r#"
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    resp.getWriter().println(req.getParameter("q"));
                }
            }
            "#,
            None,
            RuleSet::default_rules(),
            &TajConfig::hybrid_unbounded(),
        )
        .unwrap()
    }

    #[test]
    fn text_rendering_mentions_findings() {
        let text = to_text(&sample_report());
        assert!(text.contains("XSS"), "{text}");
        assert!(text.contains("getParameter"), "{text}");
        assert!(text.contains("Page"), "{text}");
    }

    #[test]
    fn sarif_is_valid_json_with_results() {
        let sarif = to_sarif(&sample_report()).unwrap();
        let v: serde_json::Value = serde_json::from_str(&sarif).unwrap();
        assert_eq!(v["version"], "2.1.0");
        assert_eq!(v["runs"][0]["tool"]["driver"]["name"], "taj-rs");
        assert_eq!(v["runs"][0]["results"][0]["ruleId"], "taj/xss");
        assert!(v["runs"][0]["results"][0]["message"]["text"]
            .as_str()
            .unwrap()
            .contains("getParameter"));
    }

    #[test]
    fn concurrency_section_reports_cross_thread_flow() {
        let src = r#"
            class Shared { field String v; ctor () { } }
            class Worker implements Runnable {
                field Shared s;
                field String in;
                ctor (Shared s, String in) { this.s = s; this.in = in; }
                method void run() {
                    Shared sh = this.s;
                    String x = this.in;
                    sh.v = x;
                }
            }
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    String p = req.getParameter("q");
                    Shared s = new Shared();
                    Worker w = new Worker(s, p);
                    Thread t = new Thread(w);
                    t.start();
                    String out = s.v;
                    resp.getWriter().println(out);
                }
            }
        "#;
        let report =
            analyze_source(src, None, RuleSet::default_rules(), &TajConfig::cs_escape()).unwrap();
        assert!(report.issue_count() >= 1, "escape repair finds the flow: {report:#?}");
        assert!(report.concurrency.spawn_sites >= 1);
        assert!(report.concurrency.escaping_objects >= 1);
        assert!(!report.concurrency.cross_thread_flows.is_empty());

        let text = concurrency_text(&report);
        assert!(text.contains("cross-thread taint flow"), "{text}");
        assert!(text.contains("println"), "{text}");

        let sarif = to_sarif(&report).unwrap();
        let v: serde_json::Value = serde_json::from_str(&sarif).unwrap();
        let conc = &v["runs"][0]["properties"]["concurrency"];
        assert!(conc["spawnSites"].as_u64().unwrap() >= 1, "{sarif}");
        assert!(conc["escapingObjects"].as_u64().unwrap() >= 1);
        assert!(!conc["crossThreadFlows"].as_array().unwrap().is_empty());
    }

    #[test]
    fn concurrency_section_is_quiet_for_single_threaded_code() {
        let text = concurrency_text(&sample_report());
        assert!(text.contains("0 spawn site(s)"), "{text}");
        assert!(text.contains("no cross-thread taint flows"), "{text}");
    }

    #[test]
    fn sarif_empty_report_has_no_results() {
        let report = analyze_source(
            "class Page extends HttpServlet { }",
            None,
            RuleSet::default_rules(),
            &TajConfig::hybrid_unbounded(),
        )
        .unwrap();
        let sarif = to_sarif(&report).unwrap();
        let v: serde_json::Value = serde_json::from_str(&sarif).unwrap();
        assert_eq!(v["runs"][0]["results"].as_array().unwrap().len(), 0);
    }
}
