//! Report rendering: plain text and SARIF 2.1.0 (the interchange format
//! consumed by modern code-scanning UIs — TAJ's commercial descendant,
//! AppScan Source, speaks it too).

use serde::Serialize;

use crate::driver::TajReport;
use crate::rules::IssueType;

/// Renders a human-readable multi-line summary of a report.
pub fn to_text(report: &TajReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} issue(s) from {} raw flow(s) in {} ms",
        report.config,
        report.issue_count(),
        report.flows.len(),
        report.stats.total_ms
    );
    for f in &report.findings {
        let _ = writeln!(
            out,
            "  [{}] {} -> {} in {} (LCP in {}, {} flow(s))",
            f.flow.issue,
            f.flow.source_method,
            f.flow.sink_method,
            f.flow.sink_owner_class,
            f.lcp_owner_class,
            f.group_size
        );
    }
    out
}

/// SARIF rule metadata for an issue type.
fn rule_id(issue: IssueType) -> &'static str {
    match issue {
        IssueType::Xss => "taj/xss",
        IssueType::Sqli => "taj/sql-injection",
        IssueType::CommandInjection => "taj/command-injection",
        IssueType::MaliciousFile => "taj/malicious-file",
        IssueType::InfoLeak => "taj/information-leak",
    }
}

#[derive(Serialize)]
struct Sarif {
    #[serde(rename = "$schema")]
    schema: &'static str,
    version: &'static str,
    runs: Vec<SarifRun>,
}

#[derive(Serialize)]
struct SarifRun {
    tool: SarifTool,
    results: Vec<SarifResult>,
}

#[derive(Serialize)]
struct SarifTool {
    driver: SarifDriver,
}

#[derive(Serialize)]
struct SarifDriver {
    name: &'static str,
    #[serde(rename = "informationUri")]
    information_uri: &'static str,
    version: &'static str,
    rules: Vec<SarifRule>,
}

#[derive(Serialize)]
struct SarifRule {
    id: &'static str,
    name: String,
}

#[derive(Serialize)]
struct SarifResult {
    #[serde(rename = "ruleId")]
    rule_id: &'static str,
    level: &'static str,
    message: SarifMessage,
    locations: Vec<SarifLocation>,
}

#[derive(Serialize)]
struct SarifMessage {
    text: String,
}

#[derive(Serialize)]
struct SarifLocation {
    #[serde(rename = "logicalLocations")]
    logical_locations: Vec<SarifLogicalLocation>,
}

#[derive(Serialize)]
struct SarifLogicalLocation {
    #[serde(rename = "fullyQualifiedName")]
    fully_qualified_name: String,
    kind: &'static str,
}

/// Serializes a report as a SARIF 2.1.0 log.
///
/// # Errors
/// Returns a [`serde_json::Error`] if serialization fails (not expected
/// for well-formed reports).
pub fn to_sarif(report: &TajReport) -> Result<String, serde_json::Error> {
    let mut rules: Vec<SarifRule> = Vec::new();
    for issue in [
        IssueType::Xss,
        IssueType::Sqli,
        IssueType::CommandInjection,
        IssueType::MaliciousFile,
        IssueType::InfoLeak,
    ] {
        rules.push(SarifRule { id: rule_id(issue), name: issue.to_string() });
    }
    let results = report
        .findings
        .iter()
        .map(|f| SarifResult {
            rule_id: rule_id(f.flow.issue),
            level: "error",
            message: SarifMessage {
                text: format!(
                    "tainted data from {} reaches {} ({} flow(s) share this fix point; \
                     insert a sanitizer at the library call point in {})",
                    f.flow.source_method,
                    f.flow.sink_method,
                    f.group_size,
                    f.lcp_owner_class
                ),
            },
            locations: vec![SarifLocation {
                logical_locations: vec![SarifLogicalLocation {
                    fully_qualified_name: format!(
                        "{}.{}",
                        f.flow.sink_owner_class, f.flow.sink_method
                    ),
                    kind: "function",
                }],
            }],
        })
        .collect();
    let sarif = Sarif {
        schema: "https://json.schemastore.org/sarif-2.1.0.json",
        version: "2.1.0",
        runs: vec![SarifRun {
            tool: SarifTool {
                driver: SarifDriver {
                    name: "taj-rs",
                    information_uri: "https://doi.org/10.1145/1542476.1542486",
                    version: env!("CARGO_PKG_VERSION"),
                    rules,
                },
            },
            results,
        }],
    };
    serde_json::to_string_pretty(&sarif)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_source, RuleSet, TajConfig};

    fn sample_report() -> TajReport {
        analyze_source(
            r#"
            class Page extends HttpServlet {
                method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                    resp.getWriter().println(req.getParameter("q"));
                }
            }
            "#,
            None,
            RuleSet::default_rules(),
            &TajConfig::hybrid_unbounded(),
        )
        .unwrap()
    }

    #[test]
    fn text_rendering_mentions_findings() {
        let text = to_text(&sample_report());
        assert!(text.contains("XSS"), "{text}");
        assert!(text.contains("getParameter"), "{text}");
        assert!(text.contains("Page"), "{text}");
    }

    #[test]
    fn sarif_is_valid_json_with_results() {
        let sarif = to_sarif(&sample_report()).unwrap();
        let v: serde_json::Value = serde_json::from_str(&sarif).unwrap();
        assert_eq!(v["version"], "2.1.0");
        assert_eq!(v["runs"][0]["tool"]["driver"]["name"], "taj-rs");
        assert_eq!(v["runs"][0]["results"][0]["ruleId"], "taj/xss");
        assert!(v["runs"][0]["results"][0]["message"]["text"]
            .as_str()
            .unwrap()
            .contains("getParameter"));
    }

    #[test]
    fn sarif_empty_report_has_no_results() {
        let report = analyze_source(
            "class Page extends HttpServlet { }",
            None,
            RuleSet::default_rules(),
            &TajConfig::hybrid_unbounded(),
        )
        .unwrap();
        let sarif = to_sarif(&report).unwrap();
        let v: serde_json::Value = serde_json::from_str(&sarif).unwrap();
        assert_eq!(v["runs"][0]["results"].as_array().unwrap().len(), 0);
    }
}
