//! Taint-carrier detection (§4.1.1): find, for every abstract object, the
//! sink call statements whose sensitive arguments may reach it in the heap
//! graph. The slicers then add a direct HSDG edge from any store into such
//! an object to the corresponding sink.
//!
//! The reachability search is bounded by the nested-taint depth (§6.2.3);
//! the paper found 2 dereference levels sufficient in practice.

use std::collections::HashMap;

use jir::inst::Inst;
use jir::util::BitSet;
use taj_pointer::{HeapGraph, PointsTo};
use taj_sdg::{CarrierSink, StmtNode};

use crate::rules::ResolvedRule;

/// Builds the carrier index for one rule: abstract object (raw instance
/// key) → sinks reachable from it.
///
/// Implements the three-step recipe of §4.1.1:
/// 1. For each sink invocation `sk`, let `Isk` be the union of points-to
///    sets of its sensitive formal parameters.
/// 2. Let `I*sk` be the instance keys reachable in the heap graph from
///    `Isk` (bounded by `nested_depth` dereferences).
/// 3. A store whose base points into `I*sk` gets an edge to `sk`.
pub fn build_carrier_index(
    program: &jir::Program,
    pts: &PointsTo,
    heap: &HeapGraph,
    rule: &ResolvedRule,
    nested_depth: Option<usize>,
) -> HashMap<u32, Vec<CarrierSink>> {
    let mut index: HashMap<u32, Vec<CarrierSink>> = HashMap::new();
    let sink_positions: HashMap<jir::MethodId, &[usize]> =
        rule.sinks.iter().map(|(m, p)| (*m, p.as_slice())).collect();

    for node in pts.callgraph.iter_nodes() {
        let method = pts.callgraph.method_of(node);
        let Some(body) = program.method(method).body() else { continue };
        for (bid, block) in body.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                let Inst::Call { args, .. } = inst else { continue };
                let loc = jir::Loc::new(bid, i);
                // Resolve sink callees at this site (body + intrinsic).
                let mut sink_callees: Vec<jir::MethodId> = Vec::new();
                for &t in pts.callgraph.targets(node, loc) {
                    let m = pts.callgraph.method_of(t);
                    if sink_positions.contains_key(&m) && !sink_callees.contains(&m) {
                        sink_callees.push(m);
                    }
                }
                for &(m, _) in pts.intrinsics_at(node, loc) {
                    if sink_positions.contains_key(&m) && !sink_callees.contains(&m) {
                        sink_callees.push(m);
                    }
                }
                for callee in sink_callees {
                    for &pos in sink_positions[&callee] {
                        let Some(&arg) = args.get(pos) else { continue };
                        let Some(arg_pts) = pts.local(node, arg) else { continue };
                        if arg_pts.is_empty() {
                            continue;
                        }
                        let reachable: BitSet = heap.reachable(arg_pts, nested_depth);
                        let sink =
                            CarrierSink { stmt: StmtNode { node, loc }, method: callee, pos };
                        for ik in reachable.iter() {
                            let entry = index.entry(ik).or_default();
                            if !entry.contains(&sink) {
                                entry.push(sink);
                            }
                        }
                    }
                }
            }
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleSet;
    use taj_pointer::{analyze, SolverConfig};

    #[test]
    fn carrier_index_covers_wrapped_objects() {
        let src = r#"
            class Wrapper {
                field String s;
                ctor (String s) { this.s = s; }
            }
            class Main {
                static method void main() {
                    HttpServletRequest req = new HttpServletRequest();
                    HttpServletResponse resp = new HttpServletResponse();
                    String t = req.getParameter("x");
                    Wrapper w = new Wrapper(t);
                    PrintWriter out = resp.getWriter();
                    out.println(w);
                }
            }
        "#;
        let mut p = jir::frontend::build_program(src).unwrap();
        let c = p.class_by_name("Main").unwrap();
        p.entrypoints.push(p.method_by_name(c, "main").unwrap());
        let pts = analyze(&p, &SolverConfig::default());
        let heap = HeapGraph::build(&pts);
        let rules = RuleSet::default_rules().resolve(&p);
        let xss = rules.iter().find(|r| r.issue == crate::rules::IssueType::Xss).unwrap();
        let index = build_carrier_index(&p, &pts, &heap, xss, Some(2));
        // The Wrapper allocation must map to the println sink.
        let wrapper = p.class_by_name("Wrapper").unwrap();
        let wrapper_ik = pts
            .iter_instance_keys()
            .find(|(_, k)| matches!(k, taj_pointer::InstanceKey::Alloc { class, .. } if *class == wrapper))
            .map(|(id, _)| id)
            .expect("wrapper allocated");
        assert!(
            index.contains_key(&wrapper_ik.0),
            "wrapper object must be in the carrier index: {index:?}"
        );
    }

    #[test]
    fn depth_zero_still_covers_direct_args() {
        // With depth 0, only the argument objects themselves are carriers.
        let src = r#"
            class Main {
                static method void main() {
                    HttpServletResponse resp = new HttpServletResponse();
                    Object o = new Object();
                    resp.getWriter().println(o);
                }
            }
        "#;
        let mut p = jir::frontend::build_program(src).unwrap();
        let c = p.class_by_name("Main").unwrap();
        p.entrypoints.push(p.method_by_name(c, "main").unwrap());
        let pts = analyze(&p, &SolverConfig::default());
        let heap = HeapGraph::build(&pts);
        let rules = RuleSet::default_rules().resolve(&p);
        let xss = rules.iter().find(|r| r.issue == crate::rules::IssueType::Xss).unwrap();
        let index = build_carrier_index(&p, &pts, &heap, xss, Some(0));
        assert!(!index.is_empty(), "the Object arg itself is a carrier root");
    }
}
