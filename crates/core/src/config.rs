//! The analysis configurations of the evaluation (Table 1): three hybrid
//! variants (unbounded, prioritized, fully optimized), the CS and CI
//! thin-slicing baselines, plus the concurrency-aware CS-Escape repair
//! (CS with thread-escape analysis closing the §7.2 soundness gap).

use serde::Serialize;

/// Which slicing algorithm drives phase 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum Algorithm {
    /// Hybrid thin slicing (§3.2).
    Hybrid,
    /// Context-sensitive thin slicing (baseline).
    CsThin,
    /// Context-insensitive thin slicing (baseline).
    CiThin,
    /// IFDS tabulation over bounded-depth access-path facts (post-paper;
    /// the independent cross-check engine of the differential harness).
    Ifds,
}

/// A full analysis configuration (one column of Table 1).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct TajConfig {
    /// Human-readable name as used in the paper's tables.
    pub name: &'static str,
    /// Slicing algorithm.
    pub algorithm: Algorithm,
    /// Call-graph node budget (§6.1); `None` = unbounded.
    pub max_cg_nodes: Option<usize>,
    /// Priority-driven call-graph construction (§6.1).
    pub priority: bool,
    /// Heap store→load transition bound during slicing (§6.2.1).
    pub max_heap_transitions: Option<usize>,
    /// Flow-length filter: drop flows longer than this (§6.2.2).
    pub max_flow_len: Option<usize>,
    /// Nested-taint field-dereference bound for carrier detection
    /// (§6.2.3); `None` = unbounded (sound) search.
    pub nested_depth: Option<usize>,
    /// Path-edge budget for the CS slicer (memory proxy; exceeding it is
    /// the paper's out-of-memory failure).
    pub cs_path_edge_budget: Option<usize>,
    /// Access-path depth bound `k` for the IFDS slicer: field chains
    /// longer than `k` widen to field-insensitive taint. Ignored by the
    /// other algorithms.
    pub access_path_depth: usize,
    /// Concurrency awareness: run the thread-escape + MHP analyses and
    /// use them in phase 2. For the CS slicer this reinstates heap-fact
    /// propagation across `Thread.start` edges for escaping objects
    /// (closing the §7.2 soundness gap); for the hybrid slicers it drops
    /// store→load edges that would require a cross-thread dependence on
    /// a non-escaping object (strictly a false-positive filter).
    pub escape_analysis: bool,
}

/// Paper-scale defaults, scaled ~10× down to our synthetic benchmarks:
/// the paper bounds call graphs at 20 000 nodes, heap transitions at
/// 20 000, flow length at 14, nested depth at 2.
pub mod defaults {
    /// Call-graph node budget for prioritized/optimized runs.
    pub const MAX_CG_NODES: usize = 3_500;
    /// Heap-transition budget for the optimized run.
    pub const MAX_HEAP_TRANSITIONS: usize = 2_000;
    /// Flow-length filter for the optimized run (same as the paper).
    pub const MAX_FLOW_LEN: usize = 14;
    /// Nested-taint depth for the optimized run (same as the paper).
    pub const NESTED_DEPTH: usize = 2;
    /// CS slicer path-edge budget (its "3 GB heap").
    pub const CS_PATH_EDGES: usize = 10_000;
    /// Access-path depth bound for the IFDS configuration.
    pub const ACCESS_PATH_DEPTH: usize = 2;
}

impl TajConfig {
    /// Hybrid, unbounded: runs to completion, no bounds (Table 1 col. 1).
    pub fn hybrid_unbounded() -> Self {
        TajConfig {
            name: "Hybrid-Unbounded",
            algorithm: Algorithm::Hybrid,
            max_cg_nodes: None,
            priority: false,
            max_heap_transitions: None,
            max_flow_len: None,
            nested_depth: None,
            cs_path_edge_budget: None,
            access_path_depth: defaults::ACCESS_PATH_DEPTH,
            escape_analysis: false,
        }
    }

    /// Hybrid, prioritized: priority-driven call-graph construction under
    /// a node budget (Table 1 col. 2).
    pub fn hybrid_prioritized() -> Self {
        TajConfig {
            name: "Hybrid-Prioritized",
            max_cg_nodes: Some(defaults::MAX_CG_NODES),
            priority: true,
            ..Self::hybrid_unbounded()
        }
    }

    /// Hybrid, fully optimized: priority + heap-transition bound +
    /// flow-length filter + nested-depth bound (Table 1 col. 3).
    pub fn hybrid_optimized() -> Self {
        TajConfig {
            name: "Hybrid-Optimized",
            max_heap_transitions: Some(defaults::MAX_HEAP_TRANSITIONS),
            max_flow_len: Some(defaults::MAX_FLOW_LEN),
            nested_depth: Some(defaults::NESTED_DEPTH),
            ..Self::hybrid_prioritized()
        }
    }

    /// Context-sensitive thin slicing (Table 1 col. 4).
    pub fn cs_thin() -> Self {
        TajConfig {
            name: "CS",
            algorithm: Algorithm::CsThin,
            cs_path_edge_budget: Some(defaults::CS_PATH_EDGES),
            ..Self::hybrid_unbounded()
        }
    }

    /// Context-insensitive thin slicing (Table 1 col. 5).
    pub fn ci_thin() -> Self {
        TajConfig { name: "CI", algorithm: Algorithm::CiThin, ..Self::hybrid_unbounded() }
    }

    /// CS thin slicing with the thread-escape repair (the sixth, post-paper
    /// configuration): identical to [`Self::cs_thin`] except that heap
    /// facts on escaping objects may cross `Thread.start` edges, recovering
    /// the multithreading false negatives of §7.2 / Figure 4.
    pub fn cs_escape() -> Self {
        TajConfig { name: "CS-Escape", escape_analysis: true, ..Self::cs_thin() }
    }

    /// IFDS tabulation with bounded-depth access paths (the seventh,
    /// post-paper configuration): a genuinely independent algorithm over
    /// the same phase-1 artifacts, used as the cross-check engine of the
    /// three-way differential harness. Unbounded like
    /// [`Self::hybrid_unbounded`] except for the access-path depth `k`
    /// (default [`defaults::ACCESS_PATH_DEPTH`]), past which taint
    /// widens to field-insensitive.
    pub fn ifds() -> Self {
        TajConfig { name: "IFDS", algorithm: Algorithm::Ifds, ..Self::hybrid_unbounded() }
    }

    /// A deliberately starved CS configuration (`cs-tiny`): a path-edge
    /// budget so small that any non-trivial program exhausts it. Exists
    /// to exercise the paper's out-of-memory failure mode — and the
    /// degradation ladder that replaces it — deterministically from
    /// every front door. Not a Table 1 column, so it is resolvable by
    /// name but absent from [`Self::all`].
    pub fn cs_tiny() -> Self {
        TajConfig { name: "CS-Tiny", cs_path_edge_budget: Some(4), ..Self::cs_thin() }
    }

    /// Looks a configuration up by name: either the Table 1 name
    /// (`Hybrid-Unbounded`, `CS`, ...) or the short CLI/protocol alias
    /// (`hybrid`, `cs`, `cs-escape`, ...). The single source of truth for
    /// every front door — the one-shot CLI, the daemon protocol, and the
    /// client all resolve names here, so they cannot drift.
    pub fn by_name(name: &str) -> Option<TajConfig> {
        Some(match name {
            "hybrid" | "unbounded" | "Hybrid-Unbounded" => Self::hybrid_unbounded(),
            "prioritized" | "Hybrid-Prioritized" => Self::hybrid_prioritized(),
            "optimized" | "Hybrid-Optimized" => Self::hybrid_optimized(),
            "cs" | "CS" => Self::cs_thin(),
            "ci" | "CI" => Self::ci_thin(),
            "cs_escape" | "cs-escape" | "escape" | "CS-Escape" => Self::cs_escape(),
            "cs_tiny" | "cs-tiny" | "CS-Tiny" => Self::cs_tiny(),
            "ifds" | "IFDS" => Self::ifds(),
            _ => return None,
        })
    }

    /// All seven configurations: the paper's five columns in order, then
    /// the CS-Escape repair and the IFDS cross-check engine.
    pub fn all() -> Vec<TajConfig> {
        vec![
            Self::hybrid_unbounded(),
            Self::hybrid_prioritized(),
            Self::hybrid_optimized(),
            Self::cs_thin(),
            Self::ci_thin(),
            Self::cs_escape(),
            Self::ifds(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_settings_matrix() {
        let u = TajConfig::hybrid_unbounded();
        assert!(!u.priority && u.max_cg_nodes.is_none() && u.max_flow_len.is_none());
        let p = TajConfig::hybrid_prioritized();
        assert!(p.priority && p.max_cg_nodes.is_some() && p.max_flow_len.is_none());
        let o = TajConfig::hybrid_optimized();
        assert!(
            o.priority
                && o.max_cg_nodes.is_some()
                && o.max_heap_transitions.is_some()
                && o.max_flow_len == Some(14)
                && o.nested_depth == Some(2)
        );
        let cs = TajConfig::cs_thin();
        assert_eq!(cs.algorithm, Algorithm::CsThin);
        assert!(cs.cs_path_edge_budget.is_some());
        assert!(!cs.escape_analysis);
        let ci = TajConfig::ci_thin();
        assert_eq!(ci.algorithm, Algorithm::CiThin);
        let ce = TajConfig::cs_escape();
        assert_eq!(ce.algorithm, Algorithm::CsThin);
        assert!(ce.escape_analysis);
        assert_eq!(ce.cs_path_edge_budget, cs.cs_path_edge_budget);
        let i = TajConfig::ifds();
        assert_eq!(i.algorithm, Algorithm::Ifds);
        assert_eq!(i.access_path_depth, defaults::ACCESS_PATH_DEPTH);
        assert!(i.max_cg_nodes.is_none() && i.max_heap_transitions.is_none());
    }

    #[test]
    fn by_name_resolves_table_names_and_aliases() {
        for c in TajConfig::all() {
            let resolved = TajConfig::by_name(c.name).expect("Table 1 name resolves");
            assert_eq!(resolved.name, c.name);
        }
        assert_eq!(TajConfig::by_name("hybrid").unwrap().name, "Hybrid-Unbounded");
        assert_eq!(TajConfig::by_name("cs-escape").unwrap().name, "CS-Escape");
        assert!(TajConfig::by_name("nope").is_none());
        assert!(TajConfig::by_name("").is_none());
    }

    #[test]
    fn seven_configurations() {
        let all = TajConfig::all();
        assert_eq!(all.len(), 7);
        // Only the repair configuration is concurrency-aware by default.
        assert_eq!(
            all.iter().filter(|c| c.escape_analysis).count(),
            1,
            "exactly one escape-enabled default configuration"
        );
        assert_eq!(all[5].name, "CS-Escape");
        assert_eq!(all[6].name, "IFDS");
    }
}
