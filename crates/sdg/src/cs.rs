//! Context-sensitive (CS) thin slicing [Sridharan et al., PLDI'07]: heap
//! dependencies are threaded through the call structure ("additional
//! method parameters and return values") instead of direct store→load
//! edges.
//!
//! This reproduces the paper's two observations about CS thin slicing
//! (§3.2, §7.2):
//!
//! 1. **It does not scale**: heap facts multiply against contexts, so the
//!    fact space explodes. We model the paper's out-of-memory failures
//!    with a deterministic path-edge budget ([`SliceBounds::max_path_edges`]);
//!    exceeding it aborts with [`SliceError::OutOfBudget`].
//! 2. **It is unsound for multi-threaded programs**: a heap write
//!    performed by a spawned thread never returns to the spawner, so heap
//!    facts do not propagate back across `Thread.start` edges — exactly
//!    the false negatives the paper reports on BlueBlog, I, and SBM.
//!
//! The second defect is repairable: [`CsSlicer::with_escape`] reinstates
//! heap-fact returns across spawn edges, but *only* for abstract objects
//! the thread-escape analysis proves shared (and for statics, which are
//! shared by definition). Thread-local heap facts still stop at the spawn
//! edge, so the repair recovers the multithreading false negatives
//! without readmitting the full fact explosion.

use std::collections::{HashMap, HashSet, VecDeque};

use jir::inst::{Loc, Var};
use taj_pointer::{spawn_edges, CGNodeId, EscapeAnalysis};
use taj_supervise::Supervisor;

use crate::spec::{Flow, FlowStep, SliceBounds, SliceError, SliceResult, StepKind, StmtNode};
use crate::view::{FieldKey, ProgramView, Use};

/// Direction discipline for heap facts: a fact that has descended into a
/// callee must not return upward through an unrelated call site (that
/// would be an unrealizable down-then-up path, e.g. through a shared
/// static factory). Facts at or above their origin node may still return.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Dir {
    /// At or above the originating store: may return to callers.
    Up,
    /// Below a call edge: may only descend further or feed loads.
    Down,
}

/// A CS slicing fact at a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum CsFact {
    /// A register carries taint.
    Var(Var),
    /// An abstract heap location `(instance key, field)` carries taint.
    Heap(u32, FieldKey, Dir),
    /// A static field carries taint.
    Static(jir::FieldId, Dir),
}

type Fact = (CGNodeId, CsFact);
/// Per-seed provenance: predecessor fact plus the steps taken.
type Parents = HashMap<Fact, (Option<Fact>, Vec<FlowStep>)>;

/// The context-sensitive thin slicer.
#[derive(Debug)]
pub struct CsSlicer<'a> {
    view: &'a ProgramView<'a>,
    bounds: SliceBounds,
    /// Call sites per node (for pushing heap facts into callees).
    callees_of: HashMap<CGNodeId, Vec<(Loc, CGNodeId)>>,
    /// Spawn edges keyed by the full `(caller, loc, callee)` triple —
    /// `Thread.start` edges whose heap effects never return. Keying on
    /// the callee too means an ordinary return from a *different* callee
    /// invoked at the same call site is never mistaken for a spawn
    /// return.
    spawn_sites: HashSet<(CGNodeId, Loc, CGNodeId)>,
    /// When set, the CS-Escape repair: heap facts on escaping objects
    /// (and all static facts) may return across spawn edges after all.
    escape: Option<&'a EscapeAnalysis>,
    /// Cooperative supervision handle (default: unbounded).
    supervisor: Supervisor,
}

impl<'a> CsSlicer<'a> {
    /// Creates a plain CS slicer, reproducing the paper's thread
    /// unsoundness.
    pub fn new(view: &'a ProgramView<'a>, bounds: SliceBounds) -> Self {
        Self::build(view, bounds, None)
    }

    /// Creates a CS slicer in the escape-repair mode: spawn edges stay
    /// closed for thread-local heap facts but open for facts on objects
    /// that `escape` proves shared between threads.
    pub fn with_escape(
        view: &'a ProgramView<'a>,
        bounds: SliceBounds,
        escape: &'a EscapeAnalysis,
    ) -> Self {
        Self::build(view, bounds, Some(escape))
    }

    fn build(
        view: &'a ProgramView<'a>,
        bounds: SliceBounds,
        escape: Option<&'a EscapeAnalysis>,
    ) -> Self {
        let mut callees_of: HashMap<CGNodeId, Vec<(Loc, CGNodeId)>> = HashMap::new();
        for e in &view.pts.callgraph.edges {
            callees_of.entry(e.caller).or_default().push((e.loc, e.callee));
        }
        let spawn_sites =
            spawn_edges(view.pts).into_iter().map(|e| (e.caller, e.loc, e.callee)).collect();
        CsSlicer { view, bounds, callees_of, spawn_sites, escape, supervisor: Supervisor::new() }
    }

    /// Attaches a supervisor; its checks run at both tabulation loops
    /// (`cs.tabulate` and `cs.heap_closure` sites). On an interrupt the
    /// slicer returns `Ok` with the flows found so far and
    /// [`SliceResult::interrupted`] set.
    pub fn with_supervisor(mut self, supervisor: Supervisor) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// The spawn-edge triples this slicer treats as thread boundaries.
    pub fn spawn_sites(&self) -> &HashSet<(CGNodeId, Loc, CGNodeId)> {
        &self.spawn_sites
    }

    /// Should the return of a heap/static fact from `callee` to `caller`
    /// at `cloc` be blocked? Plain CS blocks every spawn-edge return
    /// (the thread unsoundness); escape mode re-opens spawn edges for
    /// escaping objects (`ik = Some(..)`) and for statics (`ik = None`),
    /// which are shared by definition.
    fn blocks_return(
        &self,
        caller: CGNodeId,
        cloc: Loc,
        callee: CGNodeId,
        ik: Option<u32>,
    ) -> bool {
        if !self.spawn_sites.contains(&(caller, cloc, callee)) {
            return false;
        }
        match (self.escape, ik) {
            (Some(esc), Some(ik)) => !esc.escapes(ik),
            (Some(_), None) => false,
            (None, _) => true,
        }
    }

    /// Runs the slice from every source.
    ///
    /// # Errors
    /// Returns [`SliceError::OutOfBudget`] when the path-edge budget is
    /// exhausted — the analogue of the paper's CS out-of-memory runs.
    pub fn run(&mut self) -> Result<SliceResult, SliceError> {
        let seeds = self.view.seeds();
        let mut result = SliceResult::default();
        let mut seen_flows: HashSet<(StmtNode, StmtNode, usize)> = HashSet::new();
        let mut total_path_edges = 0usize;
        // CS thin slicing materializes heap dependencies as extra
        // parameters and returns of the SDG — for *every* heap location,
        // not only tainted ones. Building that closure is the paper's
        // scalability bottleneck (§3.2: "this treatment is a scalability
        // bottleneck"), so we charge it against the same budget.
        self.build_heap_dependence_closure(&mut total_path_edges, &mut result)?;
        if result.interrupted.is_some() {
            return Ok(result);
        }
        'seeds: for (stmt, sc) in seeds {
            let mut visited: HashSet<Fact> = HashSet::new();
            let mut parents: Parents = HashMap::new();
            let mut queue: VecDeque<Fact> = VecDeque::new();
            let seed_fact: Fact = (stmt.node, CsFact::Var(sc.dst));
            visited.insert(seed_fact);
            parents.insert(seed_fact, (None, vec![FlowStep { stmt, kind: StepKind::Seed }]));
            queue.push_back(seed_fact);

            while let Some(fact) = queue.pop_front() {
                if let Err(reason) = self.supervisor.check("cs.tabulate") {
                    result.interrupted = Some(reason);
                    break 'seeds;
                }
                result.work += 1;
                total_path_edges += 1;
                if let Some(max) = self.bounds.max_path_edges {
                    if total_path_edges > max {
                        return Err(SliceError::OutOfBudget { path_edges: total_path_edges });
                    }
                }
                let (node, cs) = fact;
                match cs {
                    CsFact::Var(v) => self.process_var(
                        node,
                        v,
                        fact,
                        stmt,
                        sc.method,
                        &mut visited,
                        &mut parents,
                        &mut queue,
                        &mut seen_flows,
                        &mut result,
                    ),
                    CsFact::Heap(ik, field, dir) => self.process_heap(
                        node,
                        ik,
                        field,
                        dir,
                        fact,
                        &mut visited,
                        &mut parents,
                        &mut queue,
                    ),
                    CsFact::Static(f, dir) => self.process_static(
                        node,
                        f,
                        dir,
                        fact,
                        &mut visited,
                        &mut parents,
                        &mut queue,
                    ),
                }
            }
        }
        Ok(result)
    }

    /// Computes the heap-as-parameters dependence closure: every store in
    /// the program injects a heap fact, which is then propagated along the
    /// call structure exactly like during slicing. The result is the set
    /// of summary param/return positions the CS SDG must materialize; the
    /// work is charged against the path-edge budget.
    fn build_heap_dependence_closure(
        &self,
        total_path_edges: &mut usize,
        result: &mut SliceResult,
    ) -> Result<(), SliceError> {
        let mut visited: HashSet<Fact> = HashSet::new();
        let mut queue: VecDeque<Fact> = VecDeque::new();
        // Seed: all stores (heap and static), program-wide.
        for node in self.view.pts.callgraph.iter_nodes() {
            for uses in self.view.node(node).uses.values() {
                for u in uses {
                    match u {
                        Use::Store { base, field, .. } => {
                            for ik in self.view.local_pts(node, *base).iter() {
                                let f = (node, CsFact::Heap(ik, *field, Dir::Up));
                                if visited.insert(f) {
                                    queue.push_back(f);
                                }
                            }
                        }
                        Use::StaticStore { field, .. } => {
                            let f = (node, CsFact::Static(*field, Dir::Up));
                            if visited.insert(f) {
                                queue.push_back(f);
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        // Propagate to a fixpoint under the budget.
        while let Some(fact) = queue.pop_front() {
            if let Err(reason) = self.supervisor.check("cs.heap_closure") {
                result.interrupted = Some(reason);
                return Ok(());
            }
            result.work += 1;
            *total_path_edges += 1;
            if let Some(max) = self.bounds.max_path_edges {
                if *total_path_edges > max {
                    return Err(SliceError::OutOfBudget { path_edges: *total_path_edges });
                }
            }
            let (node, cs) = fact;
            let push_plain = |f: Fact, q: &mut VecDeque<Fact>, v: &mut HashSet<Fact>| {
                if v.insert(f) {
                    q.push_back(f);
                }
            };
            match cs {
                CsFact::Var(v) => {
                    let Some(uses) = self.view.node(node).uses.get(&v) else { continue };
                    for u in uses.clone() {
                        match u {
                            Use::Flow { to, .. } => {
                                push_plain((node, CsFact::Var(to)), &mut queue, &mut visited)
                            }
                            Use::Store { base, field, .. } => {
                                for ik in self.view.local_pts(node, base).iter() {
                                    push_plain(
                                        (node, CsFact::Heap(ik, field, Dir::Up)),
                                        &mut queue,
                                        &mut visited,
                                    );
                                }
                            }
                            Use::StaticStore { field, .. } => push_plain(
                                (node, CsFact::Static(field, Dir::Up)),
                                &mut queue,
                                &mut visited,
                            ),
                            Use::Arg { loc, pos } => {
                                for &t in self.view.pts.callgraph.targets(node, loc) {
                                    let cm = self.view.pts.callgraph.method_of(t);
                                    let m = self.view.program.method(cm);
                                    let off = usize::from(!m.is_static);
                                    if pos + off < m.num_incoming() {
                                        push_plain(
                                            (t, CsFact::Var(Var((pos + off) as u32))),
                                            &mut queue,
                                            &mut visited,
                                        );
                                    }
                                }
                            }
                            Use::Ret { .. } => {
                                if let Some(sites) = self.view.return_sites.get(&node) {
                                    for &(caller, _, cdst) in sites {
                                        if let Some(d) = cdst {
                                            push_plain(
                                                (caller, CsFact::Var(d)),
                                                &mut queue,
                                                &mut visited,
                                            );
                                        }
                                    }
                                }
                            }
                            Use::SinkArg { .. } | Use::Sanitized { .. } => {}
                        }
                    }
                }
                CsFact::Heap(ik, field, dir) => {
                    for l in &self.view.node(node).loads {
                        if l.field == Some(field) {
                            if let Some(lb) = l.base {
                                if self.view.local_pts(node, lb).contains(ik) {
                                    push_plain(
                                        (node, CsFact::Var(l.dst)),
                                        &mut queue,
                                        &mut visited,
                                    );
                                }
                            }
                        }
                    }
                    if let Some(callees) = self.callees_of.get(&node) {
                        for &(_, callee) in callees {
                            push_plain(
                                (callee, CsFact::Heap(ik, field, Dir::Down)),
                                &mut queue,
                                &mut visited,
                            );
                        }
                    }
                    if dir == Dir::Up {
                        if let Some(sites) = self.view.return_sites.get(&node) {
                            for &(caller, cloc, _) in sites {
                                if !self.blocks_return(caller, cloc, node, Some(ik)) {
                                    push_plain(
                                        (caller, CsFact::Heap(ik, field, Dir::Up)),
                                        &mut queue,
                                        &mut visited,
                                    );
                                }
                            }
                        }
                    }
                }
                CsFact::Static(field, dir) => {
                    for l in &self.view.node(node).loads {
                        if l.static_field == Some(field) {
                            push_plain((node, CsFact::Var(l.dst)), &mut queue, &mut visited);
                        }
                    }
                    if let Some(callees) = self.callees_of.get(&node) {
                        for &(_, callee) in callees {
                            push_plain(
                                (callee, CsFact::Static(field, Dir::Down)),
                                &mut queue,
                                &mut visited,
                            );
                        }
                    }
                    if dir == Dir::Up {
                        if let Some(sites) = self.view.return_sites.get(&node) {
                            for &(caller, cloc, _) in sites {
                                if !self.blocks_return(caller, cloc, node, None) {
                                    push_plain(
                                        (caller, CsFact::Static(field, Dir::Up)),
                                        &mut queue,
                                        &mut visited,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn process_var(
        &self,
        node: CGNodeId,
        v: Var,
        fact: Fact,
        seed_stmt: StmtNode,
        seed_method: jir::MethodId,
        visited: &mut HashSet<Fact>,
        parents: &mut Parents,
        queue: &mut VecDeque<Fact>,
        seen_flows: &mut HashSet<(StmtNode, StmtNode, usize)>,
        result: &mut SliceResult,
    ) {
        let uses = match self.view.node(node).uses.get(&v) {
            Some(u) => u.clone(),
            None => return,
        };
        for u in uses {
            match u {
                Use::Flow { to, loc } => push(
                    visited,
                    parents,
                    queue,
                    (node, CsFact::Var(to)),
                    fact,
                    vec![FlowStep { stmt: StmtNode { node, loc }, kind: StepKind::Local }],
                ),
                Use::Store { loc, base, field } => {
                    let store_stmt = StmtNode { node, loc };
                    let base_pts = self.view.local_pts(node, base);
                    // Carrier detection applies in CS too (§4.1.1).
                    for ik in base_pts.iter() {
                        if let Some(sinks) = self.view.spec.carrier_sinks.get(&ik) {
                            for cs_sink in sinks.clone() {
                                if seen_flows.insert((seed_stmt, cs_sink.stmt, cs_sink.pos)) {
                                    let mut path = reconstruct(parents, fact);
                                    path.push(FlowStep { stmt: store_stmt, kind: StepKind::Local });
                                    path.push(FlowStep {
                                        stmt: cs_sink.stmt,
                                        kind: StepKind::CarrierEdge,
                                    });
                                    result.flows.push(Flow {
                                        source: seed_stmt,
                                        source_method: seed_method,
                                        sink: cs_sink.stmt,
                                        sink_method: cs_sink.method,
                                        sink_pos: cs_sink.pos,
                                        heap_transitions: count_heap(&path),
                                        path,
                                    });
                                }
                            }
                        }
                    }
                    // Heap facts instead of direct edges.
                    for ik in base_pts.iter() {
                        push(
                            visited,
                            parents,
                            queue,
                            (node, CsFact::Heap(ik, field, Dir::Up)),
                            fact,
                            vec![FlowStep { stmt: store_stmt, kind: StepKind::Local }],
                        );
                    }
                }
                Use::StaticStore { loc, field } => push(
                    visited,
                    parents,
                    queue,
                    (node, CsFact::Static(field, Dir::Up)),
                    fact,
                    vec![FlowStep { stmt: StmtNode { node, loc }, kind: StepKind::Local }],
                ),
                Use::Arg { loc, pos } => {
                    let call_stmt = StmtNode { node, loc };
                    for &t in self.view.pts.callgraph.targets(node, loc) {
                        let callee_method = self.view.pts.callgraph.method_of(t);
                        if self.view.spec.sanitizers.contains(&callee_method)
                            || self.view.spec.sources.contains(&callee_method)
                            || self.view.spec.sinks.contains_key(&callee_method)
                        {
                            continue;
                        }
                        let m = self.view.program.method(callee_method);
                        let off = usize::from(!m.is_static);
                        if pos + off >= m.num_incoming() {
                            continue;
                        }
                        push(
                            visited,
                            parents,
                            queue,
                            (t, CsFact::Var(Var((pos + off) as u32))),
                            fact,
                            vec![FlowStep { stmt: call_stmt, kind: StepKind::CallArg }],
                        );
                    }
                }
                Use::Ret { .. } => {
                    if let Some(sites) = self.view.return_sites.get(&node) {
                        for &(caller, cloc, cdst) in &sites.clone() {
                            if let Some(d) = cdst {
                                push(
                                    visited,
                                    parents,
                                    queue,
                                    (caller, CsFact::Var(d)),
                                    fact,
                                    vec![FlowStep {
                                        stmt: StmtNode { node: caller, loc: cloc },
                                        kind: StepKind::ReturnTo,
                                    }],
                                );
                            }
                        }
                    }
                }
                Use::SinkArg { loc, method, pos } => {
                    let sink_stmt = StmtNode { node, loc };
                    if seen_flows.insert((seed_stmt, sink_stmt, pos)) {
                        let mut path = reconstruct(parents, fact);
                        path.push(FlowStep { stmt: sink_stmt, kind: StepKind::Local });
                        result.flows.push(Flow {
                            source: seed_stmt,
                            source_method: seed_method,
                            sink: sink_stmt,
                            sink_method: method,
                            sink_pos: pos,
                            heap_transitions: count_heap(&path),
                            path,
                        });
                    }
                }
                Use::Sanitized { .. } => {}
            }
        }
    }

    /// A heap fact travels with the call structure: it reaches loads in
    /// the current node, flows into callees, and returns to callers —
    /// except across spawn edges (thread unsoundness, see module docs).
    #[allow(clippy::too_many_arguments)]
    fn process_heap(
        &self,
        node: CGNodeId,
        ik: u32,
        field: FieldKey,
        dir: Dir,
        fact: Fact,
        visited: &mut HashSet<Fact>,
        parents: &mut Parents,
        queue: &mut VecDeque<Fact>,
    ) {
        // Loads in this node.
        for l in &self.view.node(node).loads {
            let (Some(lf), Some(lbase)) = (l.field, l.base) else { continue };
            if lf != field {
                continue;
            }
            if self.view.local_pts(node, lbase).contains(ik) {
                push(
                    visited,
                    parents,
                    queue,
                    (node, CsFact::Var(l.dst)),
                    fact,
                    vec![FlowStep {
                        stmt: StmtNode { node, loc: l.loc },
                        kind: StepKind::HeapEdge,
                    }],
                );
            }
        }
        // Reflective invoke: the argument array's contents bind to the
        // invoked method's parameters.
        if field == FieldKey::Array {
            for &(inode, iloc, arr, callee) in &self.view.invoke_bindings {
                if inode != node {
                    continue; // call-structure consistency
                }
                if self.view.local_pts(inode, arr).contains(ik) {
                    let callee_method = self.view.pts.callgraph.method_of(callee);
                    let m = self.view.program.method(callee_method);
                    let off = usize::from(!m.is_static);
                    for i in 0..m.params.len() {
                        push(
                            visited,
                            parents,
                            queue,
                            (callee, CsFact::Var(Var((i + off) as u32))),
                            fact,
                            vec![FlowStep {
                                stmt: StmtNode { node: inode, loc: iloc },
                                kind: StepKind::HeapEdge,
                            }],
                        );
                    }
                }
            }
        }
        // Into callees ("heap as extra parameter") — the fact is now below
        // a call edge and loses the right to return upward.
        if let Some(callees) = self.callees_of.get(&node) {
            for &(loc, callee) in callees {
                push(
                    visited,
                    parents,
                    queue,
                    (callee, CsFact::Heap(ik, field, Dir::Down)),
                    fact,
                    vec![FlowStep { stmt: StmtNode { node, loc }, kind: StepKind::CallArg }],
                );
            }
        }
        // Back to callers ("heap as extra return value"): only for facts
        // at or above their origin (realizable paths), and never across
        // spawn edges (the CS thread unsoundness).
        if dir == Dir::Up {
            if let Some(sites) = self.view.return_sites.get(&node) {
                for &(caller, cloc, _) in &sites.clone() {
                    if self.blocks_return(caller, cloc, node, Some(ik)) {
                        continue; // CS thread unsoundness
                    }
                    push(
                        visited,
                        parents,
                        queue,
                        (caller, CsFact::Heap(ik, field, Dir::Up)),
                        fact,
                        vec![FlowStep {
                            stmt: StmtNode { node: caller, loc: cloc },
                            kind: StepKind::ReturnTo,
                        }],
                    );
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_static(
        &self,
        node: CGNodeId,
        field: jir::FieldId,
        dir: Dir,
        fact: Fact,
        visited: &mut HashSet<Fact>,
        parents: &mut Parents,
        queue: &mut VecDeque<Fact>,
    ) {
        for l in &self.view.node(node).loads {
            if l.static_field == Some(field) {
                push(
                    visited,
                    parents,
                    queue,
                    (node, CsFact::Var(l.dst)),
                    fact,
                    vec![FlowStep {
                        stmt: StmtNode { node, loc: l.loc },
                        kind: StepKind::HeapEdge,
                    }],
                );
            }
        }
        if let Some(callees) = self.callees_of.get(&node) {
            for &(loc, callee) in callees {
                push(
                    visited,
                    parents,
                    queue,
                    (callee, CsFact::Static(field, Dir::Down)),
                    fact,
                    vec![FlowStep { stmt: StmtNode { node, loc }, kind: StepKind::CallArg }],
                );
            }
        }
        if dir == Dir::Up {
            if let Some(sites) = self.view.return_sites.get(&node) {
                for &(caller, cloc, _) in &sites.clone() {
                    if self.blocks_return(caller, cloc, node, None) {
                        continue;
                    }
                    push(
                        visited,
                        parents,
                        queue,
                        (caller, CsFact::Static(field, Dir::Up)),
                        fact,
                        vec![FlowStep {
                            stmt: StmtNode { node: caller, loc: cloc },
                            kind: StepKind::ReturnTo,
                        }],
                    );
                }
            }
        }
    }
}

fn push(
    visited: &mut HashSet<Fact>,
    parents: &mut Parents,
    queue: &mut VecDeque<Fact>,
    nf: Fact,
    from: Fact,
    steps: Vec<FlowStep>,
) {
    if visited.insert(nf) {
        parents.insert(nf, (Some(from), steps));
        queue.push_back(nf);
    }
}

fn reconstruct(parents: &Parents, fact: Fact) -> Vec<FlowStep> {
    let mut rev = Vec::new();
    let mut cur = Some(fact);
    while let Some(f) = cur {
        let Some((prev, steps)) = parents.get(&f) else { break };
        rev.extend(steps.iter().rev().copied());
        cur = *prev;
    }
    rev.reverse();
    rev
}

fn count_heap(path: &[FlowStep]) -> usize {
    path.iter().filter(|s| matches!(s.kind, StepKind::HeapEdge | StepKind::CarrierEdge)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SliceSpec;
    use taj_pointer::{analyze, PointsTo, SolverConfig};

    fn build(src: &str) -> (jir::Program, PointsTo) {
        let mut program = jir::frontend::build_program(src).expect("builds");
        let mains: Vec<jir::MethodId> = program
            .iter_classes()
            .map(|(cid, _)| cid)
            .collect::<Vec<_>>()
            .into_iter()
            .filter_map(|cid| program.method_by_name(cid, "main"))
            .collect();
        program.entrypoints.extend(mains);
        let pts = analyze(&program, &SolverConfig::default());
        (program, pts)
    }

    const TWO_SPAWNS: &str = r#"
        class A implements Runnable { ctor () { } method void run() { } }
        class B implements Runnable { ctor () { } method void run() { } }
        class Main {
            static method void main() {
                A a = new A();
                Thread t = new Thread(a);
                t.start();
                B b = new B();
                Thread u = new Thread(b);
                u.start();
                Main.helper();
            }
            static method void helper() { }
        }
    "#;

    #[test]
    fn spawn_sites_are_keyed_by_full_edge_triple() {
        let (program, pts) = build(TWO_SPAWNS);
        let spec = SliceSpec::default();
        let view = ProgramView::build(&program, &pts, &spec);
        let slicer = CsSlicer::new(&view, SliceBounds::default());

        let sites = slicer.spawn_sites();
        assert_eq!(sites.len(), 2, "one triple per Thread.start edge: {sites:?}");
        // Each triple matches the canonical spawn-edge list exactly.
        let canonical: HashSet<(CGNodeId, Loc, CGNodeId)> =
            spawn_edges(&pts).into_iter().map(|e| (e.caller, e.loc, e.callee)).collect();
        assert_eq!(sites, &canonical);
        // The callees are distinct run() nodes (A.run and B.run), each at
        // a distinct call-site location of the same caller.
        let callees: HashSet<CGNodeId> = sites.iter().map(|&(_, _, c)| c).collect();
        assert_eq!(callees.len(), 2, "distinct spawned run() nodes");
        let locs: HashSet<(CGNodeId, Loc)> = sites.iter().map(|&(n, l, _)| (n, l)).collect();
        assert_eq!(locs.len(), 2, "distinct spawn call sites");
    }

    #[test]
    fn ordinary_calls_are_not_spawn_sites() {
        let (program, pts) = build(TWO_SPAWNS);
        let spec = SliceSpec::default();
        let view = ProgramView::build(&program, &pts, &spec);
        let slicer = CsSlicer::new(&view, SliceBounds::default());

        // Main.helper() is a plain call edge: it must not appear in
        // spawn_sites even though it shares the caller node.
        let helper_class = program.class_by_name("Main").unwrap();
        let helper = program.method_by_name(helper_class, "helper").unwrap();
        for node in pts.callgraph.nodes_of_method(helper) {
            assert!(
                !slicer.spawn_sites().iter().any(|&(_, _, c)| c == node),
                "helper() must not be a spawn callee"
            );
        }
        assert!(!slicer.spawn_sites().is_empty());
    }

    #[test]
    fn single_threaded_program_has_no_spawn_sites() {
        let (program, pts) = build(
            r#"
            class Main { static method void main() { Object o = new Object(); } }
        "#,
        );
        let spec = SliceSpec::default();
        let view = ProgramView::build(&program, &pts, &spec);
        let slicer = CsSlicer::new(&view, SliceBounds::default());
        assert!(slicer.spawn_sites().is_empty());
    }

    #[test]
    fn blocks_return_respects_escape_mode() {
        let (program, pts) = build(TWO_SPAWNS);
        let spec = SliceSpec::default();
        let view = ProgramView::build(&program, &pts, &spec);
        let heap = taj_pointer::HeapGraph::build(&pts);
        let esc = EscapeAnalysis::compute(&pts, &heap);

        let plain = CsSlicer::new(&view, SliceBounds::default());
        let repaired = CsSlicer::with_escape(&view, SliceBounds::default(), &esc);
        let &(caller, loc, callee) = plain.spawn_sites().iter().next().unwrap();

        // The spawned runnable itself escapes; a heap fact on it returns
        // only in escape mode. Statics always return in escape mode.
        let escaping_ik = esc.escaping().iter().next().expect("receiver escapes");
        assert!(plain.blocks_return(caller, loc, callee, Some(escaping_ik)));
        assert!(plain.blocks_return(caller, loc, callee, None));
        assert!(!repaired.blocks_return(caller, loc, callee, Some(escaping_ik)));
        assert!(!repaired.blocks_return(caller, loc, callee, None));

        // A thread-local object still may not return across the spawn.
        let local_ik = (0..pts.num_instance_keys() as u32).find(|&ik| !esc.escapes(ik));
        if let Some(ik) = local_ik {
            assert!(repaired.blocks_return(caller, loc, callee, Some(ik)));
        }

        // A non-spawn (caller, loc, callee) combination never blocks: the
        // same caller and loc with the *wrong* callee is not a spawn edge.
        assert!(!plain.blocks_return(caller, loc, caller, Some(escaping_ik)));
        let _ = program;
    }
}
