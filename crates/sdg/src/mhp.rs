//! May-happen-in-parallel (MHP) relation over call-graph nodes.
//!
//! A coarse but sound partition of the call graph into *thread sides*:
//!
//! - **main**: nodes reachable from the program entrypoints without
//!   crossing a `Thread.start` spawn edge;
//! - **spawned**: nodes reachable from a spawned `run` node (per spawn
//!   edge, so a node can be attributed to the specific threads that may
//!   execute it).
//!
//! A node can be on both sides (a helper called from `main` and from a
//!   `run` body). Two statements may happen in parallel iff they cannot be
//! shown to always execute on the same thread — the complement query,
//! [`MhpRelation::same_thread_possible`], is what the hybrid slicer's
//! escape filter needs: a store→load heap edge between nodes that can
//! *only* execute on different threads is real only if the object
//! actually escapes.
//!
//! The relation also carries a **start-before refinement** for
//! straight-line spawn sites: a statement in the spawning method that
//! precedes `t.start()` in the same basic block happens-before
//! everything the spawned thread does, and therefore does not run in
//! parallel with it.

use jir::inst::Loc;
use taj_pointer::{spawn_edges, CGNodeId, PointsTo, SpawnEdge};
use taj_supervise::{InterruptReason, Supervisor};

/// The computed MHP relation.
#[derive(Clone, Debug)]
pub struct MhpRelation {
    /// Per node: may it execute on the main thread?
    main: Vec<bool>,
    /// Per node: may it execute on any spawned thread?
    spawned_any: Vec<bool>,
    /// Per spawn edge: the nodes reachable from its spawned `run` node.
    spawned_reach: Vec<(SpawnEdge, Vec<bool>)>,
}

impl MhpRelation {
    /// Derives the MHP relation from the phase-1 call graph.
    pub fn compute(pts: &PointsTo) -> MhpRelation {
        Self::compute_supervised(pts, &Supervisor::new()).0
    }

    /// Supervised variant of [`MhpRelation::compute`]: checks run at the
    /// reachability loops (`mhp.reach` site). On an interrupt the
    /// *conservative* single-threaded relation is returned — it never
    /// lets the hybrid concurrency filter drop an edge, so a truncated
    /// MHP can only lose precision, never soundness.
    pub fn compute_supervised(
        pts: &PointsTo,
        supervisor: &Supervisor,
    ) -> (MhpRelation, Option<InterruptReason>) {
        let cg = &pts.callgraph;
        let n = cg.len();
        let edges = spawn_edges(pts);

        // Caller→callee pairs that exist *only* as spawn edges: the main
        // BFS must not cross them. (If the same pair also exists as an
        // ordinary call — e.g. code that invokes `run()` directly — it
        // stays traversable.)
        let mut spawn_only: Vec<(CGNodeId, CGNodeId)> =
            edges.iter().map(|e| (e.caller, e.callee)).collect();
        spawn_only.retain(|&(caller, callee)| {
            !cg.edges.iter().any(|e| {
                e.caller == caller
                    && e.callee == callee
                    && !edges
                        .iter()
                        .any(|s| s.caller == e.caller && s.loc == e.loc && s.callee == e.callee)
            })
        });

        let mut main = vec![false; n];
        let mut stack: Vec<CGNodeId> = Vec::new();
        for &e in &cg.entry_nodes {
            if !main[e.index()] {
                main[e.index()] = true;
                stack.push(e);
            }
        }
        while let Some(node) = stack.pop() {
            if let Err(reason) = supervisor.check("mhp.reach") {
                return (MhpRelation::single_threaded(n), Some(reason));
            }
            for &succ in cg.succs(node) {
                if spawn_only.contains(&(node, succ)) {
                    continue;
                }
                if !main[succ.index()] {
                    main[succ.index()] = true;
                    stack.push(succ);
                }
            }
        }

        let mut spawned_any = vec![false; n];
        let mut spawned_reach = Vec::with_capacity(edges.len());
        for &edge in &edges {
            let mut reach = vec![false; n];
            let mut stack = vec![edge.callee];
            reach[edge.callee.index()] = true;
            while let Some(node) = stack.pop() {
                if let Err(reason) = supervisor.check("mhp.reach") {
                    return (MhpRelation::single_threaded(n), Some(reason));
                }
                for &succ in cg.succs(node) {
                    if !reach[succ.index()] {
                        reach[succ.index()] = true;
                        stack.push(succ);
                    }
                }
            }
            for (i, &r) in reach.iter().enumerate() {
                if r {
                    spawned_any[i] = true;
                }
            }
            spawned_reach.push((edge, reach));
        }

        (MhpRelation { main, spawned_any, spawned_reach }, None)
    }

    /// An MHP relation for a single-threaded program: everything is main.
    pub fn single_threaded(num_nodes: usize) -> MhpRelation {
        MhpRelation {
            main: vec![true; num_nodes],
            spawned_any: vec![false; num_nodes],
            spawned_reach: Vec::new(),
        }
    }

    /// May `node` execute on the main thread?
    pub fn on_main(&self, node: CGNodeId) -> bool {
        self.main.get(node.index()).copied().unwrap_or(true)
    }

    /// May `node` execute on a spawned thread?
    pub fn on_spawned(&self, node: CGNodeId) -> bool {
        self.spawned_any.get(node.index()).copied().unwrap_or(false)
    }

    /// Number of nodes that may execute on a spawned thread.
    pub fn num_parallel_nodes(&self) -> usize {
        self.spawned_any.iter().filter(|&&s| s).count()
    }

    /// Can `a` and `b` execute on the same thread in some run? True when
    /// both may run on main, or both may run on the *same* spawned
    /// thread. When this is false, any heap dependence between the two
    /// is necessarily inter-thread.
    pub fn same_thread_possible(&self, a: CGNodeId, b: CGNodeId) -> bool {
        if self.on_main(a) && self.on_main(b) {
            return true;
        }
        self.spawned_reach.iter().any(|(_, reach)| reach[a.index()] && reach[b.index()])
    }

    /// Coarse node-level MHP: `a` and `b` may execute concurrently. This
    /// holds when at least one side may run on a spawned thread and the
    /// two are not confined to one thread.
    pub fn may_happen_in_parallel(&self, a: CGNodeId, b: CGNodeId) -> bool {
        if self.spawned_reach.is_empty() {
            return false;
        }
        // Distinct spawned threads are always parallel; a spawned thread
        // is parallel with main; two main-only nodes are sequential.
        (self.on_spawned(a) || self.on_spawned(b)) && !(self.confined_to_same_single_thread(a, b))
    }

    fn confined_to_same_single_thread(&self, a: CGNodeId, b: CGNodeId) -> bool {
        // Both only spawned, by exactly one common edge, and no other
        // edge or main can run either: then they share one thread.
        if self.on_main(a) || self.on_main(b) {
            return false;
        }
        let homes_a: Vec<usize> = self.homes(a);
        let homes_b: Vec<usize> = self.homes(b);
        homes_a.len() == 1 && homes_a == homes_b
    }

    fn homes(&self, node: CGNodeId) -> Vec<usize> {
        self.spawned_reach
            .iter()
            .enumerate()
            .filter(|(_, (_, reach))| reach[node.index()])
            .map(|(i, _)| i)
            .collect()
    }

    /// Start-before refinement: does the statement at `(node, loc)`
    /// happen *before* every action of every thread that may execute
    /// `other`? True only when every spawn edge that can reach `other`
    /// is a straight-line later statement of the same block of `node`.
    pub fn statement_happens_before_spawn(
        &self,
        node: CGNodeId,
        loc: Loc,
        other: CGNodeId,
    ) -> bool {
        let mut saw_home = false;
        for (edge, reach) in &self.spawned_reach {
            if !reach[other.index()] {
                continue;
            }
            saw_home = true;
            let ordered =
                edge.caller == node && edge.loc.block == loc.block && loc.idx < edge.loc.idx;
            if !ordered {
                return false;
            }
        }
        saw_home
    }

    /// The spawn edges underlying this relation.
    pub fn spawn_edges(&self) -> impl Iterator<Item = &SpawnEdge> {
        self.spawned_reach.iter().map(|(e, _)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taj_pointer::{analyze, SolverConfig};

    fn build(src: &str) -> (jir::Program, PointsTo) {
        let mut program = jir::frontend::build_program(src).expect("builds");
        let mains: Vec<jir::MethodId> = program
            .iter_classes()
            .map(|(cid, _)| cid)
            .collect::<Vec<_>>()
            .into_iter()
            .filter_map(|cid| program.method_by_name(cid, "main"))
            .collect();
        program.entrypoints.extend(mains);
        let pts = analyze(&program, &SolverConfig::default());
        (program, pts)
    }

    fn node_of(program: &jir::Program, pts: &PointsTo, class: &str, method: &str) -> CGNodeId {
        let cid = program.class_by_name(class).expect("class exists");
        let mid = program.method_by_name(cid, method).expect("method exists");
        pts.callgraph
            .nodes_of_method(mid)
            .first()
            .copied()
            .unwrap_or_else(|| panic!("{class}.{method} not in call graph"))
    }

    const SRC: &str = r#"
        class Helper {
            static method void tick() { }
        }
        class Worker implements Runnable {
            ctor () { }
            method void run() { this.inner(); }
            method void inner() { Helper.tick(); }
        }
        class Main {
            static method void prologue() { }
            static method void main() {
                Main.prologue();
                Worker w = new Worker();
                Thread t = new Thread(w);
                t.start();
                Main.epilogue();
            }
            static method void epilogue() { }
        }
    "#;

    #[test]
    fn partitions_main_and_spawned() {
        let (program, pts) = build(SRC);
        let mhp = MhpRelation::compute(&pts);
        let main_node = node_of(&program, &pts, "Main", "main");
        let run = node_of(&program, &pts, "Worker", "run");
        let inner = node_of(&program, &pts, "Worker", "inner");
        let prologue = node_of(&program, &pts, "Main", "prologue");

        assert!(mhp.on_main(main_node) && !mhp.on_spawned(main_node));
        assert!(mhp.on_spawned(run) && !mhp.on_main(run), "run is spawn-only");
        assert!(mhp.on_spawned(inner), "transitive spawned reachability");
        assert!(mhp.on_main(prologue));
    }

    #[test]
    fn helpers_called_from_both_sides_are_on_both() {
        let (program, pts) = build(SRC);
        let mhp = MhpRelation::compute(&pts);
        // Helper.tick is called from Worker.inner only → spawned only.
        let tick = node_of(&program, &pts, "Helper", "tick");
        assert!(mhp.on_spawned(tick));
        assert!(!mhp.on_main(tick));
    }

    #[test]
    fn mhp_and_same_thread_queries() {
        let (program, pts) = build(SRC);
        let mhp = MhpRelation::compute(&pts);
        let main_node = node_of(&program, &pts, "Main", "main");
        let run = node_of(&program, &pts, "Worker", "run");
        let inner = node_of(&program, &pts, "Worker", "inner");
        let epilogue = node_of(&program, &pts, "Main", "epilogue");

        assert!(mhp.may_happen_in_parallel(main_node, run));
        assert!(mhp.may_happen_in_parallel(epilogue, inner));
        assert!(!mhp.may_happen_in_parallel(main_node, epilogue), "both main-only");
        // run/inner live on the same single thread.
        assert!(!mhp.may_happen_in_parallel(run, inner));
        assert!(mhp.same_thread_possible(run, inner));
        assert!(!mhp.same_thread_possible(main_node, run));
        assert!(mhp.same_thread_possible(main_node, epilogue));
    }

    #[test]
    fn single_threaded_program_has_no_parallelism() {
        let (program, pts) = build(
            r#"
            class Main {
                static method void main() { Main.aux(); }
                static method void aux() { }
            }
        "#,
        );
        let mhp = MhpRelation::compute(&pts);
        let main_node = node_of(&program, &pts, "Main", "main");
        let aux = node_of(&program, &pts, "Main", "aux");
        assert_eq!(mhp.num_parallel_nodes(), 0);
        assert!(!mhp.may_happen_in_parallel(main_node, aux));
        assert!(mhp.same_thread_possible(main_node, aux));
    }
}
