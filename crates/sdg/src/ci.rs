//! Context-insensitive (CI) thin slicing [Sridharan et al., PLDI'07],
//! the cheap-and-imprecise baseline of the paper's evaluation.
//!
//! All calling contexts of a method are collapsed: facts are
//! `(method, register)` pairs, call returns flow to *every* call site, and
//! heap direct edges match on points-to sets unioned across contexts.

use std::collections::{HashMap, HashSet, VecDeque};

use jir::inst::{Loc, Var};
use jir::util::BitSet;
use jir::MethodId;
use taj_pointer::CGNodeId;
use taj_supervise::Supervisor;

use crate::spec::{Flow, FlowStep, SliceBounds, SliceResult, StepKind, StmtNode};
use crate::view::{FieldKey, ProgramView, Use};

type Fact = (MethodId, Var);
/// Per-seed provenance: predecessor fact plus the steps taken.
type Parents = HashMap<Fact, (Option<Fact>, Vec<FlowStep>)>;
/// Method-level load inventory entries.
type MethodLoad = (MethodId, Loc, Option<Var>, Var);

/// The rule-independent part of the context collapse: representative
/// nodes, merged points-to sets, call plumbing, and load inventories.
/// Build it once per analysis and share it across every rule's
/// [`CiSlicer`] (the per-rule part is only the `uses` classification).
#[derive(Debug)]
pub struct CiCache {
    /// Representative node per method (for reporting statements).
    repr: HashMap<MethodId, CGNodeId>,
    /// Merged register points-to sets across contexts.
    merged_pts: HashMap<Fact, BitSet>,
    /// Method-level call targets per call site.
    site_targets: HashMap<(MethodId, Loc), Vec<MethodId>>,
    /// Method-level return plumbing: callee → (caller, loc, dst).
    return_sites: HashMap<MethodId, Vec<(MethodId, Loc, Option<Var>)>>,
    /// Loads by field, method level.
    loads_by_field: HashMap<FieldKey, Vec<MethodLoad>>,
    static_loads: HashMap<jir::FieldId, Vec<(MethodId, Loc, Var)>>,
    /// Invoke bindings method level: (caller, loc, array var, callee).
    invoke_bindings: Vec<(MethodId, Loc, Var, MethodId)>,
}

impl CiCache {
    /// Builds the rule-independent collapse from phase-1 results.
    pub fn build(pts: &taj_pointer::PointsTo, program: &jir::Program) -> Self {
        let cg = &pts.callgraph;
        let mut repr: HashMap<MethodId, CGNodeId> = HashMap::new();
        let mut merged_pts: HashMap<Fact, BitSet> = HashMap::new();
        let mut site_targets: HashMap<(MethodId, Loc), Vec<MethodId>> = HashMap::new();
        let mut return_sites: HashMap<MethodId, Vec<(MethodId, Loc, Option<Var>)>> = HashMap::new();
        for node in cg.iter_nodes() {
            repr.entry(cg.method_of(node)).or_insert(node);
        }
        // Merge points-to sets across contexts (single pass).
        for (_, key, set) in pts.iter_pointer_keys() {
            if let taj_pointer::PointerKey::Local { node: kn, var } = key {
                let m = cg.method_of(*kn);
                merged_pts.entry((m, *var)).or_default().extend(set.iter());
            }
        }
        for e in &cg.edges {
            let cm = cg.method_of(e.caller);
            let tm = cg.method_of(e.callee);
            let entry = site_targets.entry((cm, e.loc)).or_default();
            if !entry.contains(&tm) {
                entry.push(tm);
            }
            let dst = call_dst(program, cg, e.caller, e.loc);
            let rentry = return_sites.entry(tm).or_default();
            if !rentry.iter().any(|&(c, l, _)| c == cm && l == e.loc) {
                rentry.push((cm, e.loc, dst));
            }
        }
        // Method-level load inventory straight from the bodies (identical
        // across contexts), plus pseudo-loads for container intrinsics
        // that survived model expansion (interface-typed receivers).
        let mut loads_by_field: HashMap<FieldKey, Vec<MethodLoad>> = HashMap::new();
        let mut static_loads: HashMap<jir::FieldId, Vec<(MethodId, Loc, Var)>> = HashMap::new();
        for (&m, &node) in &repr {
            let Some(body) = program.method(m).body() else { continue };
            for (bid, block) in body.iter_blocks() {
                for (i, inst) in block.insts.iter().enumerate() {
                    let loc = Loc::new(bid, i);
                    match inst {
                        jir::Inst::Load { dst, base, field } => loads_by_field
                            .entry(FieldKey::Field(*field))
                            .or_default()
                            .push((m, loc, Some(*base), *dst)),
                        jir::Inst::ArrayLoad { dst, base, .. } => loads_by_field
                            .entry(FieldKey::Array)
                            .or_default()
                            .push((m, loc, Some(*base), *dst)),
                        jir::Inst::StaticLoad { dst, field } => {
                            static_loads.entry(*field).or_default().push((m, loc, *dst))
                        }
                        jir::Inst::Call { dst: Some(d), recv: Some(r), .. } => {
                            for &(_, intr) in pts.intrinsics_at(node, loc) {
                                let names: &[&str] = match intr {
                                    jir::Intrinsic::CollGet => &[jir::expand::fields::ELEMS],
                                    jir::Intrinsic::BuilderToString => {
                                        &[jir::expand::fields::CONTENT]
                                    }
                                    jir::Intrinsic::MapGet => &[jir::expand::fields::MAP_UNKNOWN],
                                    _ => continue,
                                };
                                for fname in names {
                                    if let Some(f) = program.find_synthetic_field(fname) {
                                        loads_by_field
                                            .entry(FieldKey::Field(f))
                                            .or_default()
                                            .push((m, loc, Some(*r), *d));
                                    }
                                }
                                if intr == jir::Intrinsic::MapGet {
                                    for f in program.map_key_fields() {
                                        loads_by_field
                                            .entry(FieldKey::Field(f))
                                            .or_default()
                                            .push((m, loc, Some(*r), *d));
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        let invoke_bindings = pts
            .invoke_bindings
            .iter()
            .map(|b| (cg.method_of(b.caller), b.loc, b.arg_array, cg.method_of(b.callee)))
            .collect();
        CiCache {
            repr,
            merged_pts,
            site_targets,
            return_sites,
            loads_by_field,
            static_loads,
            invoke_bindings,
        }
    }
}

fn call_dst(
    program: &jir::Program,
    cg: &taj_pointer::CallGraph,
    node: CGNodeId,
    loc: Loc,
) -> Option<Var> {
    let body = program.method(cg.method_of(node)).body()?;
    match body.blocks.get(loc.block.index())?.insts.get(loc.idx as usize)? {
        jir::Inst::Call { dst, .. } => *dst,
        _ => None,
    }
}

/// The context-insensitive thin slicer.
#[derive(Debug)]
pub struct CiSlicer<'a> {
    view: &'a ProgramView<'a>,
    bounds: SliceBounds,
    cache: std::borrow::Cow<'a, CiCache>,
    /// Merged uses across contexts (rule-dependent: sink/sanitizer roles).
    merged_uses: HashMap<Fact, Vec<Use>>,
    /// Cooperative supervision handle (default: unbounded).
    supervisor: Supervisor,
}

impl Clone for CiCache {
    fn clone(&self) -> Self {
        CiCache {
            repr: self.repr.clone(),
            merged_pts: self.merged_pts.clone(),
            site_targets: self.site_targets.clone(),
            return_sites: self.return_sites.clone(),
            loads_by_field: self.loads_by_field.clone(),
            static_loads: self.static_loads.clone(),
            invoke_bindings: self.invoke_bindings.clone(),
        }
    }
}

impl<'a> CiSlicer<'a> {
    /// Builds the collapsed (context-insensitive) indices from scratch.
    pub fn new(view: &'a ProgramView<'a>, bounds: SliceBounds) -> Self {
        let cache = CiCache::build(view.pts, view.program);
        Self::with_cache_owned(view, bounds, cache)
    }

    /// Builds a slicer reusing a shared rule-independent [`CiCache`].
    pub fn with_cache(view: &'a ProgramView<'a>, bounds: SliceBounds, cache: &'a CiCache) -> Self {
        Self::assemble(view, bounds, std::borrow::Cow::Borrowed(cache))
    }

    fn with_cache_owned(view: &'a ProgramView<'a>, bounds: SliceBounds, cache: CiCache) -> Self {
        Self::assemble(view, bounds, std::borrow::Cow::Owned(cache))
    }

    fn assemble(
        view: &'a ProgramView<'a>,
        bounds: SliceBounds,
        cache: std::borrow::Cow<'a, CiCache>,
    ) -> Self {
        let cg = &view.pts.callgraph;
        let mut merged_uses: HashMap<Fact, Vec<Use>> = HashMap::new();
        for node in cg.iter_nodes() {
            let m = cg.method_of(node);
            for (&var, uses) in &view.node(node).uses {
                let entry = merged_uses.entry((m, var)).or_default();
                for u in uses {
                    if !entry.contains(u) {
                        entry.push(u.clone());
                    }
                }
            }
        }
        CiSlicer { view, bounds, cache, merged_uses, supervisor: Supervisor::new() }
    }

    /// Attaches a supervisor; its checks run at the traversal loop
    /// (`ci.slice` site). On an interrupt the slicer reports the flows
    /// found so far with [`SliceResult::interrupted`] set.
    pub fn with_supervisor(mut self, supervisor: Supervisor) -> Self {
        self.supervisor = supervisor;
        self
    }

    fn stmt(&self, m: MethodId, loc: Loc) -> StmtNode {
        StmtNode { node: self.cache.repr.get(&m).copied().unwrap_or(CGNodeId(0)), loc }
    }

    fn pts_of(&self, m: MethodId, v: Var) -> Option<&BitSet> {
        self.cache.merged_pts.get(&(m, v))
    }

    /// Runs the slice from every source.
    pub fn run(&mut self) -> SliceResult {
        self.run_partition(0..usize::MAX)
    }

    /// Runs the slice over a contiguous partition of the seed list
    /// (`seed_range` indexes into [`ProgramView::seeds`], clamped to its
    /// length) — the unit of work the parallel engine dispatches. Seed
    /// traversals are independent (`seen_flows` keys carry the seed
    /// statement), so the flow set of a whole run is the ordered union
    /// of its partitions'; the heap-transition counter is additive. As
    /// with the hybrid slicer, bounded configurations must keep a rule
    /// in one partition because the budget counter is per-slicer.
    pub fn run_partition(&mut self, seed_range: std::ops::Range<usize>) -> SliceResult {
        let all_seeds = self.view.seeds();
        let seeds = &all_seeds[crate::hybrid::clamp_range(&seed_range, all_seeds.len())];
        let mut result = SliceResult::default();
        let mut seen_flows: HashSet<(StmtNode, StmtNode, usize)> = HashSet::new();
        let mut heap_used = 0usize;
        'seeds: for &(stmt, sc) in seeds {
            let seed_method = self.view.pts.callgraph.method_of(stmt.node);
            let seed_fact: Fact = (seed_method, sc.dst);
            let mut visited: HashSet<Fact> = HashSet::new();
            let mut parents: Parents = HashMap::new();
            let mut queue: VecDeque<Fact> = VecDeque::new();
            let mut processed_stores: HashSet<(MethodId, Loc)> = HashSet::new();
            visited.insert(seed_fact);
            parents.insert(seed_fact, (None, vec![FlowStep { stmt, kind: StepKind::Seed }]));
            queue.push_back(seed_fact);

            let reconstruct = |parents: &Parents, fact: Fact| {
                let mut rev = Vec::new();
                let mut cur = Some(fact);
                while let Some(f) = cur {
                    let Some((prev, steps)) = parents.get(&f) else { break };
                    rev.extend(steps.iter().rev().copied());
                    cur = *prev;
                }
                rev.reverse();
                rev
            };

            while let Some((m, v)) = queue.pop_front() {
                if let Err(reason) = self.supervisor.check("ci.slice") {
                    result.interrupted = Some(reason);
                    break 'seeds;
                }
                result.work += 1;
                let uses = match self.merged_uses.get(&(m, v)) {
                    Some(u) => u.clone(),
                    None => continue,
                };
                let fact = (m, v);
                let push = |queue: &mut VecDeque<Fact>,
                            visited: &mut HashSet<Fact>,
                            parents: &mut Parents,
                            nf: Fact,
                            steps: Vec<FlowStep>| {
                    if visited.insert(nf) {
                        parents.insert(nf, (Some(fact), steps));
                        queue.push_back(nf);
                    }
                };
                for u in uses {
                    match u {
                        Use::Flow { to, loc } => {
                            let st = self.stmt(m, loc);
                            push(
                                &mut queue,
                                &mut visited,
                                &mut parents,
                                (m, to),
                                vec![FlowStep { stmt: st, kind: StepKind::Local }],
                            );
                        }
                        Use::Store { loc, base, field } => {
                            if !processed_stores.insert((m, loc)) {
                                continue;
                            }
                            let store_stmt = self.stmt(m, loc);
                            let base_pts = match self.pts_of(m, base) {
                                Some(s) => s.clone(),
                                None => continue,
                            };
                            let pre = vec![FlowStep { stmt: store_stmt, kind: StepKind::Local }];
                            // Carrier edges.
                            for ik in base_pts.iter() {
                                if let Some(sinks) = self.view.spec.carrier_sinks.get(&ik) {
                                    for cs in sinks.clone() {
                                        if seen_flows.insert((stmt, cs.stmt, cs.pos)) {
                                            let mut path = reconstruct(&parents, fact);
                                            path.extend(pre.iter().copied());
                                            path.push(FlowStep {
                                                stmt: cs.stmt,
                                                kind: StepKind::CarrierEdge,
                                            });
                                            let ht = count_heap(&path);
                                            result.flows.push(Flow {
                                                source: stmt,
                                                source_method: sc.method,
                                                sink: cs.stmt,
                                                sink_method: cs.method,
                                                sink_pos: cs.pos,
                                                path,
                                                heap_transitions: ht,
                                            });
                                        }
                                    }
                                }
                            }
                            // Direct edges (context-collapsed aliasing).
                            if let Some(loads) = self.cache.loads_by_field.get(&field) {
                                for (lm, lloc, lbase, ldst) in loads.clone() {
                                    let Some(lb) = lbase else { continue };
                                    let alias = self
                                        .pts_of(lm, lb)
                                        .map(|s| s.intersects(&base_pts))
                                        .unwrap_or(false);
                                    if alias {
                                        heap_used += 1;
                                        if let Some(max) = self.bounds.max_heap_transitions {
                                            if heap_used >= max {
                                                result.budget_exhausted = true;
                                                break;
                                            }
                                        }
                                        let mut steps = pre.clone();
                                        steps.push(FlowStep {
                                            stmt: self.stmt(lm, lloc),
                                            kind: StepKind::HeapEdge,
                                        });
                                        push(
                                            &mut queue,
                                            &mut visited,
                                            &mut parents,
                                            (lm, ldst),
                                            steps,
                                        );
                                    }
                                }
                            }
                            if field == FieldKey::Array {
                                for (im, iloc, arr, callee) in self.cache.invoke_bindings.clone() {
                                    let alias = self
                                        .pts_of(im, arr)
                                        .map(|s| s.intersects(&base_pts))
                                        .unwrap_or(false);
                                    if alias {
                                        heap_used += 1;
                                        let cm = self.view.program.method(callee);
                                        let off = usize::from(!cm.is_static);
                                        for i in 0..cm.params.len() {
                                            let mut steps = pre.clone();
                                            steps.push(FlowStep {
                                                stmt: self.stmt(im, iloc),
                                                kind: StepKind::HeapEdge,
                                            });
                                            push(
                                                &mut queue,
                                                &mut visited,
                                                &mut parents,
                                                (callee, Var((i + off) as u32)),
                                                steps,
                                            );
                                        }
                                    }
                                }
                            }
                        }
                        Use::StaticStore { loc, field } => {
                            if !processed_stores.insert((m, loc)) {
                                continue;
                            }
                            let store_stmt = self.stmt(m, loc);
                            if let Some(loads) = self.cache.static_loads.get(&field) {
                                for (lm, lloc, ldst) in loads.clone() {
                                    heap_used += 1;
                                    let steps = vec![
                                        FlowStep { stmt: store_stmt, kind: StepKind::Local },
                                        FlowStep {
                                            stmt: self.stmt(lm, lloc),
                                            kind: StepKind::HeapEdge,
                                        },
                                    ];
                                    push(&mut queue, &mut visited, &mut parents, (lm, ldst), steps);
                                }
                            }
                        }
                        Use::Arg { loc, pos } => {
                            let call_stmt = self.stmt(m, loc);
                            let targets =
                                self.cache.site_targets.get(&(m, loc)).cloned().unwrap_or_default();
                            for t in targets {
                                if self.view.spec.sanitizers.contains(&t)
                                    || self.view.spec.sources.contains(&t)
                                    || self.view.spec.sinks.contains_key(&t)
                                {
                                    continue;
                                }
                                let tm = self.view.program.method(t);
                                let off = usize::from(!tm.is_static);
                                if pos + off >= tm.num_incoming() {
                                    continue;
                                }
                                push(
                                    &mut queue,
                                    &mut visited,
                                    &mut parents,
                                    (t, Var((pos + off) as u32)),
                                    vec![FlowStep { stmt: call_stmt, kind: StepKind::CallArg }],
                                );
                            }
                        }
                        Use::Ret { .. } => {
                            // Return to every call site (context-insensitive).
                            if let Some(sites) = self.cache.return_sites.get(&m) {
                                for (cm, cloc, cdst) in sites.clone() {
                                    if let Some(d) = cdst {
                                        push(
                                            &mut queue,
                                            &mut visited,
                                            &mut parents,
                                            (cm, d),
                                            vec![FlowStep {
                                                stmt: self.stmt(cm, cloc),
                                                kind: StepKind::ReturnTo,
                                            }],
                                        );
                                    }
                                }
                            }
                        }
                        Use::SinkArg { loc, method, pos } => {
                            let sink_stmt = self.stmt(m, loc);
                            if seen_flows.insert((stmt, sink_stmt, pos)) {
                                let mut path = reconstruct(&parents, fact);
                                path.push(FlowStep { stmt: sink_stmt, kind: StepKind::Local });
                                let ht = count_heap(&path);
                                result.flows.push(Flow {
                                    source: stmt,
                                    source_method: sc.method,
                                    sink: sink_stmt,
                                    sink_method: method,
                                    sink_pos: pos,
                                    path,
                                    heap_transitions: ht,
                                });
                            }
                        }
                        Use::Sanitized { .. } => {}
                    }
                }
            }
        }
        result.heap_transitions = heap_used;
        result
    }
}

fn count_heap(path: &[FlowStep]) -> usize {
    path.iter().filter(|s| matches!(s.kind, StepKind::HeapEdge | StepKind::CarrierEdge)).count()
}
