//! # taj-sdg — phase 2 of TAJ: dependence graphs and thin slicing
//!
//! Implements the slicing layer of *TAJ: Effective Taint Analysis of Web
//! Applications* (PLDI 2009):
//!
//! - [`hybrid`] — **hybrid thin slicing** (§3.2), the paper's novel
//!   algorithm: flow/context-sensitive propagation through locals (RHS
//!   tabulation over the no-heap SDG, realized as endpoint summaries) plus
//!   flow-insensitive direct store→load heap edges from the phase-1
//!   points-to solution;
//! - [`ci`] — context-insensitive thin slicing (baseline);
//! - [`ifds`] — an independent IFDS formulation (Reps–Horwitz–Sagiv
//!   tabulation over access-path facts with a configurable depth bound),
//!   used by the three-way differential harness as a cross-check;
//! - [`cs`] — context-sensitive thin slicing with heap-through-calls
//!   propagation, a deterministic memory budget standing in for the
//!   paper's out-of-memory runs, and the multithreading unsoundness the
//!   paper observes;
//! - [`view`] — the shared per-node def-use/statement view;
//! - [`spec`] — rule projections in, tainted [`spec::Flow`]s out, and the
//!   §6.2 bounds.
//!
//! The three slicers expose the same interface so the taint-analysis
//! driver (crate `taj-core`) can swap them per configuration (Table 1).

#![warn(missing_docs)]

pub mod ci;
pub mod cs;
pub mod hybrid;
pub mod ifds;
pub mod mhp;
pub mod spec;
pub mod view;

pub use ci::{CiCache, CiSlicer};
pub use cs::CsSlicer;
pub use hybrid::HybridSlicer;
pub use ifds::{ApFields, IfdsSlicer};
pub use mhp::MhpRelation;
pub use spec::{
    CarrierSink, Flow, FlowStep, SliceBounds, SliceError, SliceResult, SliceSpec, StepKind,
    StmtNode,
};
pub use view::{FieldKey, LoadStmt, NodeView, ProgramView, SourceCall, Use, ViewStats};
