//! Hybrid thin slicing (§3.2): demand-driven traversal of the Hybrid SDG.
//!
//! Flow through **locals** is tracked flow- and context-sensitively via
//! summary edges computed by RHS tabulation over the no-heap SDG (facts are
//! SSA registers of context-qualified call-graph nodes; summaries map a
//! callee's entry register to the stores/sinks it reaches and whether it
//! reaches the return). Flow through the **heap** uses flow-insensitive
//! direct store→load edges derived from the phase-1 points-to solution, as
//! in CI thin slicing. Sanitizer returns and sink calls have no successors.
//!
//! ## Relation to refinement-based pointer analysis (§3.2 of the paper)
//!
//! The direct store→load edges correspond to *match edges* in
//! refinement-based pointer analysis (Sridharan & Bodík, PLDI'06), with
//! two differences the paper calls out: (1) our initial match edges come
//! from the phase-1 points-to solution rather than from field types alone
//! — the analysis starts precise and never refines; and (2) because match
//! edges are never refined, recursion on match-edge-free subpaths is
//! handled precisely (the RHS summaries below iterate recursive cycles to
//! a fixpoint instead of collapsing strongly-connected call-graph
//! components).

use std::collections::{HashMap, HashSet, VecDeque};

use jir::inst::{Loc, Var};
use jir::util::BitSet;
use jir::MethodId;
use taj_pointer::{CGNodeId, EscapeAnalysis};
use taj_supervise::{InterruptReason, Supervisor};

use crate::mhp::MhpRelation;
use crate::spec::{Flow, FlowStep, SliceBounds, SliceResult, StepKind, StmtNode};
use crate::view::{FieldKey, ProgramView, Use};

/// A local-flow fact: a register of a call-graph node carries taint.
type Fact = (CGNodeId, Var);

/// What a callee does with taint entering through one register (an RHS
/// endpoint summary over the no-heap SDG).
#[derive(Clone, Debug, Default, PartialEq)]
struct Summary {
    /// Heap stores reached (statement, base register, field).
    stores: Vec<(StmtNode, Var, FieldKey)>,
    /// Static stores reached.
    static_stores: Vec<(StmtNode, jir::FieldId)>,
    /// Sink arguments reached `(stmt, sink method, position)`.
    sinks: Vec<(StmtNode, MethodId, usize)>,
    /// Whether the taint reaches the method's return value.
    reaches_ret: bool,
}

/// The hybrid thin slicer.
#[derive(Debug)]
pub struct HybridSlicer<'a> {
    view: &'a ProgramView<'a>,
    bounds: SliceBounds,
    summaries: HashMap<Fact, Summary>,
    /// Reverse dependencies: when `key`'s summary grows, recompute these.
    dependents: HashMap<Fact, HashSet<Fact>>,
    work: usize,
    /// Concurrency refinement (escape + MHP): when present, direct
    /// store→load edges between nodes that can only execute on different
    /// threads are kept only if the aliased object actually escapes.
    concurrency: Option<(&'a EscapeAnalysis, &'a MhpRelation)>,
    /// Store→load edges dropped by the concurrency refinement.
    edges_dropped: usize,
    /// Cooperative supervision handle (default: unbounded).
    supervisor: Supervisor,
    /// First supervisor interrupt observed, if any.
    interrupted: Option<InterruptReason>,
}

impl<'a> HybridSlicer<'a> {
    /// Creates a slicer over a program view.
    pub fn new(view: &'a ProgramView<'a>, bounds: SliceBounds) -> Self {
        HybridSlicer {
            view,
            bounds,
            summaries: HashMap::new(),
            dependents: HashMap::new(),
            work: 0,
            concurrency: None,
            edges_dropped: 0,
            supervisor: Supervisor::new(),
            interrupted: None,
        }
    }

    /// Attaches a supervisor; its checks run at the per-seed traversal
    /// (`hybrid.slice` site) and summary tabulation (`hybrid.summary`
    /// site). On an interrupt the slicer stops taking work and reports
    /// the flows found so far with [`SliceResult::interrupted`] set.
    pub fn with_supervisor(mut self, supervisor: Supervisor) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Creates a slicer with the concurrency refinement: a store→load
    /// heap edge whose endpoints can never execute on the same thread is
    /// real only if the object it travels through escapes; all other
    /// such edges are dropped. This is strictly a false-positive filter —
    /// edges between same-thread-possible nodes and edges through
    /// escaping objects are untouched.
    pub fn with_concurrency(
        view: &'a ProgramView<'a>,
        bounds: SliceBounds,
        escape: &'a EscapeAnalysis,
        mhp: &'a MhpRelation,
    ) -> Self {
        let mut s = Self::new(view, bounds);
        s.concurrency = Some((escape, mhp));
        s
    }

    /// How many store→load edges the concurrency refinement dropped.
    pub fn edges_dropped(&self) -> usize {
        self.edges_dropped
    }

    /// How many callee-entry RHS summaries have been tabulated so far —
    /// the "summary edges" number tracing attaches to each slice unit.
    pub fn summaries_tabulated(&self) -> usize {
        self.summaries.len()
    }

    /// Is the store→load edge `store_node → load_node`, witnessed by the
    /// overlap of `base_pts` and `load_pts`, impossible? Only when the
    /// two statements can never share a thread *and* no overlapping
    /// abstract object escapes.
    fn edge_impossible(
        &self,
        store_node: CGNodeId,
        load_node: CGNodeId,
        base_pts: &BitSet,
        load_pts: &BitSet,
    ) -> bool {
        let Some((esc, mhp)) = self.concurrency else {
            return false;
        };
        if mhp.same_thread_possible(store_node, load_node) {
            return false;
        }
        !base_pts.iter().any(|ik| load_pts.contains(ik) && esc.escapes(ik))
    }

    /// Runs the slice from every source and returns the tainted flows.
    pub fn run(&mut self) -> SliceResult {
        self.run_partition(0..usize::MAX, 0..usize::MAX)
    }

    /// Runs the slice over a contiguous partition of the seed lists:
    /// `seed_range` indexes into [`ProgramView::seeds`] and `ref_range`
    /// into [`ProgramView::ref_seeds`] (both clamped to the list length).
    ///
    /// This is the unit of work the parallel engine dispatches. Each
    /// [`SeedRun`] is independent traversal state, and `seen_flows` keys
    /// carry the seed statement, so the flow set of a whole run equals
    /// the ordered union of its partitions' flow sets. The summary memo
    /// table is private to one slicer: splitting a rule across slicers
    /// recomputes summaries per partition, which changes the `work`
    /// accounting (a function of the partitioning, never of the thread
    /// count) but not the flows — summaries are unique fixpoints. Heap
    /// budgets are also per-slicer, which is why bounded configurations
    /// must keep a rule in one partition (see `taj_core::parallel`).
    pub fn run_partition(
        &mut self,
        seed_range: std::ops::Range<usize>,
        ref_range: std::ops::Range<usize>,
    ) -> SliceResult {
        let all_seeds = self.view.seeds();
        let all_refs = self.view.ref_seeds();
        let seeds = &all_seeds[clamp_range(&seed_range, all_seeds.len())];
        let ref_seeds = &all_refs[clamp_range(&ref_range, all_refs.len())];
        let mut result = SliceResult::default();
        let mut seen_flows: HashSet<(StmtNode, StmtNode, usize)> = HashSet::new();
        let mut heap_budget = 0usize;
        for &(stmt, sc) in seeds {
            let mut run = SeedRun {
                seed_stmt: stmt,
                seed_method: sc.method,
                visited: HashSet::new(),
                parents: HashMap::new(),
                queue: VecDeque::new(),
                processed_stores: HashSet::new(),
            };
            let seed_fact = (stmt.node, sc.dst);
            run.visited.insert(seed_fact);
            run.parents.insert(
                seed_fact,
                Parent { prev: None, steps: vec![FlowStep { stmt, kind: StepKind::Seed }] },
            );
            run.queue.push_back(seed_fact);
            self.slice_one(&mut run, &mut result, &mut seen_flows, &mut heap_budget);
            if self.interrupted.is_some() {
                break;
            }
        }
        // By-reference sources (footnote 2): the argument object's state is
        // tainted — loads reading it become seeds, and the object itself is
        // an immediate taint carrier.
        for rs in ref_seeds {
            if self.interrupted.is_some() {
                break;
            }
            let mut run = SeedRun {
                seed_stmt: rs.stmt,
                seed_method: rs.method,
                visited: HashSet::new(),
                parents: HashMap::new(),
                queue: VecDeque::new(),
                processed_stores: HashSet::new(),
            };
            for &fact in &rs.facts {
                if run.visited.insert(fact) {
                    run.parents.insert(
                        fact,
                        Parent {
                            prev: None,
                            steps: vec![FlowStep { stmt: rs.stmt, kind: StepKind::Seed }],
                        },
                    );
                    run.queue.push_back(fact);
                }
            }
            // The object itself may carry the taint straight to a sink.
            for ik in rs.arg_pts.iter() {
                if let Some(sinks) = self.view.spec.carrier_sinks.get(&ik) {
                    for cs in sinks.clone() {
                        if seen_flows.insert((rs.stmt, cs.stmt, cs.pos)) {
                            result.flows.push(Flow {
                                source: rs.stmt,
                                source_method: rs.method,
                                sink: cs.stmt,
                                sink_method: cs.method,
                                sink_pos: cs.pos,
                                path: vec![
                                    FlowStep { stmt: rs.stmt, kind: StepKind::Seed },
                                    FlowStep { stmt: cs.stmt, kind: StepKind::CarrierEdge },
                                ],
                                heap_transitions: 1,
                            });
                        }
                    }
                }
            }
            self.slice_one(&mut run, &mut result, &mut seen_flows, &mut heap_budget);
        }
        result.heap_transitions = heap_budget;
        result.work = self.work;
        result.interrupted = self.interrupted;
        result
    }

    fn slice_one(
        &mut self,
        run: &mut SeedRun,
        result: &mut SliceResult,
        seen_flows: &mut HashSet<(StmtNode, StmtNode, usize)>,
        heap_budget: &mut usize,
    ) {
        while let Some((node, var)) = run.queue.pop_front() {
            if self.interrupted.is_some() {
                return;
            }
            if let Err(reason) = self.supervisor.check("hybrid.slice") {
                self.interrupted = Some(reason);
                return;
            }
            self.work += 1;
            let uses = match self.view.node(node).uses.get(&var) {
                Some(u) => u.clone(),
                None => continue,
            };
            let fact = (node, var);
            for u in uses {
                match u {
                    Use::Flow { to, loc } => {
                        run.push(
                            (node, to),
                            fact,
                            vec![FlowStep { stmt: StmtNode { node, loc }, kind: StepKind::Local }],
                        );
                    }
                    Use::Store { loc, base, field } => {
                        let store_stmt = StmtNode { node, loc };
                        self.process_store(
                            run,
                            result,
                            seen_flows,
                            heap_budget,
                            store_stmt,
                            node,
                            base,
                            field,
                            fact,
                            vec![],
                        );
                    }
                    Use::StaticStore { loc, field } => {
                        let store_stmt = StmtNode { node, loc };
                        self.process_static_store(
                            run,
                            heap_budget,
                            result,
                            store_stmt,
                            field,
                            fact,
                            vec![],
                        );
                    }
                    Use::Arg { loc, pos } => {
                        self.process_arg(
                            run,
                            result,
                            seen_flows,
                            heap_budget,
                            node,
                            loc,
                            pos,
                            fact,
                        );
                    }
                    Use::Ret { loc } => {
                        let _ = loc;
                        if let Some(sites) = self.view.return_sites.get(&node) {
                            for &(caller, cloc, cdst) in &sites.clone() {
                                if let Some(d) = cdst {
                                    run.push(
                                        (caller, d),
                                        fact,
                                        vec![FlowStep {
                                            stmt: StmtNode { node: caller, loc: cloc },
                                            kind: StepKind::ReturnTo,
                                        }],
                                    );
                                }
                            }
                        }
                    }
                    Use::SinkArg { loc, method, pos } => {
                        let sink_stmt = StmtNode { node, loc };
                        self.emit_flow(
                            run,
                            result,
                            seen_flows,
                            fact,
                            vec![],
                            sink_stmt,
                            method,
                            pos,
                            StepKind::Local,
                        );
                    }
                    Use::Sanitized { .. } => {}
                }
            }
        }
    }

    /// Handles a reached heap store: taint-carrier edges (§4.1.1) and
    /// direct store→load edges (§3.2), plus reflective-invoke bindings.
    #[allow(clippy::too_many_arguments)]
    fn process_store(
        &mut self,
        run: &mut SeedRun,
        result: &mut SliceResult,
        seen_flows: &mut HashSet<(StmtNode, StmtNode, usize)>,
        heap_budget: &mut usize,
        store_stmt: StmtNode,
        store_node: CGNodeId,
        base: Var,
        field: FieldKey,
        parent: Fact,
        pre_steps: Vec<FlowStep>,
    ) {
        if !run.processed_stores.insert(store_stmt) {
            return;
        }
        let base_pts = self.view.local_pts(store_node, base);
        let mut steps = pre_steps;
        steps.push(FlowStep { stmt: store_stmt, kind: StepKind::Local });

        // Taint carriers: the stored-into object may reach a sink argument.
        for ik in base_pts.iter() {
            if let Some(sinks) = self.view.spec.carrier_sinks.get(&ik) {
                for cs in sinks.clone() {
                    self.emit_flow(
                        run,
                        result,
                        seen_flows,
                        parent,
                        steps.clone(),
                        cs.stmt,
                        cs.method,
                        cs.pos,
                        StepKind::CarrierEdge,
                    );
                }
            }
        }

        // Direct edges to aliased loads.
        if self.heap_budget_exhausted(*heap_budget) {
            result.budget_exhausted = true;
            return;
        }
        if let Some(loads) = self.view.loads_by_field.get(&field) {
            for (lnode, load) in loads.clone() {
                let Some(lbase) = load.base else { continue };
                let lpts = self.view.local_pts(lnode, lbase);
                if lpts.intersects(&base_pts) {
                    if self.edge_impossible(store_node, lnode, &base_pts, &lpts) {
                        self.edges_dropped += 1;
                        continue;
                    }
                    *heap_budget += 1;
                    if self.heap_budget_exhausted(*heap_budget) {
                        result.budget_exhausted = true;
                        return;
                    }
                    let mut s = steps.clone();
                    s.push(FlowStep {
                        stmt: StmtNode { node: lnode, loc: load.loc },
                        kind: StepKind::HeapEdge,
                    });
                    run.push((lnode, load.dst), parent, s);
                }
            }
        }
        // Reflective invoke: array stores feed the invoked method's params.
        if field == FieldKey::Array {
            for (inode, iloc, arr, callee) in self.view.invoke_bindings.clone() {
                let apts = self.view.local_pts(inode, arr);
                if apts.intersects(&base_pts) {
                    if self.edge_impossible(store_node, inode, &base_pts, &apts) {
                        self.edges_dropped += 1;
                        continue;
                    }
                    *heap_budget += 1;
                    let callee_method = self.view.pts.callgraph.method_of(callee);
                    let m = self.view.program.method(callee_method);
                    let off = usize::from(!m.is_static);
                    for i in 0..m.params.len() {
                        let mut s = steps.clone();
                        s.push(FlowStep {
                            stmt: StmtNode { node: inode, loc: iloc },
                            kind: StepKind::HeapEdge,
                        });
                        run.push((callee, Var((i + off) as u32)), parent, s);
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_static_store(
        &mut self,
        run: &mut SeedRun,
        heap_budget: &mut usize,
        result: &mut SliceResult,
        store_stmt: StmtNode,
        field: jir::FieldId,
        parent: Fact,
        pre_steps: Vec<FlowStep>,
    ) {
        if !run.processed_stores.insert(store_stmt) {
            return;
        }
        let mut steps = pre_steps;
        steps.push(FlowStep { stmt: store_stmt, kind: StepKind::Local });
        if let Some(loads) = self.view.static_loads.get(&field) {
            for (lnode, load) in loads.clone() {
                *heap_budget += 1;
                if self.heap_budget_exhausted(*heap_budget) {
                    result.budget_exhausted = true;
                    return;
                }
                let mut s = steps.clone();
                s.push(FlowStep {
                    stmt: StmtNode { node: lnode, loc: load.loc },
                    kind: StepKind::HeapEdge,
                });
                run.push((lnode, load.dst), parent, s);
            }
        }
    }

    /// Taint passed into a body callee: apply (or compute) the RHS summary.
    #[allow(clippy::too_many_arguments)]
    fn process_arg(
        &mut self,
        run: &mut SeedRun,
        result: &mut SliceResult,
        seen_flows: &mut HashSet<(StmtNode, StmtNode, usize)>,
        heap_budget: &mut usize,
        node: CGNodeId,
        loc: Loc,
        pos: usize,
        parent: Fact,
    ) {
        let call_stmt = StmtNode { node, loc };
        let targets: Vec<CGNodeId> = self.view.pts.callgraph.targets(node, loc).to_vec();
        for t in targets {
            let callee_method = self.view.pts.callgraph.method_of(t);
            let m = self.view.program.method(callee_method);
            if self.view.spec.sanitizers.contains(&callee_method)
                || self.view.spec.sources.contains(&callee_method)
                || self.view.spec.sinks.contains_key(&callee_method)
            {
                continue; // handled via dedicated roles
            }
            let off = usize::from(!m.is_static);
            if pos + off >= m.num_incoming() {
                continue;
            }
            let entry: Fact = (t, Var((pos + off) as u32));
            let summary = self.summary(entry).clone();
            let call_step = FlowStep { stmt: call_stmt, kind: StepKind::CallArg };
            for (st, base, field) in summary.stores {
                self.process_store(
                    run,
                    result,
                    seen_flows,
                    heap_budget,
                    st,
                    st.node,
                    base,
                    field,
                    parent,
                    vec![call_step],
                );
            }
            for (st, field) in summary.static_stores {
                self.process_static_store(
                    run,
                    heap_budget,
                    result,
                    st,
                    field,
                    parent,
                    vec![call_step],
                );
            }
            for (st, method, spos) in summary.sinks {
                self.emit_flow(
                    run,
                    result,
                    seen_flows,
                    parent,
                    vec![call_step],
                    st,
                    method,
                    spos,
                    StepKind::CallArg,
                );
            }
            if summary.reaches_ret {
                if let Some(d) = call_dst(self.view, node, loc) {
                    run.push(
                        (node, d),
                        parent,
                        vec![call_step, FlowStep { stmt: call_stmt, kind: StepKind::ReturnTo }],
                    );
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_flow(
        &mut self,
        run: &SeedRun,
        result: &mut SliceResult,
        seen_flows: &mut HashSet<(StmtNode, StmtNode, usize)>,
        parent: Fact,
        mid_steps: Vec<FlowStep>,
        sink: StmtNode,
        sink_method: MethodId,
        sink_pos: usize,
        final_kind: StepKind,
    ) {
        if !seen_flows.insert((run.seed_stmt, sink, sink_pos)) {
            return;
        }
        let mut path = run.reconstruct(parent);
        path.extend(mid_steps);
        path.push(FlowStep { stmt: sink, kind: final_kind });
        let heap_transitions = path
            .iter()
            .filter(|s| matches!(s.kind, StepKind::HeapEdge | StepKind::CarrierEdge))
            .count();
        result.flows.push(Flow {
            source: run.seed_stmt,
            source_method: run.seed_method,
            sink,
            sink_method,
            sink_pos,
            path,
            heap_transitions,
        });
    }

    fn heap_budget_exhausted(&self, used: usize) -> bool {
        matches!(self.bounds.max_heap_transitions, Some(max) if used >= max)
    }

    // ---- RHS endpoint summaries over the no-heap SDG ----

    /// Returns the summary for taint entering `entry`, computing it (and
    /// every transitive callee summary) to a fixpoint on first demand.
    fn summary(&mut self, entry: Fact) -> &Summary {
        if !self.summaries.contains_key(&entry) {
            let mut queue: VecDeque<Fact> = VecDeque::new();
            queue.push_back(entry);
            while let Some(key) = queue.pop_front() {
                if let Err(reason) = self.supervisor.check("hybrid.summary") {
                    self.interrupted = Some(reason);
                    // An incomplete summary is an under-approximation;
                    // the interrupt flag tells the driver the result is
                    // partial.
                    self.summaries.entry(entry).or_default();
                    break;
                }
                let computed = self.compute_summary(key, &mut queue);
                let changed = match self.summaries.get(&key) {
                    Some(old) => *old != computed,
                    None => true,
                };
                if changed {
                    self.summaries.insert(key, computed);
                    if let Some(deps) = self.dependents.get(&key) {
                        for d in deps.clone() {
                            queue.push_back(d);
                        }
                    }
                }
            }
        }
        self.summaries.get(&entry).expect("computed above")
    }

    /// One monotone evaluation of a summary from the current table.
    fn compute_summary(&mut self, entry: Fact, queue: &mut VecDeque<Fact>) -> Summary {
        let (node, entry_var) = entry;
        let mut out = Summary::default();
        let mut visited: HashSet<Var> = HashSet::new();
        let mut local_queue = vec![entry_var];
        visited.insert(entry_var);
        while let Some(v) = local_queue.pop() {
            self.work += 1;
            let uses = match self.view.node(node).uses.get(&v) {
                Some(u) => u.clone(),
                None => continue,
            };
            for u in uses {
                match u {
                    Use::Flow { to, .. } => {
                        if visited.insert(to) {
                            local_queue.push(to);
                        }
                    }
                    Use::Store { loc, base, field } => {
                        let st = (StmtNode { node, loc }, base, field);
                        if !out.stores.contains(&st) {
                            out.stores.push(st);
                        }
                    }
                    Use::StaticStore { loc, field } => {
                        let st = (StmtNode { node, loc }, field);
                        if !out.static_stores.contains(&st) {
                            out.static_stores.push(st);
                        }
                    }
                    Use::SinkArg { loc, method, pos } => {
                        let sk = (StmtNode { node, loc }, method, pos);
                        if !out.sinks.contains(&sk) {
                            out.sinks.push(sk);
                        }
                    }
                    Use::Ret { .. } => out.reaches_ret = true,
                    Use::Sanitized { .. } => {}
                    Use::Arg { loc, pos } => {
                        let targets: Vec<CGNodeId> =
                            self.view.pts.callgraph.targets(node, loc).to_vec();
                        for t in targets {
                            let callee_method = self.view.pts.callgraph.method_of(t);
                            let m = self.view.program.method(callee_method);
                            if self.view.spec.sanitizers.contains(&callee_method)
                                || self.view.spec.sources.contains(&callee_method)
                                || self.view.spec.sinks.contains_key(&callee_method)
                            {
                                continue;
                            }
                            let off = usize::from(!m.is_static);
                            if pos + off >= m.num_incoming() {
                                continue;
                            }
                            let sub_key: Fact = (t, Var((pos + off) as u32));
                            self.dependents.entry(sub_key).or_default().insert(entry);
                            let sub = match self.summaries.get(&sub_key) {
                                Some(s) => s.clone(),
                                None => {
                                    // Schedule computation; use ⊥ for now.
                                    queue.push_back(sub_key);
                                    Summary::default()
                                }
                            };
                            for st in sub.stores {
                                if !out.stores.contains(&st) {
                                    out.stores.push(st);
                                }
                            }
                            for st in sub.static_stores {
                                if !out.static_stores.contains(&st) {
                                    out.static_stores.push(st);
                                }
                            }
                            for sk in sub.sinks {
                                if !out.sinks.contains(&sk) {
                                    out.sinks.push(sk);
                                }
                            }
                            if sub.reaches_ret {
                                if let Some(d) = call_dst(self.view, node, loc) {
                                    if visited.insert(d) {
                                        local_queue.push(d);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Per-seed traversal state with provenance for flow reconstruction.
#[derive(Debug)]
struct SeedRun {
    seed_stmt: StmtNode,
    seed_method: MethodId,
    visited: HashSet<Fact>,
    parents: HashMap<Fact, Parent>,
    queue: VecDeque<Fact>,
    processed_stores: HashSet<StmtNode>,
}

#[derive(Debug, Clone)]
struct Parent {
    prev: Option<Fact>,
    steps: Vec<FlowStep>,
}

impl SeedRun {
    fn push(&mut self, fact: Fact, from: Fact, steps: Vec<FlowStep>) {
        if self.visited.insert(fact) {
            self.parents.insert(fact, Parent { prev: Some(from), steps });
            self.queue.push_back(fact);
        }
    }

    /// Rebuilds the witness path from the seed to `fact`.
    fn reconstruct(&self, fact: Fact) -> Vec<FlowStep> {
        let mut rev: Vec<FlowStep> = Vec::new();
        let mut cur = Some(fact);
        let mut guard = 0usize;
        while let Some(f) = cur {
            let Some(p) = self.parents.get(&f) else { break };
            for s in p.steps.iter().rev() {
                rev.push(*s);
            }
            cur = p.prev;
            guard += 1;
            if guard > 100_000 {
                break; // defensive: provenance cycles should not happen
            }
        }
        rev.reverse();
        rev
    }
}

/// Clamps a requested partition range to a list of `len` elements.
pub(crate) fn clamp_range(r: &std::ops::Range<usize>, len: usize) -> std::ops::Range<usize> {
    let start = r.start.min(len);
    start..r.end.min(len).max(start)
}

pub(crate) fn call_dst(view: &ProgramView<'_>, node: CGNodeId, loc: Loc) -> Option<Var> {
    let method = view.pts.callgraph.method_of(node);
    let body = view.program.method(method).body()?;
    match body.blocks.get(loc.block.index())?.insts.get(loc.idx as usize)? {
        jir::Inst::Call { dst, .. } => *dst,
        _ => None,
    }
}
