//! A per-call-graph-node view of the IR tailored to slicing: def-use
//! roles, load/store inventories, resolved call targets, and taint-rule
//! classifications. All three slicers (hybrid, CI, CS) consume this.

use std::collections::HashMap;

use jir::inst::{BinOp, Inst, Loc, Terminator, Var};
use jir::method::Intrinsic;
use jir::{FieldId, MethodId, Program};
use taj_pointer::{CGNodeId, PointsTo};

use crate::spec::{SliceSpec, StmtNode};

/// Field identity for heap-edge matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FieldKey {
    /// A named instance field.
    Field(FieldId),
    /// Array contents.
    Array,
}

/// One way a register is used inside a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Use {
    /// Local value flow into another register at `loc`.
    Flow {
        /// Destination register.
        to: Var,
        /// Statement.
        loc: Loc,
    },
    /// Stored into the heap.
    Store {
        /// Statement.
        loc: Loc,
        /// Base register.
        base: Var,
        /// Field.
        field: FieldKey,
    },
    /// Stored into a static field.
    StaticStore {
        /// Statement.
        loc: Loc,
        /// Field.
        field: FieldId,
    },
    /// Passed as the `pos`-th argument of a call with body callees.
    Arg {
        /// Call statement.
        loc: Loc,
        /// 0-based argument position.
        pos: usize,
    },
    /// Used by the `return` terminator.
    Ret {
        /// Terminator pseudo-location.
        loc: Loc,
    },
    /// Passed at a vulnerable position of a sink call (§3).
    SinkArg {
        /// Call statement.
        loc: Loc,
        /// Resolved sink method.
        method: MethodId,
        /// Parameter position.
        pos: usize,
    },
    /// Passed to a sanitizer: propagation stops (§3.2).
    Sanitized {
        /// Call statement.
        loc: Loc,
    },
}

/// A heap load statement (instance, static, or array).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadStmt {
    /// Statement location.
    pub loc: Loc,
    /// Base register (`None` for static loads).
    pub base: Option<Var>,
    /// Field identity (`None` for static loads — see `static_field`).
    pub field: Option<FieldKey>,
    /// Static field when `base` is `None`.
    pub static_field: Option<FieldId>,
    /// Loaded-into register.
    pub dst: Var,
}

/// A taint seed: a call to a source method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SourceCall {
    /// Call statement.
    pub loc: Loc,
    /// Register receiving the tainted value.
    pub dst: Var,
    /// The source method.
    pub method: MethodId,
}

/// A by-reference taint seed: see [`ProgramView::ref_seeds`].
#[derive(Clone, Debug)]
pub struct RefSeed {
    /// The call statement invoking the by-reference source.
    pub stmt: StmtNode,
    /// The resolved by-reference source method.
    pub method: MethodId,
    /// Points-to set of the tainted argument object.
    pub arg_pts: jir::util::BitSet,
    /// Initial slicing facts: destinations of loads that may read the
    /// tainted object's state.
    pub facts: Vec<(CGNodeId, Var)>,
}

/// Slicing-oriented view of one call-graph node.
#[derive(Clone, Debug, Default)]
pub struct NodeView {
    /// Register → uses.
    pub uses: HashMap<Var, Vec<Use>>,
    /// Heap/static loads in this node.
    pub loads: Vec<LoadStmt>,
    /// Source calls (taint seeds) in this node.
    pub sources: Vec<SourceCall>,
}

/// Program-wide slicing view: node views plus global indices for heap-edge
/// matching and return plumbing.
#[derive(Debug)]
pub struct ProgramView<'a> {
    /// The analyzed program.
    pub program: &'a Program,
    /// Phase-1 results.
    pub pts: &'a PointsTo,
    /// The rule projection.
    pub spec: &'a SliceSpec,
    views: Vec<NodeView>,
    /// All instance/array loads, grouped by field key.
    pub loads_by_field: HashMap<FieldKey, Vec<(CGNodeId, LoadStmt)>>,
    /// All static loads by field.
    pub static_loads: HashMap<FieldId, Vec<(CGNodeId, LoadStmt)>>,
    /// For each node: incoming call sites `(caller, loc, dst)` — where its
    /// return value lands.
    pub return_sites: HashMap<CGNodeId, Vec<(CGNodeId, Loc, Option<Var>)>>,
    /// Reflective invoke bindings grouped for array-store matching:
    /// `(caller node, call loc, array var, callee node)`.
    pub invoke_bindings: Vec<(CGNodeId, Loc, Var, CGNodeId)>,
}

/// Aggregate size counters of a [`ProgramView`] — the SDG-side numbers
/// tracing attaches to the `phase2.views` span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Call-graph node views built.
    pub nodes: usize,
    /// Register-use edges across all node views.
    pub use_edges: usize,
    /// Heap/static load statements indexed.
    pub loads: usize,
    /// Source (taint-seed) calls found.
    pub sources: usize,
}

impl ViewStats {
    /// Component-wise sum, for aggregating across per-rule views.
    pub fn add(&mut self, other: ViewStats) {
        self.nodes += other.nodes;
        self.use_edges += other.use_edges;
        self.loads += other.loads;
        self.sources += other.sources;
    }
}

impl<'a> ProgramView<'a> {
    /// Builds views for every call-graph node.
    pub fn build(program: &'a Program, pts: &'a PointsTo, spec: &'a SliceSpec) -> Self {
        let mut views = Vec::with_capacity(pts.callgraph.len());
        for node in pts.callgraph.iter_nodes() {
            views.push(build_node_view(program, pts, spec, node));
        }
        let mut loads_by_field: HashMap<FieldKey, Vec<(CGNodeId, LoadStmt)>> = HashMap::new();
        let mut static_loads: HashMap<FieldId, Vec<(CGNodeId, LoadStmt)>> = HashMap::new();
        for (idx, view) in views.iter().enumerate() {
            let node = CGNodeId::new(idx);
            for l in &view.loads {
                if let Some(f) = l.field {
                    loads_by_field.entry(f).or_default().push((node, *l));
                } else if let Some(sf) = l.static_field {
                    static_loads.entry(sf).or_default().push((node, *l));
                }
            }
        }
        let mut return_sites: HashMap<CGNodeId, Vec<(CGNodeId, Loc, Option<Var>)>> = HashMap::new();
        for e in &pts.callgraph.edges {
            let dst = call_dst_at(program, pts, e.caller, e.loc);
            return_sites.entry(e.callee).or_default().push((e.caller, e.loc, dst));
        }
        let invoke_bindings =
            pts.invoke_bindings.iter().map(|b| (b.caller, b.loc, b.arg_array, b.callee)).collect();
        ProgramView {
            program,
            pts,
            spec,
            views,
            loads_by_field,
            static_loads,
            return_sites,
            invoke_bindings,
        }
    }

    /// The view of `node`.
    pub fn node(&self, node: CGNodeId) -> &NodeView {
        &self.views[node.index()]
    }

    /// Aggregate size counters over every node view.
    pub fn stats(&self) -> ViewStats {
        let mut stats = ViewStats { nodes: self.views.len(), ..ViewStats::default() };
        for view in &self.views {
            stats.use_edges += view.uses.values().map(Vec::len).sum::<usize>();
            stats.loads += view.loads.len();
            stats.sources += view.sources.len();
        }
        stats
    }

    /// All taint seeds in the program: source calls plus synthetic source
    /// sites (§4.1.2).
    pub fn seeds(&self) -> Vec<(StmtNode, SourceCall)> {
        let mut out = Vec::new();
        for node in self.pts.callgraph.iter_nodes() {
            for s in &self.node(node).sources {
                out.push((StmtNode { node, loc: s.loc }, *s));
            }
        }
        for site in &self.spec.synthetic_source_sites {
            if site.node.index() >= self.views.len() {
                continue;
            }
            if let Some((Some(d), method)) = self.call_at(site.node, site.loc) {
                let sc = SourceCall { loc: site.loc, dst: d, method };
                if !out.iter().any(|(st, _)| *st == *site) {
                    out.push((*site, sc));
                }
            }
        }
        out
    }

    /// By-reference taint seeds (footnote 2 of the paper): for every call
    /// site resolving to a `ref_sources` method, the contents of the
    /// flagged argument object become tainted. Returns, per site, the
    /// loads whose base may alias that object (their destinations are the
    /// initial slicing facts) and the argument's points-to set (for
    /// immediate carrier checks).
    pub fn ref_seeds(&self) -> Vec<RefSeed> {
        let mut out = Vec::new();
        if self.spec.ref_sources.is_empty() {
            return out;
        }
        for node in self.pts.callgraph.iter_nodes() {
            let method = self.pts.callgraph.method_of(node);
            let Some(body) = self.program.method(method).body() else { continue };
            for (bid, block) in body.iter_blocks() {
                for (i, inst) in block.insts.iter().enumerate() {
                    let Inst::Call { args, .. } = inst else { continue };
                    let loc = Loc::new(bid, i);
                    let mut callees: Vec<MethodId> = self
                        .pts
                        .callgraph
                        .targets(node, loc)
                        .iter()
                        .map(|&t| self.pts.callgraph.method_of(t))
                        .collect();
                    callees.extend(self.pts.intrinsics_at(node, loc).iter().map(|&(m, _)| m));
                    for callee in callees {
                        let Some(positions) = self.spec.ref_sources.get(&callee) else {
                            continue;
                        };
                        for &pos in positions {
                            let Some(&arg) = args.get(pos) else { continue };
                            let arg_pts = self.local_pts(node, arg);
                            if arg_pts.is_empty() {
                                continue;
                            }
                            let mut facts = Vec::new();
                            for loads in self.loads_by_field.values() {
                                for (lnode, l) in loads {
                                    let Some(lb) = l.base else { continue };
                                    if self.local_pts(*lnode, lb).intersects(&arg_pts) {
                                        facts.push((*lnode, l.dst));
                                    }
                                }
                            }
                            out.push(RefSeed {
                                stmt: StmtNode { node, loc },
                                method: callee,
                                arg_pts: arg_pts.clone(),
                                facts,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// The destination register and first resolved callee of the call at
    /// `(node, loc)`, if it is a call.
    fn call_at(&self, node: CGNodeId, loc: Loc) -> Option<(Option<Var>, MethodId)> {
        let method = self.pts.callgraph.method_of(node);
        let body = self.program.method(method).body()?;
        let inst = body.blocks.get(loc.block.index())?.insts.get(loc.idx as usize)?;
        if let Inst::Call { dst, .. } = inst {
            let callee = self
                .pts
                .callgraph
                .targets(node, loc)
                .first()
                .map(|&t| self.pts.callgraph.method_of(t))
                .or_else(|| self.pts.intrinsics_at(node, loc).first().map(|&(m, _)| m))?;
            Some((*dst, callee))
        } else {
            None
        }
    }

    /// The points-to set of a local, empty if absent.
    pub fn local_pts(&self, node: CGNodeId, var: Var) -> jir::util::BitSet {
        self.pts.local(node, var).cloned().unwrap_or_default()
    }

    /// Whether the statement's owning method is library code (for LCP, §5).
    pub fn is_library_stmt(&self, stmt: StmtNode) -> bool {
        let m = self.pts.callgraph.method_of(stmt.node);
        self.program.class(self.program.method(m).owner).is_library
    }
}

fn call_dst_at(program: &Program, pts: &PointsTo, node: CGNodeId, loc: Loc) -> Option<Var> {
    let method = pts.callgraph.method_of(node);
    let body = program.method(method).body()?;
    let inst = body.blocks.get(loc.block.index())?.insts.get(loc.idx as usize)?;
    match inst {
        Inst::Call { dst, .. } => *dst,
        _ => None,
    }
}

fn build_node_view(
    program: &Program,
    pts: &PointsTo,
    spec: &SliceSpec,
    node: CGNodeId,
) -> NodeView {
    let method = pts.callgraph.method_of(node);
    let mut view = NodeView::default();
    let Some(body) = program.method(method).body() else {
        return view;
    };
    let mut add_use = |v: Var, u: Use| view.uses.entry(v).or_default().push(u);

    for (bid, block) in body.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            let loc = Loc::new(bid, i);
            match inst {
                Inst::Assign { dst, src, .. } => {
                    add_use(*src, Use::Flow { to: *dst, loc });
                }
                Inst::Phi { dst, srcs } => {
                    for (_, v) in srcs {
                        add_use(*v, Use::Flow { to: *dst, loc });
                    }
                }
                Inst::Select { dst, srcs } => {
                    for v in srcs {
                        add_use(*v, Use::Flow { to: *dst, loc });
                    }
                }
                Inst::Binary { dst, op, lhs, rhs } => {
                    // All binary operators are data dependencies; string
                    // concatenation is the taint-relevant one.
                    let _ = op;
                    let _ = BinOp::Concat;
                    add_use(*lhs, Use::Flow { to: *dst, loc });
                    add_use(*rhs, Use::Flow { to: *dst, loc });
                }
                Inst::Load { dst, base, field } => {
                    view.loads.push(LoadStmt {
                        loc,
                        base: Some(*base),
                        field: Some(FieldKey::Field(*field)),
                        static_field: None,
                        dst: *dst,
                    });
                }
                Inst::StaticLoad { dst, field } => {
                    view.loads.push(LoadStmt {
                        loc,
                        base: None,
                        field: None,
                        static_field: Some(*field),
                        dst: *dst,
                    });
                }
                Inst::ArrayLoad { dst, base, .. } => {
                    view.loads.push(LoadStmt {
                        loc,
                        base: Some(*base),
                        field: Some(FieldKey::Array),
                        static_field: None,
                        dst: *dst,
                    });
                }
                Inst::Store { base, field, src } => {
                    add_use(*src, Use::Store { loc, base: *base, field: FieldKey::Field(*field) });
                }
                Inst::ArrayStore { base, src, .. } => {
                    add_use(*src, Use::Store { loc, base: *base, field: FieldKey::Array });
                }
                Inst::StaticStore { field, src } => {
                    add_use(*src, Use::StaticStore { loc, field: *field });
                }
                Inst::Call { dst, recv, args, .. } => {
                    build_call_uses(
                        program,
                        pts,
                        spec,
                        node,
                        loc,
                        *dst,
                        *recv,
                        args,
                        &mut add_use,
                        &mut view.sources,
                    );
                    // Container intrinsics that survived model expansion
                    // (receiver static type too weak, e.g. an interface):
                    // model reads as pseudo-loads of the synthetic fields
                    // so direct store→load matching still applies.
                    for &(_, intr) in pts.intrinsics_at(node, loc) {
                        let field_names: &[&str] = match intr {
                            Intrinsic::CollGet => &[jir::expand::fields::ELEMS],
                            Intrinsic::BuilderToString => &[jir::expand::fields::CONTENT],
                            Intrinsic::MapGet => &[jir::expand::fields::MAP_UNKNOWN],
                            _ => continue,
                        };
                        if let (Some(d), Some(r)) = (*dst, *recv) {
                            for fname in field_names {
                                if let Some(f) = program.find_synthetic_field(fname) {
                                    view.loads.push(LoadStmt {
                                        loc,
                                        base: Some(r),
                                        field: Some(FieldKey::Field(f)),
                                        static_field: None,
                                        dst: d,
                                    });
                                }
                            }
                            // A fallback MapGet must cover every known key.
                            if intr == Intrinsic::MapGet {
                                for f in program.map_key_fields() {
                                    view.loads.push(LoadStmt {
                                        loc,
                                        base: Some(r),
                                        field: Some(FieldKey::Field(f)),
                                        static_field: None,
                                        dst: d,
                                    });
                                }
                            }
                        }
                    }
                }
                Inst::Const { .. }
                | Inst::New { .. }
                | Inst::NewArray { .. }
                | Inst::CatchBind { .. } => {}
            }
        }
        // Terminator: returns propagate to callers.
        let term_loc = Loc::new(bid, block.insts.len());
        if let Terminator::Return(Some(v)) = &block.term {
            add_use(*v, Use::Ret { loc: term_loc });
        }
    }
    view
}

#[allow(clippy::too_many_arguments)]
fn build_call_uses(
    _program: &Program,
    pts: &PointsTo,
    spec: &SliceSpec,
    node: CGNodeId,
    loc: Loc,
    dst: Option<Var>,
    recv: Option<Var>,
    args: &[Var],
    add_use: &mut impl FnMut(Var, Use),
    sources: &mut Vec<SourceCall>,
) {
    let mut has_body_target = false;
    let mut body_sanitizer = false;

    // Body callees (call-graph targets).
    for &target in pts.callgraph.targets(node, loc) {
        let callee = pts.callgraph.method_of(target);
        if spec.sanitizers.contains(&callee) {
            body_sanitizer = true;
            continue;
        }
        if let Some(positions) = spec.sinks.get(&callee) {
            for &p in positions {
                if let Some(&a) = args.get(p) {
                    add_use(a, Use::SinkArg { loc, method: callee, pos: p });
                }
            }
            continue; // flow does not continue into sink bodies
        }
        if spec.sources.contains(&callee) {
            if let Some(d) = dst {
                sources.push(SourceCall { loc, dst: d, method: callee });
            }
            continue;
        }
        has_body_target = true;
    }
    if has_body_target {
        for (i, &a) in args.iter().enumerate() {
            add_use(a, Use::Arg { loc, pos: i });
        }
    }

    // Intrinsic callees.
    for &(callee, intr) in pts.intrinsics_at(node, loc) {
        if spec.sanitizers.contains(&callee) {
            for &a in args {
                add_use(a, Use::Sanitized { loc });
            }
            continue;
        }
        if let Some(positions) = spec.sinks.get(&callee) {
            for &p in positions {
                if let Some(&a) = args.get(p) {
                    add_use(a, Use::SinkArg { loc, method: callee, pos: p });
                }
            }
        }
        if spec.sources.contains(&callee) {
            if let Some(d) = dst {
                sources.push(SourceCall { loc, dst: d, method: callee });
            }
            continue;
        }
        // Intrinsic dataflow.
        match intr {
            Intrinsic::Propagate | Intrinsic::GetMessage => {
                if let Some(d) = dst {
                    if let Some(r) = recv {
                        add_use(r, Use::Flow { to: d, loc });
                    }
                    if intr == Intrinsic::Propagate {
                        for &a in args {
                            add_use(a, Use::Flow { to: d, loc });
                        }
                    }
                }
            }
            Intrinsic::ReturnReceiver | Intrinsic::IterAlias => {
                if let (Some(d), Some(r)) = (dst, recv) {
                    add_use(r, Use::Flow { to: d, loc });
                }
            }
            // Container write fallbacks: model the stored value as a heap
            // store into the synthetic summary field.
            Intrinsic::CollAdd | Intrinsic::BuilderAppend | Intrinsic::MapPut => {
                let fname = match intr {
                    Intrinsic::CollAdd => jir::expand::fields::ELEMS,
                    Intrinsic::BuilderAppend => jir::expand::fields::CONTENT,
                    _ => jir::expand::fields::MAP_UNKNOWN,
                };
                if let (Some(r), Some(&v)) = (recv, args.last()) {
                    if let Some(f) = _program.find_synthetic_field(fname) {
                        add_use(v, Use::Store { loc, base: r, field: FieldKey::Field(f) });
                    }
                }
            }
            // The rest have no register-level dataflow to model.
            _ => {}
        }
    }

    // Sanitized args for body sanitizers (recorded once).
    if body_sanitizer {
        for &a in args {
            add_use(a, Use::Sanitized { loc });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taj_pointer::{analyze, SolverConfig};

    fn setup(src: &str) -> (Program, PointsTo) {
        let mut p = jir::frontend::build_program(src).unwrap();
        let c = p.class_by_name("Main").unwrap();
        let m = p.method_by_name(c, "main").unwrap();
        p.entrypoints.push(m);
        let pts = analyze(&p, &SolverConfig::default());
        (p, pts)
    }

    fn default_spec(p: &Program) -> SliceSpec {
        let req = p.class_by_name("HttpServletRequest").unwrap();
        let gp = p.method_by_name(req, "getParameter").unwrap();
        let pw = p.class_by_name("PrintWriter").unwrap();
        let println = p.method_by_name(pw, "println").unwrap();
        let enc = p.class_by_name("URLEncoder").unwrap();
        let encode = p.method_by_name(enc, "encode").unwrap();
        let mut spec = SliceSpec::default();
        spec.sources.insert(gp);
        spec.sinks.insert(println, vec![0]);
        spec.sanitizers.insert(encode);
        spec
    }

    #[test]
    fn seeds_found() {
        let (p, pts) = setup(
            r#"
            class Main {
                static method void main() {
                    HttpServletRequest req = new HttpServletRequest();
                    String t = req.getParameter("x");
                }
            }
            "#,
        );
        let spec = default_spec(&p);
        let view = ProgramView::build(&p, &pts, &spec);
        assert_eq!(view.seeds().len(), 1);
    }

    #[test]
    fn sink_args_classified() {
        let (p, pts) = setup(
            r#"
            class Main {
                static method void main() {
                    HttpServletResponse resp = new HttpServletResponse();
                    PrintWriter w = resp.getWriter();
                    w.println("x");
                }
            }
            "#,
        );
        let spec = default_spec(&p);
        let view = ProgramView::build(&p, &pts, &spec);
        let has_sink = pts.callgraph.iter_nodes().any(|n| {
            view.node(n).uses.values().flatten().any(|u| matches!(u, Use::SinkArg { .. }))
        });
        assert!(has_sink, "println argument should be a SinkArg");
    }

    #[test]
    fn sanitizer_stops_classification() {
        let (p, pts) = setup(
            r#"
            class Main {
                static method void main() {
                    HttpServletRequest req = new HttpServletRequest();
                    String t = req.getParameter("x");
                    String s = URLEncoder.encode(t);
                }
            }
            "#,
        );
        let spec = default_spec(&p);
        let view = ProgramView::build(&p, &pts, &spec);
        let has_sanitized = pts.callgraph.iter_nodes().any(|n| {
            view.node(n).uses.values().flatten().any(|u| matches!(u, Use::Sanitized { .. }))
        });
        assert!(has_sanitized);
        // And no Flow use may exist at the same statement as the
        // sanitization (the sanitizer's Propagate semantics are overridden).
        for n in pts.callgraph.iter_nodes() {
            let sanitized_locs: Vec<Loc> = view
                .node(n)
                .uses
                .values()
                .flatten()
                .filter_map(|u| match u {
                    Use::Sanitized { loc } => Some(*loc),
                    _ => None,
                })
                .collect();
            let flows_at_sanitizer = view
                .node(n)
                .uses
                .values()
                .flatten()
                .any(|u| matches!(u, Use::Flow { loc, .. } if sanitized_locs.contains(loc)));
            assert!(!flows_at_sanitizer, "sanitized arg must not also flow");
        }
    }

    #[test]
    fn concat_is_flow() {
        let (p, pts) = setup(
            r#"
            class Main {
                static method void main() {
                    HttpServletRequest req = new HttpServletRequest();
                    String t = req.getParameter("x");
                    String u = "pre" + t;
                }
            }
            "#,
        );
        let spec = default_spec(&p);
        let view = ProgramView::build(&p, &pts, &spec);
        let flows = pts
            .callgraph
            .iter_nodes()
            .flat_map(|n| view.node(n).uses.values().flatten().cloned().collect::<Vec<_>>())
            .filter(|u| matches!(u, Use::Flow { .. }))
            .count();
        assert!(flows >= 1, "concat should register local flow");
    }

    #[test]
    fn loads_indexed_by_field() {
        let (p, pts) = setup(
            r#"
            class Box { field Object v; ctor (Object v) { this.v = v; } method Object get() { return this.v; } }
            class Main {
                static method void main() {
                    Box b = new Box(new Object());
                    Object o = b.get();
                }
            }
            "#,
        );
        let spec = default_spec(&p);
        let view = ProgramView::build(&p, &pts, &spec);
        let box_c = p.class_by_name("Box").unwrap();
        let v_field = p.field_by_name(box_c, "v").unwrap();
        assert!(view.loads_by_field.contains_key(&FieldKey::Field(v_field)));
    }
}
