//! Inputs and outputs of the slicing phase: the security-rule projection
//! the slicers consume ([`SliceSpec`]) and the tainted flows they produce
//! ([`Flow`]).

use std::collections::{HashMap, HashSet};

use jir::inst::Loc;
use jir::MethodId;
use taj_pointer::CGNodeId;
use taj_supervise::InterruptReason;

/// A statement identified globally: call-graph node + location.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtNode {
    /// Owning call-graph node.
    pub node: CGNodeId,
    /// Location within the node's method body.
    pub loc: Loc,
}

/// What the slicers need to know from the security rules (§3): which
/// methods generate taint, which neutralize it, and which consume it
/// dangerously.
#[derive(Clone, Debug, Default)]
pub struct SliceSpec {
    /// Source methods: their return value is tainted.
    pub sources: HashSet<MethodId>,
    /// Sink methods → 0-based positions of their vulnerable parameters.
    pub sinks: HashMap<MethodId, Vec<usize>>,
    /// Sanitizer methods: flow stops at their arguments (§3.2: the no-heap
    /// SDG has no successor edges for sanitizer returns).
    pub sanitizers: HashSet<MethodId>,
    /// Additional synthetic source *statements* (e.g. the `getMessage`
    /// calls synthesized at catch sites, §4.1.2). Each is a call statement
    /// whose result is tainted.
    pub synthetic_source_sites: Vec<StmtNode>,
    /// By-reference sources (the paper's footnote 2: methods like
    /// `RandomAccessFile.readFully` that "receive parameters by reference
    /// and taint their internal state"): `(method, parameter position)`.
    /// Calling one taints the contents of the argument object.
    pub ref_sources: HashMap<MethodId, Vec<usize>>,
    /// Taint-carrier index (§4.1.1): for an abstract object (raw instance
    /// key id), the sink call statements whose sensitive arguments may
    /// reach it in the heap graph. A store whose base points to the object
    /// adds a direct HSDG edge to each listed sink.
    pub carrier_sinks: HashMap<u32, Vec<CarrierSink>>,
}

/// A sink reachable through a taint carrier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CarrierSink {
    /// The sink call statement.
    pub stmt: StmtNode,
    /// The resolved sink method.
    pub method: MethodId,
    /// Sensitive parameter position carrying the object.
    pub pos: usize,
}

/// How one step of a reconstructed flow was made.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// The taint seed (source call).
    Seed,
    /// Local value flow through the statement.
    Local,
    /// Passed as an argument into a callee.
    CallArg,
    /// Returned from a callee back to the call site.
    ReturnTo,
    /// A heap direct edge: store matched to a load (§3.2).
    HeapEdge,
    /// A taint-carrier edge: store matched to a sink consuming the carrier
    /// object (§4.1.1).
    CarrierEdge,
}

/// One step of a flow: a statement plus how the taint got there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowStep {
    /// The statement.
    pub stmt: StmtNode,
    /// Step kind.
    pub kind: StepKind,
}

/// A tainted source-to-sink flow reported by a slicer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Flow {
    /// The source statement (a source call, or a synthetic source site).
    pub source: StmtNode,
    /// The method whose call generated the taint.
    pub source_method: MethodId,
    /// The sink statement.
    pub sink: StmtNode,
    /// The resolved sink method.
    pub sink_method: MethodId,
    /// Which sink parameter received tainted data.
    pub sink_pos: usize,
    /// The witness path, source first, sink last.
    pub path: Vec<FlowStep>,
    /// Number of heap (store→load / carrier) transitions on the path.
    pub heap_transitions: usize,
}

impl Flow {
    /// Flow length as bounded by §6.2.2: the number of statements on the
    /// witness path.
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// Whether the path is empty (never true for real flows).
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }
}

/// Result of running a slicer over a program.
#[derive(Clone, Debug, Default)]
pub struct SliceResult {
    /// Distinct `(source, sink, position)` flows, each with one witness
    /// path.
    pub flows: Vec<Flow>,
    /// Heap store→load transitions performed during slicing (the §6.2.1
    /// budget counts these).
    pub heap_transitions: usize,
    /// Whether the heap-transition budget was exhausted (result may be
    /// under-approximate).
    pub budget_exhausted: bool,
    /// Path edges / facts processed (work measure; the CS slicer's memory
    /// proxy).
    pub work: usize,
    /// Why the slicer stopped early, if its supervisor interrupted it.
    /// `flows` then holds every flow completed before the interrupt
    /// (a sound-but-partial under-approximation).
    pub interrupted: Option<InterruptReason>,
}

/// Failure modes of a slicer run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SliceError {
    /// The slicer exceeded its memory budget (path-edge count) — the
    /// reproducible analogue of the paper's CS out-of-memory failures.
    OutOfBudget {
        /// Path edges created before giving up.
        path_edges: usize,
    },
}

impl std::fmt::Display for SliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SliceError::OutOfBudget { path_edges } => {
                write!(f, "slicer exceeded its path-edge budget ({path_edges} edges)")
            }
        }
    }
}

impl std::error::Error for SliceError {}

/// Bounds on the slicing process (§6.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct SliceBounds {
    /// Maximum store→load transitions during hybrid slicing (§6.2.1).
    pub max_heap_transitions: Option<usize>,
    /// Path-edge budget (memory proxy); exceeded ⇒ [`SliceError::OutOfBudget`].
    pub max_path_edges: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_len_counts_path() {
        let s = StmtNode { node: CGNodeId(0), loc: Loc::new(jir::BlockId(0), 0) };
        let flow = Flow {
            source: s,
            source_method: MethodId(0),
            sink: s,
            sink_method: MethodId(1),
            sink_pos: 0,
            path: vec![
                FlowStep { stmt: s, kind: StepKind::Seed },
                FlowStep { stmt: s, kind: StepKind::Local },
            ],
            heap_transitions: 0,
        };
        assert_eq!(flow.len(), 2);
        assert!(!flow.is_empty());
    }

    #[test]
    fn slice_error_display() {
        let e = SliceError::OutOfBudget { path_edges: 10 };
        assert!(e.to_string().contains("10"));
    }
}
