//! IFDS taint analysis with bounded-depth access paths — the seventh
//! configuration, and a genuinely independent algorithm from the three
//! thin slicers: Reps–Horwitz–Sagiv tabulation over the exploded
//! supergraph whose dataflow facts are *access paths* `base.f.g` of
//! configurable depth `k` (after Allen et al.'s IFDS-with-access-paths
//! formulation), widening to field-insensitive taint when a path grows
//! past the bound.
//!
//! ## Fact space
//!
//! A fact is a base plus an [`ApFields`] suffix:
//!
//! - `Local(node, var, F)` — with `F` empty: the register's *value* is
//!   tainted (exactly a hybrid/CS fact); with `F = f.g`: the register
//!   holds an object whose `f.g` chain reaches tainted data.
//! - `Heap(ik, F)` — the abstract object's `F` chain is tainted
//!   (`F[0]` is the stored-into field).
//! - `Static(field, F)` — a static field holds an object whose `F`
//!   chain is tainted (`F` empty: the static value itself).
//!
//! A store `o.f = v` *prepends* `f` to `v`'s suffix; a load `x = o.f`
//! *consumes* `f`. When prepending would exceed `k` the path truncates
//! and sets the `widened` flag: a widened path represents itself **and
//! every extension**, so a widened-empty suffix matches any load — at
//! `k = 0` every store widens immediately and the analysis degenerates
//! to field-insensitive taint ("the object is tainted").
//!
//! ## Tabulation
//!
//! Procedure-local value flow is summarized once per callee entry
//! register with the same RHS endpoint summaries as the hybrid slicer
//! (the summary shape is field-generic: local flow never changes a
//! suffix, so one summary serves every instantiation). Heap flow is
//! matched through the phase-1 points-to solution: a `Heap(ik, F)` fact
//! reaches the loads whose base may point to `ik`, and is *injected*
//! into every local alias of `ik` so that deeper chains (storing a
//! carrier object, passing it to a callee) are explored — this
//! injection is what makes paths of length ≥ 2, and therefore the
//! depth bound, observable.
//!
//! ## Determinism
//!
//! Everything that reaches the output is iterated in a structurally
//! fixed order: node views in call-graph order, use/load vectors in
//! program order, the alias index sorted by `(node, var)`, ref-seed
//! facts sorted before seeding. No `HashMap` iteration order is ever
//! observable in the flow set or the witness paths, so the result is
//! byte-identical at every thread count (the parallel engine runs IFDS
//! rules as whole units; see `taj_core::parallel`).

use std::collections::{HashMap, HashSet, VecDeque};

use jir::inst::{Loc, Var};
use jir::{FieldId, MethodId};
use taj_pointer::CGNodeId;
use taj_supervise::{InterruptReason, Supervisor};

use crate::hybrid::call_dst;
use crate::spec::{Flow, FlowStep, SliceResult, StepKind, StmtNode};
use crate::view::{FieldKey, LoadStmt, ProgramView, Use};

/// A bounded access-path suffix: at most `k` fields, with a widening
/// flag meaning "this prefix *and every extension of it*".
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct ApFields {
    /// The field chain, outermost dereference first (`o.f.g` → `[f, g]`).
    path: Vec<FieldKey>,
    /// Widened: the chain overflowed the depth bound, so any suffix
    /// beyond `path` is also considered tainted.
    widened: bool,
}

impl ApFields {
    /// The empty suffix: the value itself is tainted.
    pub fn value() -> Self {
        ApFields::default()
    }

    /// Whether this suffix taints the base value itself — the condition
    /// for sink reporting. True for the precise empty suffix and for the
    /// widened-empty suffix (field-insensitive "object tainted").
    pub fn is_value(&self) -> bool {
        self.path.is_empty()
    }

    /// The outermost field, if any.
    fn first(&self) -> Option<FieldKey> {
        self.path.first().copied()
    }

    /// The suffix after a store into `field`: prepend, truncate to `k`,
    /// widen on overflow. At `k = 0` every store widens immediately.
    fn prepend(&self, field: FieldKey, k: usize) -> Self {
        let mut path = Vec::with_capacity(self.path.len() + 1);
        path.push(field);
        path.extend(self.path.iter().copied());
        let mut widened = self.widened;
        if path.len() > k {
            path.truncate(k);
            widened = true;
        }
        ApFields { path, widened }
    }

    /// The suffix after a load of `field`, or `None` if the load cannot
    /// touch tainted data. An exact first-field match consumes it; a
    /// widened-empty suffix matches any field and stays itself.
    fn consume(&self, field: FieldKey) -> Option<ApFields> {
        if self.first() == Some(field) {
            Some(ApFields { path: self.path[1..].to_vec(), widened: self.widened })
        } else if self.widened && self.path.is_empty() {
            Some(self.clone())
        } else {
            None
        }
    }
}

/// One exploded-supergraph fact. See the module docs for semantics.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Fact {
    /// A register of a call-graph node, qualified by a suffix.
    Local(CGNodeId, Var, ApFields),
    /// An abstract object (raw instance key), qualified by a suffix
    /// whose first field is the stored-into field.
    Heap(u32, ApFields),
    /// A static field, qualified by a suffix.
    Static(FieldId, ApFields),
}

/// What a callee does with taint entering through one register — the
/// same field-generic RHS endpoint summary the hybrid slicer tabulates
/// (local flow never changes a suffix, so one summary serves every
/// access-path instantiation).
#[derive(Clone, Debug, Default, PartialEq)]
struct Summary {
    /// Heap stores reached (statement, base register, field).
    stores: Vec<(StmtNode, Var, FieldKey)>,
    /// Static stores reached.
    static_stores: Vec<(StmtNode, FieldId)>,
    /// Sink arguments reached `(stmt, sink method, position)`.
    sinks: Vec<(StmtNode, MethodId, usize)>,
    /// Whether the taint reaches the method's return value.
    reaches_ret: bool,
}

/// Entry key of a summary: callee node and entry register.
type SumKey = (CGNodeId, Var);

/// The IFDS access-path slicer.
#[derive(Debug)]
pub struct IfdsSlicer<'a> {
    view: &'a ProgramView<'a>,
    /// Access-path depth bound `k`.
    depth: usize,
    summaries: HashMap<SumKey, Summary>,
    /// Reverse dependencies: when `key`'s summary grows, recompute these.
    dependents: HashMap<SumKey, HashSet<SumKey>>,
    /// Instance key → locals that may point to it, sorted `(node, var)`
    /// — the alias-injection index.
    aliases: HashMap<u32, Vec<(CGNodeId, Var)>>,
    /// Every instance/array load, in call-graph/program order — what a
    /// widened-empty heap fact matches against.
    all_loads: Vec<(CGNodeId, LoadStmt)>,
    /// Distinct facts inserted into any seed's visited set.
    facts_created: usize,
    /// Worklist pops across tabulation and summary fixpoints.
    worklist_pops: usize,
    work: usize,
    supervisor: Supervisor,
    interrupted: Option<InterruptReason>,
}

impl<'a> IfdsSlicer<'a> {
    /// Creates a slicer over a program view with depth bound `k`.
    pub fn new(view: &'a ProgramView<'a>, depth: usize) -> Self {
        let mut aliases: HashMap<u32, Vec<(CGNodeId, Var)>> = HashMap::new();
        let mut all_loads: Vec<(CGNodeId, LoadStmt)> = Vec::new();
        for node in view.pts.callgraph.iter_nodes() {
            let nv = view.node(node);
            let mut vars: Vec<Var> = nv.uses.keys().copied().collect();
            for l in &nv.loads {
                if l.field.is_some() {
                    all_loads.push((node, *l));
                }
                if let Some(b) = l.base {
                    vars.push(b);
                }
            }
            vars.sort_unstable();
            vars.dedup();
            for v in vars {
                for ik in view.local_pts(node, v).iter() {
                    aliases.entry(ik).or_default().push((node, v));
                }
            }
        }
        IfdsSlicer {
            view,
            depth,
            summaries: HashMap::new(),
            dependents: HashMap::new(),
            aliases,
            all_loads,
            facts_created: 0,
            worklist_pops: 0,
            work: 0,
            supervisor: Supervisor::new(),
            interrupted: None,
        }
    }

    /// Attaches a supervisor; its checks run at the per-fact tabulation
    /// (`ifds.tabulate` site) and the summary fixpoint (`ifds.summary`
    /// site). On an interrupt the slicer stops taking work and reports
    /// the flows found so far with [`SliceResult::interrupted`] set.
    pub fn with_supervisor(mut self, supervisor: Supervisor) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Distinct dataflow facts created across all seeds so far.
    pub fn facts_created(&self) -> usize {
        self.facts_created
    }

    /// Worklist pops performed (tabulation + summary fixpoints).
    pub fn worklist_pops(&self) -> usize {
        self.worklist_pops
    }

    /// Summary edges tabulated: every store/static-store/sink effect and
    /// reaches-return bit across the memoized callee summaries.
    pub fn summary_edges(&self) -> usize {
        self.summaries
            .values()
            .map(|s| {
                s.stores.len() + s.static_stores.len() + s.sinks.len() + usize::from(s.reaches_ret)
            })
            .sum()
    }

    /// Runs the tabulation from every source and returns the tainted
    /// flows.
    pub fn run(&mut self) -> SliceResult {
        let seeds = self.view.seeds();
        let ref_seeds = self.view.ref_seeds();
        let mut result = SliceResult::default();
        let mut seen_flows: HashSet<(StmtNode, StmtNode, usize)> = HashSet::new();
        let mut heap_edges = 0usize;
        for &(stmt, sc) in &seeds {
            if self.interrupted.is_some() {
                break;
            }
            let mut run = SeedRun::new(stmt, sc.method);
            self.seed(
                &mut run,
                Fact::Local(stmt.node, sc.dst, ApFields::value()),
                vec![FlowStep { stmt, kind: StepKind::Seed }],
            );
            self.tabulate(&mut run, &mut result, &mut seen_flows, &mut heap_edges);
        }
        // By-reference sources (footnote 2): the argument object's state
        // is tainted — loads reading it become value seeds, and the
        // object itself is an immediate taint carrier.
        for rs in &ref_seeds {
            if self.interrupted.is_some() {
                break;
            }
            let mut run = SeedRun::new(rs.stmt, rs.method);
            // `RefSeed::facts` is collected in `HashMap` iteration order;
            // sort so the tabulation order (and witness paths) never
            // depend on it.
            let mut facts = rs.facts.clone();
            facts.sort_unstable();
            facts.dedup();
            for (n, v) in facts {
                self.seed(
                    &mut run,
                    Fact::Local(n, v, ApFields::value()),
                    vec![FlowStep { stmt: rs.stmt, kind: StepKind::Seed }],
                );
            }
            for ik in rs.arg_pts.iter() {
                if let Some(sinks) = self.view.spec.carrier_sinks.get(&ik) {
                    for cs in sinks.clone() {
                        if seen_flows.insert((rs.stmt, cs.stmt, cs.pos)) {
                            result.flows.push(Flow {
                                source: rs.stmt,
                                source_method: rs.method,
                                sink: cs.stmt,
                                sink_method: cs.method,
                                sink_pos: cs.pos,
                                path: vec![
                                    FlowStep { stmt: rs.stmt, kind: StepKind::Seed },
                                    FlowStep { stmt: cs.stmt, kind: StepKind::CarrierEdge },
                                ],
                                heap_transitions: 1,
                            });
                        }
                    }
                }
            }
            self.tabulate(&mut run, &mut result, &mut seen_flows, &mut heap_edges);
        }
        result.heap_transitions = heap_edges;
        result.work = self.work;
        result.interrupted = self.interrupted;
        result
    }

    /// Seeds an initial fact with no provenance predecessor.
    fn seed(&mut self, run: &mut SeedRun, fact: Fact, steps: Vec<FlowStep>) {
        if run.visited.insert(fact.clone()) {
            self.facts_created += 1;
            run.parents.insert(fact.clone(), Parent { prev: None, steps });
            run.queue.push_back(fact);
        }
    }

    /// Inserts a derived fact with provenance.
    fn push(&mut self, run: &mut SeedRun, fact: Fact, from: &Fact, steps: Vec<FlowStep>) {
        if run.visited.insert(fact.clone()) {
            self.facts_created += 1;
            run.parents.insert(fact.clone(), Parent { prev: Some(from.clone()), steps });
            run.queue.push_back(fact);
        }
    }

    /// Drains one seed's worklist to a fixpoint.
    fn tabulate(
        &mut self,
        run: &mut SeedRun,
        result: &mut SliceResult,
        seen_flows: &mut HashSet<(StmtNode, StmtNode, usize)>,
        heap_edges: &mut usize,
    ) {
        while let Some(fact) = run.queue.pop_front() {
            if self.interrupted.is_some() {
                return;
            }
            if let Err(reason) = self.supervisor.check("ifds.tabulate") {
                self.interrupted = Some(reason);
                return;
            }
            self.worklist_pops += 1;
            self.work += 1;
            match fact.clone() {
                Fact::Local(node, var, fields) => {
                    self.process_local(
                        run, result, seen_flows, heap_edges, node, var, &fields, &fact,
                    );
                }
                Fact::Heap(ik, fields) => self.process_heap(run, heap_edges, ik, &fields, &fact),
                Fact::Static(field, fields) => {
                    self.process_static(run, heap_edges, field, &fields, &fact);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_local(
        &mut self,
        run: &mut SeedRun,
        result: &mut SliceResult,
        seen_flows: &mut HashSet<(StmtNode, StmtNode, usize)>,
        heap_edges: &mut usize,
        node: CGNodeId,
        var: Var,
        fields: &ApFields,
        fact: &Fact,
    ) {
        if let Some(uses) = self.view.node(node).uses.get(&var).cloned() {
            for u in uses {
                match u {
                    Use::Flow { to, loc } => {
                        self.push(
                            run,
                            Fact::Local(node, to, fields.clone()),
                            fact,
                            vec![FlowStep { stmt: StmtNode { node, loc }, kind: StepKind::Local }],
                        );
                    }
                    Use::Store { loc, base, field } => {
                        self.process_store(
                            run,
                            result,
                            seen_flows,
                            heap_edges,
                            StmtNode { node, loc },
                            node,
                            base,
                            field,
                            fields,
                            fact,
                            vec![],
                        );
                    }
                    Use::StaticStore { loc, field } => {
                        self.push(
                            run,
                            Fact::Static(field, fields.clone()),
                            fact,
                            vec![FlowStep { stmt: StmtNode { node, loc }, kind: StepKind::Local }],
                        );
                    }
                    Use::Arg { loc, pos } => {
                        self.process_arg(
                            run, result, seen_flows, heap_edges, node, loc, pos, fields, fact,
                        );
                        if self.interrupted.is_some() {
                            return;
                        }
                    }
                    Use::Ret { .. } => {
                        if let Some(sites) = self.view.return_sites.get(&node).cloned() {
                            for (caller, cloc, cdst) in sites {
                                if let Some(d) = cdst {
                                    self.push(
                                        run,
                                        Fact::Local(caller, d, fields.clone()),
                                        fact,
                                        vec![FlowStep {
                                            stmt: StmtNode { node: caller, loc: cloc },
                                            kind: StepKind::ReturnTo,
                                        }],
                                    );
                                }
                            }
                        }
                    }
                    Use::SinkArg { loc, method, pos } => {
                        if fields.is_value() {
                            self.emit_flow(
                                run,
                                result,
                                seen_flows,
                                fact,
                                vec![],
                                StmtNode { node, loc },
                                method,
                                pos,
                                StepKind::Local,
                            );
                        }
                    }
                    Use::Sanitized { .. } => {}
                }
            }
        }
        // Field consumption through this register's own loads: `x = v.f`
        // peels `f` off the suffix (or matches anything when widened
        // empty). A precise value fact has nothing to consume.
        if fields.first().is_some() || (fields.widened && fields.is_value()) {
            let loads: Vec<LoadStmt> = self
                .view
                .node(node)
                .loads
                .iter()
                .filter(|l| l.base == Some(var))
                .copied()
                .collect();
            for l in loads {
                let Some(lf) = l.field else { continue };
                let Some(next) = fields.consume(lf) else { continue };
                *heap_edges += 1;
                self.push(
                    run,
                    Fact::Local(node, l.dst, next),
                    fact,
                    vec![FlowStep {
                        stmt: StmtNode { node, loc: l.loc },
                        kind: StepKind::HeapEdge,
                    }],
                );
            }
        }
    }

    /// Handles a reached heap store `base.field = v` where `v` carries
    /// `fields`: taint-carrier edges (for value suffixes), the new heap
    /// fact with `field` prepended, and reflective-invoke bindings.
    #[allow(clippy::too_many_arguments)]
    fn process_store(
        &mut self,
        run: &mut SeedRun,
        result: &mut SliceResult,
        seen_flows: &mut HashSet<(StmtNode, StmtNode, usize)>,
        heap_edges: &mut usize,
        store_stmt: StmtNode,
        store_node: CGNodeId,
        base: Var,
        field: FieldKey,
        fields: &ApFields,
        parent: &Fact,
        pre_steps: Vec<FlowStep>,
    ) {
        let base_pts = self.view.local_pts(store_node, base);
        let mut steps = pre_steps;
        steps.push(FlowStep { stmt: store_stmt, kind: StepKind::Local });

        // Taint carriers (§4.1.1): a tainted *value* stored into an
        // object that may reach a sink argument. Suffixed facts don't
        // fire this — the chain must be consumed by loads first, which
        // keeps the carrier semantics identical to the hybrid slicer's.
        if fields.is_value() {
            for ik in base_pts.iter() {
                if let Some(sinks) = self.view.spec.carrier_sinks.get(&ik) {
                    for cs in sinks.clone() {
                        self.emit_flow(
                            run,
                            result,
                            seen_flows,
                            parent,
                            steps.clone(),
                            cs.stmt,
                            cs.method,
                            cs.pos,
                            StepKind::CarrierEdge,
                        );
                    }
                }
            }
        }

        let stored = fields.prepend(field, self.depth);
        for ik in base_pts.iter() {
            self.push(run, Fact::Heap(ik, stored.clone()), parent, steps.clone());
        }

        // Reflective invoke: array stores feed the invoked method's
        // params with the stored suffix.
        if field == FieldKey::Array {
            for (inode, iloc, arr, callee) in self.view.invoke_bindings.clone() {
                let apts = self.view.local_pts(inode, arr);
                if apts.intersects(&base_pts) {
                    *heap_edges += 1;
                    let callee_method = self.view.pts.callgraph.method_of(callee);
                    let m = self.view.program.method(callee_method);
                    let off = usize::from(!m.is_static);
                    for i in 0..m.params.len() {
                        let mut s = steps.clone();
                        s.push(FlowStep {
                            stmt: StmtNode { node: inode, loc: iloc },
                            kind: StepKind::HeapEdge,
                        });
                        self.push(
                            run,
                            Fact::Local(callee, Var((i + off) as u32), fields.clone()),
                            parent,
                            s,
                        );
                    }
                }
            }
        }
    }

    /// Handles a heap fact: loads whose base may alias the object
    /// consume the outermost field, and every local alias adopts the
    /// suffix (the injection that makes deeper chains explorable).
    fn process_heap(
        &mut self,
        run: &mut SeedRun,
        heap_edges: &mut usize,
        ik: u32,
        fields: &ApFields,
        fact: &Fact,
    ) {
        if let Some(f0) = fields.first() {
            if let Some(loads) = self.view.loads_by_field.get(&f0).cloned() {
                for (lnode, l) in loads {
                    let Some(lbase) = l.base else { continue };
                    if self.view.local_pts(lnode, lbase).contains(ik) {
                        *heap_edges += 1;
                        let next =
                            ApFields { path: fields.path[1..].to_vec(), widened: fields.widened };
                        self.push(
                            run,
                            Fact::Local(lnode, l.dst, next),
                            fact,
                            vec![FlowStep {
                                stmt: StmtNode { node: lnode, loc: l.loc },
                                kind: StepKind::HeapEdge,
                            }],
                        );
                    }
                }
            }
        } else if fields.widened {
            // Widened-empty: field-insensitive — every load from an
            // alias of the object yields a (still widened-empty) fact.
            for (lnode, l) in self.all_loads.clone() {
                let Some(lbase) = l.base else { continue };
                if self.view.local_pts(lnode, lbase).contains(ik) {
                    *heap_edges += 1;
                    self.push(
                        run,
                        Fact::Local(lnode, l.dst, fields.clone()),
                        fact,
                        vec![FlowStep {
                            stmt: StmtNode { node: lnode, loc: l.loc },
                            kind: StepKind::HeapEdge,
                        }],
                    );
                }
            }
        }
        // Alias injection: every local that may point to the object
        // adopts the suffix, so stores of carrier objects build deeper
        // paths and callee summaries see suffixed arguments.
        if let Some(aliases) = self.aliases.get(&ik).cloned() {
            for (n, w) in aliases {
                self.push(run, Fact::Local(n, w, fields.clone()), fact, vec![]);
            }
        }
    }

    fn process_static(
        &mut self,
        run: &mut SeedRun,
        heap_edges: &mut usize,
        field: FieldId,
        fields: &ApFields,
        fact: &Fact,
    ) {
        if let Some(loads) = self.view.static_loads.get(&field).cloned() {
            for (lnode, l) in loads {
                *heap_edges += 1;
                self.push(
                    run,
                    Fact::Local(lnode, l.dst, fields.clone()),
                    fact,
                    vec![FlowStep {
                        stmt: StmtNode { node: lnode, loc: l.loc },
                        kind: StepKind::HeapEdge,
                    }],
                );
            }
        }
    }

    /// Taint passed into a body callee: instantiate the field-generic
    /// RHS summary with the caller's suffix.
    #[allow(clippy::too_many_arguments)]
    fn process_arg(
        &mut self,
        run: &mut SeedRun,
        result: &mut SliceResult,
        seen_flows: &mut HashSet<(StmtNode, StmtNode, usize)>,
        heap_edges: &mut usize,
        node: CGNodeId,
        loc: Loc,
        pos: usize,
        fields: &ApFields,
        parent: &Fact,
    ) {
        let call_stmt = StmtNode { node, loc };
        let targets: Vec<CGNodeId> = self.view.pts.callgraph.targets(node, loc).to_vec();
        for t in targets {
            let callee_method = self.view.pts.callgraph.method_of(t);
            let m = self.view.program.method(callee_method);
            if self.view.spec.sanitizers.contains(&callee_method)
                || self.view.spec.sources.contains(&callee_method)
                || self.view.spec.sinks.contains_key(&callee_method)
            {
                continue; // handled via dedicated roles
            }
            let off = usize::from(!m.is_static);
            if pos + off >= m.num_incoming() {
                continue;
            }
            let entry: SumKey = (t, Var((pos + off) as u32));
            let summary = self.summary(entry).clone();
            if self.interrupted.is_some() {
                return;
            }
            let call_step = FlowStep { stmt: call_stmt, kind: StepKind::CallArg };
            for (st, base, field) in summary.stores {
                self.process_store(
                    run,
                    result,
                    seen_flows,
                    heap_edges,
                    st,
                    st.node,
                    base,
                    field,
                    fields,
                    parent,
                    vec![call_step],
                );
            }
            for (st, sfield) in summary.static_stores {
                self.push(
                    run,
                    Fact::Static(sfield, fields.clone()),
                    parent,
                    vec![call_step, FlowStep { stmt: st, kind: StepKind::Local }],
                );
            }
            if fields.is_value() {
                for (st, method, spos) in summary.sinks {
                    self.emit_flow(
                        run,
                        result,
                        seen_flows,
                        parent,
                        vec![call_step],
                        st,
                        method,
                        spos,
                        StepKind::CallArg,
                    );
                }
            }
            if summary.reaches_ret {
                if let Some(d) = call_dst(self.view, node, loc) {
                    self.push(
                        run,
                        Fact::Local(node, d, fields.clone()),
                        parent,
                        vec![call_step, FlowStep { stmt: call_stmt, kind: StepKind::ReturnTo }],
                    );
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_flow(
        &mut self,
        run: &SeedRun,
        result: &mut SliceResult,
        seen_flows: &mut HashSet<(StmtNode, StmtNode, usize)>,
        parent: &Fact,
        mid_steps: Vec<FlowStep>,
        sink: StmtNode,
        sink_method: MethodId,
        sink_pos: usize,
        final_kind: StepKind,
    ) {
        if !seen_flows.insert((run.seed_stmt, sink, sink_pos)) {
            return;
        }
        let mut path = run.reconstruct(parent);
        path.extend(mid_steps);
        path.push(FlowStep { stmt: sink, kind: final_kind });
        let heap_transitions = path
            .iter()
            .filter(|s| matches!(s.kind, StepKind::HeapEdge | StepKind::CarrierEdge))
            .count();
        result.flows.push(Flow {
            source: run.seed_stmt,
            source_method: run.seed_method,
            sink,
            sink_method,
            sink_pos,
            path,
            heap_transitions,
        });
    }

    // ---- RHS endpoint summaries over the no-heap SDG ----

    /// Returns the summary for taint entering `entry`, computing it (and
    /// every transitive callee summary) to a fixpoint on first demand.
    fn summary(&mut self, entry: SumKey) -> &Summary {
        if !self.summaries.contains_key(&entry) {
            let mut queue: VecDeque<SumKey> = VecDeque::new();
            queue.push_back(entry);
            while let Some(key) = queue.pop_front() {
                if let Err(reason) = self.supervisor.check("ifds.summary") {
                    self.interrupted = Some(reason);
                    // An incomplete summary is an under-approximation;
                    // the interrupt flag tells the driver the result is
                    // partial.
                    self.summaries.entry(entry).or_default();
                    break;
                }
                self.worklist_pops += 1;
                let computed = self.compute_summary(key, &mut queue);
                let changed = match self.summaries.get(&key) {
                    Some(old) => *old != computed,
                    None => true,
                };
                if changed {
                    self.summaries.insert(key, computed);
                    if let Some(deps) = self.dependents.get(&key) {
                        for d in deps.clone() {
                            queue.push_back(d);
                        }
                    }
                }
            }
        }
        self.summaries.get(&entry).expect("computed above")
    }

    /// One monotone evaluation of a summary from the current table.
    fn compute_summary(&mut self, entry: SumKey, queue: &mut VecDeque<SumKey>) -> Summary {
        let (node, entry_var) = entry;
        let mut out = Summary::default();
        let mut visited: HashSet<Var> = HashSet::new();
        let mut local_queue = vec![entry_var];
        visited.insert(entry_var);
        while let Some(v) = local_queue.pop() {
            self.work += 1;
            let uses = match self.view.node(node).uses.get(&v) {
                Some(u) => u.clone(),
                None => continue,
            };
            for u in uses {
                match u {
                    Use::Flow { to, .. } => {
                        if visited.insert(to) {
                            local_queue.push(to);
                        }
                    }
                    Use::Store { loc, base, field } => {
                        let st = (StmtNode { node, loc }, base, field);
                        if !out.stores.contains(&st) {
                            out.stores.push(st);
                        }
                    }
                    Use::StaticStore { loc, field } => {
                        let st = (StmtNode { node, loc }, field);
                        if !out.static_stores.contains(&st) {
                            out.static_stores.push(st);
                        }
                    }
                    Use::SinkArg { loc, method, pos } => {
                        let sk = (StmtNode { node, loc }, method, pos);
                        if !out.sinks.contains(&sk) {
                            out.sinks.push(sk);
                        }
                    }
                    Use::Ret { .. } => out.reaches_ret = true,
                    Use::Sanitized { .. } => {}
                    Use::Arg { loc, pos } => {
                        let targets: Vec<CGNodeId> =
                            self.view.pts.callgraph.targets(node, loc).to_vec();
                        for t in targets {
                            let callee_method = self.view.pts.callgraph.method_of(t);
                            let m = self.view.program.method(callee_method);
                            if self.view.spec.sanitizers.contains(&callee_method)
                                || self.view.spec.sources.contains(&callee_method)
                                || self.view.spec.sinks.contains_key(&callee_method)
                            {
                                continue;
                            }
                            let off = usize::from(!m.is_static);
                            if pos + off >= m.num_incoming() {
                                continue;
                            }
                            let sub_key: SumKey = (t, Var((pos + off) as u32));
                            self.dependents.entry(sub_key).or_default().insert(entry);
                            let sub = match self.summaries.get(&sub_key) {
                                Some(s) => s.clone(),
                                None => {
                                    // Schedule computation; use ⊥ for now.
                                    queue.push_back(sub_key);
                                    Summary::default()
                                }
                            };
                            for st in sub.stores {
                                if !out.stores.contains(&st) {
                                    out.stores.push(st);
                                }
                            }
                            for st in sub.static_stores {
                                if !out.static_stores.contains(&st) {
                                    out.static_stores.push(st);
                                }
                            }
                            for sk in sub.sinks {
                                if !out.sinks.contains(&sk) {
                                    out.sinks.push(sk);
                                }
                            }
                            if sub.reaches_ret {
                                if let Some(d) = call_dst(self.view, node, loc) {
                                    if visited.insert(d) {
                                        local_queue.push(d);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Per-seed tabulation state with provenance for witness reconstruction.
#[derive(Debug)]
struct SeedRun {
    seed_stmt: StmtNode,
    seed_method: MethodId,
    visited: HashSet<Fact>,
    parents: HashMap<Fact, Parent>,
    queue: VecDeque<Fact>,
}

#[derive(Debug, Clone)]
struct Parent {
    prev: Option<Fact>,
    steps: Vec<FlowStep>,
}

impl SeedRun {
    fn new(seed_stmt: StmtNode, seed_method: MethodId) -> Self {
        SeedRun {
            seed_stmt,
            seed_method,
            visited: HashSet::new(),
            parents: HashMap::new(),
            queue: VecDeque::new(),
        }
    }

    /// Rebuilds the witness path from the seed to `fact`.
    fn reconstruct(&self, fact: &Fact) -> Vec<FlowStep> {
        let mut rev: Vec<FlowStep> = Vec::new();
        let mut cur = Some(fact.clone());
        let mut guard = 0usize;
        while let Some(f) = cur {
            let Some(p) = self.parents.get(&f) else { break };
            for s in p.steps.iter().rev() {
                rev.push(*s);
            }
            cur = p.prev.clone();
            guard += 1;
            if guard > 100_000 {
                break; // defensive: provenance cycles should not happen
            }
        }
        rev.reverse();
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(f: FieldKey) -> FieldKey {
        f
    }

    #[test]
    fn prepend_respects_depth_and_widens() {
        let f = key(FieldKey::Array);
        let v = ApFields::value();
        let one = v.prepend(f, 2);
        assert_eq!(one.path.len(), 1);
        assert!(!one.widened);
        let two = one.prepend(f, 2);
        assert_eq!(two.path.len(), 2);
        assert!(!two.widened);
        let three = two.prepend(f, 2);
        assert_eq!(three.path.len(), 2, "truncated to k");
        assert!(three.widened, "overflow widens");
    }

    #[test]
    fn depth_zero_widens_immediately() {
        let stored = ApFields::value().prepend(FieldKey::Array, 0);
        assert!(stored.path.is_empty());
        assert!(stored.widened);
        assert!(stored.is_value(), "widened-empty taints the object value itself");
        // And it matches any field on consumption, staying itself.
        let next = stored.consume(FieldKey::Array).expect("matches");
        assert_eq!(next, stored);
    }

    #[test]
    fn consume_requires_exact_first_field_unless_widened_empty() {
        let f = FieldKey::Array;
        let precise = ApFields::value().prepend(f, 4);
        assert!(precise.consume(f).is_some());
        assert_eq!(precise.consume(f).unwrap(), ApFields::value());
        // A widened non-empty path still requires its first field.
        let deep = ApFields { path: vec![f], widened: true };
        assert!(deep.consume(f).is_some());
        assert!(deep.consume(f).unwrap().widened);
    }
}
